//! The client-level protocol: what a daemon packs into the ordered
//! messages' payloads on behalf of its clients, plus the framed session
//! wire format the reactor frontend speaks with remote clients.
//!
//! Group joins and leaves travel through the same total order as data, so
//! every daemon applies group-membership changes at the same point in the
//! message stream — this is how lightweight (client-level) group
//! membership stays consistent without extra agreement rounds.
//!
//! The session layer ([`SessionFrame`]) is a second, independent codec:
//! one datagram per frame between a client and its daemon's frontend.
//! Clients open a session with HELLO (naming a resume watermark so a
//! reconnect can suppress its own retransmissions), submit group actions
//! with SUBMIT, receive ordered [`ClientEvent`]s as EVENT frames gated by
//! CREDIT grants, and close with BYE. Frames carry the session id rather
//! than relying on the source address, so any number of sessions can
//! multiplex over one socket.

use accelring_core::wire::DecodeError;
use accelring_core::{ParticipantId, Service};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::engine::ClientEvent;

/// Maximum length of a client or group name, mirroring Spread's fixed-size
/// descriptive names.
pub const MAX_NAME: usize = 64;
/// Maximum groups addressed by one multi-group multicast.
pub const MAX_GROUPS: usize = 32;

/// A client identity: the daemon it is attached to plus its name (unique
/// per daemon).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId {
    /// The daemon the client is connected to.
    pub daemon: ParticipantId,
    /// The client's name at that daemon.
    pub name: String,
}

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.name, self.daemon)
    }
}

/// What a group-layer message does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupAction {
    /// Application data multicast to one or more groups (open-group
    /// semantics: the sender need not be a member).
    Data {
        /// Target groups.
        groups: Vec<String>,
        /// Application payload.
        payload: Bytes,
    },
    /// The sender joins a group.
    Join {
        /// The group being joined.
        group: String,
    },
    /// The sender leaves a group.
    Leave {
        /// The group being left.
        group: String,
    },
    /// The client disconnected; it leaves every group.
    Disconnect,
}

/// A complete group-layer message: who did what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMessage {
    /// The client this message is on behalf of.
    pub sender: ClientId,
    /// Client-session sequence number for duplicate suppression across
    /// reconnects; `0` means unsequenced (no suppression). Sequenced
    /// clients stamp data messages from a per-session counter starting at
    /// 1, and every engine remembers the highest sequence seen per client
    /// *name* — so a message resubmitted through a different daemon after
    /// a reconnect is recognized and dropped.
    pub seq: u64,
    /// The operation.
    pub action: GroupAction,
}

/// Errors constructing group messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupProtoError {
    /// A name exceeds [`MAX_NAME`] bytes or is empty.
    BadName(String),
    /// More than [`MAX_GROUPS`] groups in one multicast, or none.
    BadGroupCount(usize),
}

impl std::fmt::Display for GroupProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupProtoError::BadName(n) => write!(f, "invalid name {n:?}"),
            GroupProtoError::BadGroupCount(n) => write!(f, "invalid group count {n}"),
        }
    }
}

impl std::error::Error for GroupProtoError {}

/// Validates a client or group name.
///
/// # Errors
///
/// Returns [`GroupProtoError::BadName`] if empty or longer than
/// [`MAX_NAME`] bytes.
pub fn validate_name(name: &str) -> Result<(), GroupProtoError> {
    if name.is_empty() || name.len() > MAX_NAME {
        return Err(GroupProtoError::BadName(name.to_string()));
    }
    Ok(())
}

const ACT_DATA: u8 = 1;
const ACT_JOIN: u8 = 2;
const ACT_LEAVE: u8 = 3;
const ACT_DISCONNECT: u8 = 4;

fn put_name<B: BufMut>(buf: &mut B, name: &str) {
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
}

fn get_name(buf: &mut Bytes) -> Result<String, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    if len > MAX_NAME || buf.remaining() < len {
        return Err(DecodeError::BadLength {
            declared: len,
            available: buf.remaining(),
        });
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::Truncated)
}

/// Writes a group action with its leading kind byte (shared between the
/// ordered-multicast payload codec and the session SUBMIT frame).
fn put_action<B: BufMut>(buf: &mut B, action: &GroupAction) {
    match action {
        GroupAction::Data { groups, payload } => {
            buf.put_u8(ACT_DATA);
            buf.put_u8(groups.len() as u8);
            for g in groups {
                put_name(buf, g);
            }
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(payload);
        }
        GroupAction::Join { group } => {
            buf.put_u8(ACT_JOIN);
            put_name(buf, group);
        }
        GroupAction::Leave { group } => {
            buf.put_u8(ACT_LEAVE);
            put_name(buf, group);
        }
        GroupAction::Disconnect => buf.put_u8(ACT_DISCONNECT),
    }
}

/// Reads a group action (kind byte first).
fn get_action(buf: &mut Bytes) -> Result<GroupAction, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let action = match buf.get_u8() {
        ACT_DATA => {
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let n = buf.get_u8() as usize;
            if n == 0 || n > MAX_GROUPS {
                return Err(DecodeError::BadLength {
                    declared: n,
                    available: MAX_GROUPS,
                });
            }
            let mut groups = Vec::with_capacity(n);
            for _ in 0..n {
                groups.push(get_name(buf)?);
            }
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(DecodeError::BadLength {
                    declared: len,
                    available: buf.remaining(),
                });
            }
            GroupAction::Data {
                groups,
                payload: buf.split_to(len),
            }
        }
        ACT_JOIN => GroupAction::Join {
            group: get_name(buf)?,
        },
        ACT_LEAVE => GroupAction::Leave {
            group: get_name(buf)?,
        },
        ACT_DISCONNECT => GroupAction::Disconnect,
        other => return Err(DecodeError::BadKind(other)),
    };
    Ok(action)
}

/// Encodes a group message into an ordered-multicast payload.
pub fn encode_group_message(msg: &GroupMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u16_le(msg.sender.daemon.as_u16());
    put_name(&mut buf, &msg.sender.name);
    buf.put_u64_le(msg.seq);
    put_action(&mut buf, &msg.action);
    buf.freeze()
}

/// Decodes a group message from an ordered-multicast payload.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input.
pub fn decode_group_message(buf: &mut Bytes) -> Result<GroupMessage, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let daemon = ParticipantId::new(buf.get_u16_le());
    let name = get_name(buf)?;
    let sender = ClientId { daemon, name };
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let seq = buf.get_u64_le();
    let action = get_action(buf)?;
    Ok(GroupMessage {
        sender,
        seq,
        action,
    })
}

// ---------------------------------------------------------------------------
// Session frames
// ---------------------------------------------------------------------------

const FR_HELLO: u8 = 1;
const FR_WELCOME: u8 = 2;
const FR_SUBMIT: u8 = 3;
pub(crate) const FR_EVENT: u8 = 4;
const FR_CREDIT: u8 = 5;
const FR_BYE: u8 = 6;
const FR_ERROR: u8 = 7;
const FR_MAP_PULL: u8 = 8;
const FR_MAP_PUSH: u8 = 9;
const FR_SVC_QUERY: u8 = 10;
const FR_SVC_REPLY: u8 = 11;

const EV_MESSAGE: u8 = 1;
const EV_VIEW: u8 = 2;
const EV_CONFIG: u8 = 3;
const EV_DISCONNECTED: u8 = 4;

/// Longest free-form string (error reasons) a session frame carries.
/// Longer strings are truncated on encode, never rejected on decode up to
/// this bound.
pub const MAX_REASON: usize = 256;

/// Most members one encoded View event carries (bounds decode allocation;
/// larger views are truncated on encode, which group clients tolerate the
/// same way they tolerate a lost datagram — the next view supersedes).
pub const MAX_VIEW_MEMBERS: usize = 4096;

/// One client↔frontend session datagram.
///
/// Every frame after HELLO carries the session id the daemon assigned in
/// WELCOME, so sessions multiplex freely over shared sockets: the
/// frontend routes by id, never by source address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFrame {
    /// Client → daemon: open (or resume) a session for `name`.
    Hello {
        /// The client name the session is for.
        name: String,
        /// Highest sequence this client knows was forwarded in a prior
        /// session; `0` for a fresh session. The daemon suppresses later
        /// SUBMITs at or below the session's forwarded watermark, which
        /// starts at zero precisely so deliberate resubmits of in-doubt
        /// sequences (≤ `resume_seq`) still reach the engine, whose
        /// ring-wide dedup decides their fate.
        resume_seq: u64,
        /// Client-chosen value echoed in WELCOME so a retried HELLO can
        /// recognize its own session instead of superseding it.
        nonce: u64,
    },
    /// Daemon → client: the session is open.
    Welcome {
        /// The id all further frames must carry.
        session: u64,
        /// Echo of the HELLO `resume_seq`.
        resume_seq: u64,
        /// Initial event credits granted (the daemon may send this many
        /// EVENT frames before the client must CREDIT more).
        credits: u32,
        /// Echo of the HELLO nonce.
        nonce: u64,
    },
    /// Client → daemon: perform a group action.
    Submit {
        /// The session acting.
        session: u64,
        /// Per-session sequence for duplicate suppression (`0` =
        /// unsequenced, never suppressed).
        seq: u64,
        /// Requested service level.
        service: Service,
        /// The group action (same codec as the ordered payload).
        action: GroupAction,
    },
    /// Daemon → client: one ordered [`ClientEvent`], pre-encoded.
    ///
    /// The body is kept opaque here so the frontend can encode an event
    /// once and fan the same body out to every subscribed session (only
    /// the 9-byte header differs per recipient). Decode it with
    /// [`decode_event_body`].
    Event {
        /// The receiving session.
        session: u64,
        /// The encoded event ([`encode_event_body`]).
        body: Bytes,
    },
    /// Client → daemon: grant more event credits.
    Credit {
        /// The session granting.
        session: u64,
        /// Additional EVENT frames the daemon may now send.
        credits: u32,
    },
    /// Client → daemon: close the session.
    Bye {
        /// The session being closed.
        session: u64,
    },
    /// Daemon → client: the session is dead (also the reply to frames
    /// naming an unknown session, so half-closed clients learn quickly).
    Error {
        /// The session the error is about (`0` if it never opened).
        session: u64,
        /// Human-readable cause, truncated to [`MAX_REASON`].
        reason: String,
    },
    /// Daemon → daemon: anti-entropy request for recovery state. A
    /// rejoining (or lagging) daemon asks a peer's frontend for its
    /// current shard map and state snapshot before it starts serving
    /// clients.
    MapPull {
        /// Requester-chosen value echoed in the push so retried pulls
        /// recognize their own response.
        nonce: u64,
        /// The highest configuration epoch the requester has observed;
        /// a peer still behind this epoch should not be trusted as a
        /// catch-up source.
        want_epoch: u64,
    },
    /// Daemon → daemon: anti-entropy response carrying the responder's
    /// recovery snapshot.
    MapPush {
        /// Echo of the pull nonce.
        nonce: u64,
        /// The responder's highest observed configuration epoch.
        epoch: u64,
        /// The responder's delivered merge-slot cursor (the snapshot
        /// fence: seeded delivery resumes gap-free after this slot).
        slot: u64,
        /// The responder's shard-map version, duplicated out of the body
        /// so a requester can cheaply pick the freshest of several
        /// responses before decoding one.
        map_version: u64,
        /// The opaque snapshot (the multi-ring layer owns its codec).
        /// Trailing bytes of the frame, like an EVENT body.
        body: Bytes,
    },
    /// Anyone → daemon: a query against a local service the daemon
    /// hosts, answered outside the ordered path (no session, no
    /// credits — the requester owns retries). The body is opaque here:
    /// the service layered on the daemon owns its codec, exactly as
    /// the multi-ring layer owns the MAP_PUSH body. The replicated KV
    /// store's local reads and snapshot pulls ride these frames.
    SvcQuery {
        /// Requester-chosen value echoed in the reply so retried
        /// queries recognize their own response.
        nonce: u64,
        /// The opaque query (trailing bytes of the frame).
        body: Bytes,
    },
    /// Daemon → requester: the local service's answer.
    SvcReply {
        /// Echo of the query nonce.
        nonce: u64,
        /// The opaque reply (trailing bytes of the frame).
        body: Bytes,
    },
}

fn put_str<B: BufMut>(buf: &mut B, s: &str, cap: usize) {
    let mut end = s.len().min(cap);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    buf.put_u16_le(end as u16);
    buf.put_slice(&s.as_bytes()[..end]);
}

fn get_str(buf: &mut Bytes, cap: usize) -> Result<String, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    if len > cap || buf.remaining() < len {
        return Err(DecodeError::BadLength {
            declared: len,
            available: buf.remaining(),
        });
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::Truncated)
}

/// Encodes a session frame into a fresh buffer. For the hot event path
/// prefer [`encode_session_frame_into`] with a pooled buffer.
pub fn encode_session_frame(frame: &SessionFrame) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode_session_frame_into(&mut buf, frame);
    buf.freeze()
}

/// Encodes a session frame into any writer — the frontend stages frames
/// in pooled leases this way, so framing never allocates on the datapath.
pub fn encode_session_frame_into<B: BufMut>(buf: &mut B, frame: &SessionFrame) {
    match frame {
        SessionFrame::Hello {
            name,
            resume_seq,
            nonce,
        } => {
            buf.put_u8(FR_HELLO);
            put_name(buf, name);
            buf.put_u64_le(*resume_seq);
            buf.put_u64_le(*nonce);
        }
        SessionFrame::Welcome {
            session,
            resume_seq,
            credits,
            nonce,
        } => {
            buf.put_u8(FR_WELCOME);
            buf.put_u64_le(*session);
            buf.put_u64_le(*resume_seq);
            buf.put_u32_le(*credits);
            buf.put_u64_le(*nonce);
        }
        SessionFrame::Submit {
            session,
            seq,
            service,
            action,
        } => {
            buf.put_u8(FR_SUBMIT);
            buf.put_u64_le(*session);
            buf.put_u64_le(*seq);
            buf.put_u8(service.as_u8());
            put_action(buf, action);
        }
        SessionFrame::Event { session, body } => {
            buf.put_u8(FR_EVENT);
            buf.put_u64_le(*session);
            buf.put_slice(body);
        }
        SessionFrame::Credit { session, credits } => {
            buf.put_u8(FR_CREDIT);
            buf.put_u64_le(*session);
            buf.put_u32_le(*credits);
        }
        SessionFrame::Bye { session } => {
            buf.put_u8(FR_BYE);
            buf.put_u64_le(*session);
        }
        SessionFrame::Error { session, reason } => {
            buf.put_u8(FR_ERROR);
            buf.put_u64_le(*session);
            put_str(buf, reason, MAX_REASON);
        }
        SessionFrame::MapPull { nonce, want_epoch } => {
            buf.put_u8(FR_MAP_PULL);
            buf.put_u64_le(*nonce);
            buf.put_u64_le(*want_epoch);
        }
        SessionFrame::MapPush {
            nonce,
            epoch,
            slot,
            map_version,
            body,
        } => {
            buf.put_u8(FR_MAP_PUSH);
            buf.put_u64_le(*nonce);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(*slot);
            buf.put_u64_le(*map_version);
            // The body is the frame's tail, so it needs no length prefix.
            buf.put_slice(body);
        }
        SessionFrame::SvcQuery { nonce, body } => {
            buf.put_u8(FR_SVC_QUERY);
            buf.put_u64_le(*nonce);
            buf.put_slice(body);
        }
        SessionFrame::SvcReply { nonce, body } => {
            buf.put_u8(FR_SVC_REPLY);
            buf.put_u64_le(*nonce);
            buf.put_slice(body);
        }
    }
}

fn get_u64(buf: &mut Bytes) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u32_le())
}

/// Decodes one session frame (one datagram).
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input; the frontend counts these
/// and drops the datagram rather than the session.
pub fn decode_session_frame(buf: &mut Bytes) -> Result<SessionFrame, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let frame = match buf.get_u8() {
        FR_HELLO => SessionFrame::Hello {
            name: get_name(buf)?,
            resume_seq: get_u64(buf)?,
            nonce: get_u64(buf)?,
        },
        FR_WELCOME => SessionFrame::Welcome {
            session: get_u64(buf)?,
            resume_seq: get_u64(buf)?,
            credits: get_u32(buf)?,
            nonce: get_u64(buf)?,
        },
        FR_SUBMIT => {
            let session = get_u64(buf)?;
            let seq = get_u64(buf)?;
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let raw = buf.get_u8();
            let service = Service::from_u8(raw).ok_or(DecodeError::BadService(raw))?;
            SessionFrame::Submit {
                session,
                seq,
                service,
                action: get_action(buf)?,
            }
        }
        FR_EVENT => SessionFrame::Event {
            session: get_u64(buf)?,
            body: buf.split_to(buf.remaining()),
        },
        FR_CREDIT => SessionFrame::Credit {
            session: get_u64(buf)?,
            credits: get_u32(buf)?,
        },
        FR_BYE => SessionFrame::Bye {
            session: get_u64(buf)?,
        },
        FR_ERROR => SessionFrame::Error {
            session: get_u64(buf)?,
            reason: get_str(buf, MAX_REASON)?,
        },
        FR_MAP_PULL => SessionFrame::MapPull {
            nonce: get_u64(buf)?,
            want_epoch: get_u64(buf)?,
        },
        FR_MAP_PUSH => SessionFrame::MapPush {
            nonce: get_u64(buf)?,
            epoch: get_u64(buf)?,
            slot: get_u64(buf)?,
            map_version: get_u64(buf)?,
            body: buf.split_to(buf.remaining()),
        },
        FR_SVC_QUERY => SessionFrame::SvcQuery {
            nonce: get_u64(buf)?,
            body: buf.split_to(buf.remaining()),
        },
        FR_SVC_REPLY => SessionFrame::SvcReply {
            nonce: get_u64(buf)?,
            body: buf.split_to(buf.remaining()),
        },
        other => return Err(DecodeError::BadKind(other)),
    };
    Ok(frame)
}

/// Encodes a [`ClientEvent`] as an EVENT frame body, exactly once per
/// delivery no matter how many sessions receive it.
pub fn encode_event_body(event: &ClientEvent) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match event {
        ClientEvent::Message {
            sender,
            seq,
            groups,
            payload,
            service,
        } => {
            buf.put_u8(EV_MESSAGE);
            buf.put_u16_le(sender.daemon.as_u16());
            put_name(&mut buf, &sender.name);
            buf.put_u64_le(*seq);
            buf.put_u8(groups.len().min(MAX_GROUPS) as u8);
            for g in groups.iter().take(MAX_GROUPS) {
                put_name(&mut buf, g);
            }
            buf.put_u8(service.as_u8());
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(payload);
        }
        ClientEvent::View { group, members } => {
            buf.put_u8(EV_VIEW);
            put_name(&mut buf, group);
            buf.put_u32_le(members.len().min(MAX_VIEW_MEMBERS) as u32);
            for m in members.iter().take(MAX_VIEW_MEMBERS) {
                buf.put_u16_le(m.daemon.as_u16());
                put_name(&mut buf, &m.name);
            }
        }
        ClientEvent::Config {
            daemons,
            transitional,
        } => {
            buf.put_u8(EV_CONFIG);
            buf.put_u8(u8::from(*transitional));
            buf.put_u16_le(daemons.len() as u16);
            for d in daemons {
                buf.put_u16_le(d.as_u16());
            }
        }
        ClientEvent::Disconnected { reason } => {
            buf.put_u8(EV_DISCONNECTED);
            put_str(&mut buf, reason, MAX_REASON);
        }
    }
    buf.freeze()
}

/// Decodes an EVENT frame body back into a [`ClientEvent`].
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input.
pub fn decode_event_body(buf: &mut Bytes) -> Result<ClientEvent, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let event = match buf.get_u8() {
        EV_MESSAGE => {
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let daemon = ParticipantId::new(buf.get_u16_le());
            let name = get_name(buf)?;
            if buf.remaining() < 9 {
                return Err(DecodeError::Truncated);
            }
            let seq = buf.get_u64_le();
            let n = buf.get_u8() as usize;
            if n > MAX_GROUPS {
                return Err(DecodeError::BadLength {
                    declared: n,
                    available: MAX_GROUPS,
                });
            }
            let mut groups = Vec::with_capacity(n);
            for _ in 0..n {
                groups.push(get_name(buf)?);
            }
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let raw = buf.get_u8();
            let service = Service::from_u8(raw).ok_or(DecodeError::BadService(raw))?;
            let len = get_u32(buf)? as usize;
            if buf.remaining() < len {
                return Err(DecodeError::BadLength {
                    declared: len,
                    available: buf.remaining(),
                });
            }
            ClientEvent::Message {
                sender: ClientId { daemon, name },
                seq,
                groups,
                payload: buf.split_to(len),
                service,
            }
        }
        EV_VIEW => {
            let group = get_name(buf)?;
            let n = get_u32(buf)? as usize;
            if n > MAX_VIEW_MEMBERS {
                return Err(DecodeError::BadLength {
                    declared: n,
                    available: MAX_VIEW_MEMBERS,
                });
            }
            let mut members = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                if buf.remaining() < 2 {
                    return Err(DecodeError::Truncated);
                }
                let daemon = ParticipantId::new(buf.get_u16_le());
                let name = get_name(buf)?;
                members.push(ClientId { daemon, name });
            }
            ClientEvent::View { group, members }
        }
        EV_CONFIG => {
            if buf.remaining() < 3 {
                return Err(DecodeError::Truncated);
            }
            let transitional = buf.get_u8() != 0;
            let n = buf.get_u16_le() as usize;
            if buf.remaining() < n * 2 {
                return Err(DecodeError::Truncated);
            }
            let daemons = (0..n)
                .map(|_| ParticipantId::new(buf.get_u16_le()))
                .collect();
            ClientEvent::Config {
                daemons,
                transitional,
            }
        }
        EV_DISCONNECTED => ClientEvent::Disconnected {
            reason: get_str(buf, MAX_REASON)?,
        },
        other => return Err(DecodeError::BadKind(other)),
    };
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(d: u16, name: &str) -> ClientId {
        ClientId {
            daemon: ParticipantId::new(d),
            name: name.to_string(),
        }
    }

    fn roundtrip(msg: &GroupMessage) -> GroupMessage {
        let mut enc = encode_group_message(msg);
        decode_group_message(&mut enc).unwrap()
    }

    #[test]
    fn data_roundtrip() {
        let msg = GroupMessage {
            sender: client(3, "trader-7"),
            seq: 0,
            action: GroupAction::Data {
                groups: vec!["orders".into(), "audit-log".into()],
                payload: Bytes::from_static(b"BUY 100 XYZ"),
            },
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn join_leave_disconnect_roundtrip() {
        for action in [
            GroupAction::Join { group: "g".into() },
            GroupAction::Leave { group: "g".into() },
            GroupAction::Disconnect,
        ] {
            let msg = GroupMessage {
                sender: client(0, "c"),
                seq: 0,
                action,
            };
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn empty_payload_roundtrip() {
        let msg = GroupMessage {
            sender: client(1, "x"),
            seq: 7,
            action: GroupAction::Data {
                groups: vec!["g".into()],
                payload: Bytes::new(),
            },
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let msg = GroupMessage {
            sender: client(3, "client"),
            seq: 42,
            action: GroupAction::Data {
                groups: vec!["group-a".into()],
                payload: Bytes::from_static(b"xy"),
            },
        };
        let full = encode_group_message(&msg);
        for cut in 0..full.len() {
            let mut b = full.slice(..cut);
            assert!(decode_group_message(&mut b).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_zero_groups() {
        // Hand-craft a data message with zero groups.
        let mut buf = BytesMut::new();
        buf.put_u16_le(0);
        buf.put_u16_le(1);
        buf.put_slice(b"c");
        buf.put_u64_le(0);
        buf.put_u8(ACT_DATA);
        buf.put_u8(0);
        let mut b = buf.freeze();
        assert!(decode_group_message(&mut b).is_err());
    }

    #[test]
    fn rejects_oversized_name() {
        let long = "x".repeat(MAX_NAME + 1);
        assert!(validate_name(&long).is_err());
        assert!(validate_name("").is_err());
        assert!(validate_name("ok-name").is_ok());
    }

    #[test]
    fn client_id_display() {
        assert_eq!(client(2, "abc").to_string(), "abc#P2");
    }

    fn frame_roundtrip(frame: &SessionFrame) -> SessionFrame {
        let mut enc = encode_session_frame(frame);
        decode_session_frame(&mut enc).unwrap()
    }

    #[test]
    fn session_frames_roundtrip() {
        let frames = [
            SessionFrame::Hello {
                name: "trader-7".into(),
                resume_seq: 41,
                nonce: 0xDEAD_BEEF,
            },
            SessionFrame::Welcome {
                session: (3 << 32) | 17,
                resume_seq: 41,
                credits: 256,
                nonce: 0xDEAD_BEEF,
            },
            SessionFrame::Submit {
                session: 9,
                seq: 42,
                service: Service::Safe,
                action: GroupAction::Data {
                    groups: vec!["orders".into()],
                    payload: Bytes::from_static(b"BUY"),
                },
            },
            SessionFrame::Submit {
                session: 9,
                seq: 0,
                service: Service::Agreed,
                action: GroupAction::Disconnect,
            },
            SessionFrame::Credit {
                session: 9,
                credits: 64,
            },
            SessionFrame::Bye { session: 9 },
            SessionFrame::Error {
                session: 0,
                reason: "unknown session".into(),
            },
            SessionFrame::MapPull {
                nonce: 0xFEED,
                want_epoch: 12,
            },
            SessionFrame::MapPush {
                nonce: 0xFEED,
                epoch: 12,
                slot: 99,
                map_version: 4,
                body: Bytes::from_static(b"opaque snapshot"),
            },
            SessionFrame::MapPush {
                nonce: 1,
                epoch: 0,
                slot: 0,
                map_version: 0,
                body: Bytes::new(),
            },
            SessionFrame::SvcQuery {
                nonce: 0xBEEF,
                body: Bytes::from_static(b"opaque query"),
            },
            SessionFrame::SvcReply {
                nonce: 0xBEEF,
                body: Bytes::from_static(b"opaque reply"),
            },
            SessionFrame::SvcReply {
                nonce: 2,
                body: Bytes::new(),
            },
        ];
        for frame in &frames {
            assert_eq!(&frame_roundtrip(frame), frame);
        }
    }

    #[test]
    fn event_bodies_roundtrip() {
        let events = [
            ClientEvent::Message {
                sender: client(2, "alice"),
                seq: 7,
                groups: vec!["g1".into(), "g2".into()],
                payload: Bytes::from_static(b"payload"),
                service: Service::Agreed,
            },
            ClientEvent::View {
                group: "g1".into(),
                members: vec![client(0, "a"), client(1, "b")],
            },
            ClientEvent::Config {
                daemons: vec![ParticipantId::new(0), ParticipantId::new(2)],
                transitional: true,
            },
            ClientEvent::Disconnected {
                reason: "daemon shutdown".into(),
            },
        ];
        for event in &events {
            let mut body = encode_event_body(event);
            assert_eq!(&decode_event_body(&mut body).unwrap(), event);
        }
    }

    #[test]
    fn event_frame_body_is_opaque_passthrough() {
        let event = ClientEvent::Message {
            sender: client(0, "a"),
            seq: 0,
            groups: vec!["g".into()],
            payload: Bytes::from_static(b"x"),
            service: Service::Agreed,
        };
        let body = encode_event_body(&event);
        let mut enc = encode_session_frame(&SessionFrame::Event {
            session: 5,
            body: body.clone(),
        });
        match decode_session_frame(&mut enc).unwrap() {
            SessionFrame::Event {
                session,
                body: mut got,
            } => {
                assert_eq!(session, 5);
                assert_eq!(got, body);
                assert_eq!(decode_event_body(&mut got).unwrap(), event);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn session_frame_truncation_rejected() {
        let frame = SessionFrame::Submit {
            session: 7,
            seq: 3,
            service: Service::Agreed,
            action: GroupAction::Data {
                groups: vec!["group-a".into()],
                payload: Bytes::from_static(b"xy"),
            },
        };
        let full = encode_session_frame(&frame);
        for cut in 0..full.len() {
            let mut b = full.slice(..cut);
            assert!(decode_session_frame(&mut b).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn oversized_reason_is_truncated_on_encode() {
        let frame = SessionFrame::Error {
            session: 1,
            reason: "x".repeat(MAX_REASON * 2),
        };
        match frame_roundtrip(&frame) {
            SessionFrame::Error { reason, .. } => assert_eq!(reason.len(), MAX_REASON),
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn unknown_frame_kind_rejected() {
        let mut b = Bytes::from_static(&[99, 0, 0]);
        assert!(decode_session_frame(&mut b).is_err());
    }

    #[test]
    fn map_pull_push_truncation_rejected() {
        // The push body is the frame tail, so only the fixed header can
        // be truncation-checked — an empty body is a valid frame.
        let pull = encode_session_frame(&SessionFrame::MapPull {
            nonce: 3,
            want_epoch: 4,
        });
        for cut in 0..pull.len() {
            let mut b = pull.slice(..cut);
            assert!(decode_session_frame(&mut b).is_err(), "pull cut {cut}");
        }
        let push = encode_session_frame(&SessionFrame::MapPush {
            nonce: 3,
            epoch: 4,
            slot: 5,
            map_version: 6,
            body: Bytes::new(),
        });
        for cut in 0..push.len() {
            let mut b = push.slice(..cut);
            assert!(decode_session_frame(&mut b).is_err(), "push cut {cut}");
        }
    }

    #[test]
    fn svc_query_truncation_rejected() {
        // Like MAP_PUSH, the body is the frame tail: only the nonce
        // header can be truncation-checked.
        let query = encode_session_frame(&SessionFrame::SvcQuery {
            nonce: 7,
            body: Bytes::new(),
        });
        for cut in 0..query.len() {
            let mut b = query.slice(..cut);
            assert!(decode_session_frame(&mut b).is_err(), "query cut {cut}");
        }
    }

    #[test]
    fn error_display() {
        assert!(!GroupProtoError::BadName("x".into()).to_string().is_empty());
        assert!(!GroupProtoError::BadGroupCount(0).to_string().is_empty());
    }
}
