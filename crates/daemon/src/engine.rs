//! The group engine: translates client operations into ordered multicasts
//! and routes ordered deliveries back to local clients.
//!
//! The engine is pure (no sockets, no threads): runtimes feed it client
//! commands, ordered deliveries, and configuration changes, and carry out
//! the [`EngineOutput`]s it returns. This is the layer that gives the
//! daemon prototype (and Spread) their client–daemon architecture: one
//! engine per daemon serves many clients, and open-group semantics fall
//! out naturally because any client's message is routed by the *receiving*
//! daemons based on the replicated group table.

use std::collections::{BTreeMap, BTreeSet};

use accelring_core::{Delivery, ParticipantId, Service};
use accelring_membership::ConfigChange;
use bytes::Bytes;

use crate::groups::{GroupTable, GroupView};
use crate::packing::{self, Fragmenter, Packer, Reassembler, TAG_FRAGMENT};
use crate::proto::{
    decode_group_message, encode_group_message, validate_name, ClientId, GroupAction, GroupMessage,
    GroupProtoError, MAX_GROUPS,
};

/// Packing and fragmentation settings for a [`GroupEngine`] (Section
/// IV-A3 of the paper: Spread packs small messages into one protocol
/// packet and fragments large ones across several).
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// When set, client messages whose encoding fits are coalesced into
    /// ring payloads of at most this many bytes; the runtime must call
    /// [`GroupEngine::flush`] after each batch of client commands.
    pub packing_budget: Option<usize>,
    /// Ring payloads are capped at this many bytes; larger client messages
    /// are fragmented and reassembled transparently. Keeps every ring
    /// message within a single UDP datagram.
    pub fragment_budget: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            packing_budget: None,
            // Leaves ample room for ring and UDP headers under the 64 KiB
            // datagram limit.
            fragment_budget: 48 * 1024,
        }
    }
}

/// An event delivered to one local client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// A group message, in total order.
    Message {
        /// The sending client.
        sender: ClientId,
        /// The sender's client-session sequence (`0` = unsequenced).
        /// Replicated state machines key exactly-once application and
        /// cross-ring fragment reassembly on `(sender.name, seq)`.
        seq: u64,
        /// The groups it was addressed to.
        groups: Vec<String>,
        /// Application payload.
        payload: Bytes,
        /// Service level it was sent with.
        service: Service,
    },
    /// A membership view for a group this client belongs to.
    View {
        /// The group.
        group: String,
        /// The members after the change.
        members: Vec<ClientId>,
    },
    /// The daemon's ring configuration changed (EVS notification,
    /// forwarded to every local client).
    Config {
        /// Daemons in the new configuration.
        daemons: Vec<ParticipantId>,
        /// Whether this is a transitional configuration.
        transitional: bool,
    },
    /// Terminal: the daemon can no longer serve this client (its node
    /// thread died, the daemon is shutting down, or the session was
    /// superseded). No further events follow. Unlike ordinary events this
    /// is never shed when a client's event queue is full — runtimes must
    /// deliver it out of band or block briefly, because a client that
    /// misses it would wait forever on a dead daemon.
    Disconnected {
        /// Human-readable cause (e.g. the panic message of a dead node
        /// thread, or "daemon shutdown").
        reason: String,
    },
}

/// An effect the runtime must carry out for the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutput {
    /// Submit this payload for totally ordered multicast.
    Submit {
        /// Encoded group message.
        payload: Bytes,
        /// Requested service.
        service: Service,
    },
    /// Hand an event to a local client.
    Local {
        /// The local client's name.
        client: String,
        /// The event.
        event: ClientEvent,
    },
}

/// Errors from client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Invalid client or group name, or bad group count.
    Proto(GroupProtoError),
    /// The named client is not connected to this daemon.
    UnknownClient(String),
    /// A client with this name is already connected.
    DuplicateClient(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Proto(e) => write!(f, "{e}"),
            EngineError::UnknownClient(c) => write!(f, "unknown client {c:?}"),
            EngineError::DuplicateClient(c) => write!(f, "client {c:?} already connected"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GroupProtoError> for EngineError {
    fn from(e: GroupProtoError) -> Self {
        EngineError::Proto(e)
    }
}

/// The per-daemon group engine.
///
/// # Examples
///
/// ```
/// use accelring_core::ParticipantId;
/// use accelring_daemon::engine::GroupEngine;
///
/// let mut engine = GroupEngine::new(ParticipantId::new(0));
/// engine.client_connect("alice")?;
/// let outputs = engine.client_join("alice", "chat")?;
/// assert_eq!(outputs.len(), 1, "join becomes one ordered submission");
/// # Ok::<(), accelring_daemon::engine::EngineError>(())
/// ```
#[derive(Debug)]
pub struct GroupEngine {
    pid: ParticipantId,
    groups: GroupTable,
    local_clients: BTreeSet<String>,
    options: EngineOptions,
    /// One packer per service level (messages of different service levels
    /// must not share a ring payload).
    packers: BTreeMap<Service, Packer>,
    fragmenter: Fragmenter,
    next_fragment_id: u64,
    /// One reassembler per sending daemon (fragment ids are per-sender).
    reassemblers: BTreeMap<ParticipantId, Reassembler>,
    /// Highest session sequence number seen per client *name*, across every
    /// daemon. Because the ring delivers every daemon the same total order,
    /// all engines agree on this map, and a resubmitted duplicate (same
    /// name, same seq — e.g. after a client reconnects to a different
    /// daemon) is dropped identically everywhere.
    seen_seqs: BTreeMap<String, u64>,
    /// Count of sequenced messages dropped as duplicates.
    duplicates_dropped: u64,
    /// Members of the last regular configuration. A regular configuration
    /// that adds daemons is a merge of previously partitioned components,
    /// and triggers the local-membership re-announcement.
    known_daemons: BTreeSet<ParticipantId>,
}

impl GroupEngine {
    /// Creates the engine for the daemon with id `pid`, with default
    /// options (fragmentation on, packing off).
    pub fn new(pid: ParticipantId) -> GroupEngine {
        GroupEngine::with_options(pid, EngineOptions::default())
    }

    /// Creates the engine with explicit packing/fragmentation options.
    pub fn with_options(pid: ParticipantId, options: EngineOptions) -> GroupEngine {
        GroupEngine {
            pid,
            groups: GroupTable::new(),
            local_clients: BTreeSet::new(),
            options,
            packers: BTreeMap::new(),
            fragmenter: Fragmenter::new(options.fragment_budget),
            next_fragment_id: 0,
            reassemblers: BTreeMap::new(),
            seen_seqs: BTreeMap::new(),
            duplicates_dropped: 0,
            known_daemons: BTreeSet::new(),
        }
    }

    /// Sequenced messages dropped because their session sequence number was
    /// already seen (duplicate suppression after client resubmission).
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// The highest session sequence number this engine has seen for the
    /// named client, or 0 if none. A reconnecting client resumes stamping
    /// from above this value.
    pub fn last_seq(&self, client: &str) -> u64 {
        self.seen_seqs.get(client).copied().unwrap_or(0)
    }

    /// Every per-client dedup watermark this engine holds, sorted by
    /// client name. This is the dedup half of a recovery snapshot: a
    /// restarted daemon seeded with it suppresses client resubmissions it
    /// forgot it already ordered.
    pub fn export_seqs(&self) -> Vec<(String, u64)> {
        self.seen_seqs
            .iter()
            .map(|(name, seq)| (name.clone(), *seq))
            .collect()
    }

    /// Seeds dedup watermarks from a peer's snapshot. Max-merge, so
    /// seeding is monotone and idempotent: a watermark this engine has
    /// already advanced past is never regressed, and replaying the same
    /// snapshot changes nothing.
    pub fn seed_seqs(&mut self, seqs: &[(String, u64)]) {
        for (name, seq) in seqs {
            let entry = self.seen_seqs.entry(name.clone()).or_insert(0);
            *entry = (*entry).max(*seq);
        }
    }

    /// Wraps one encoded group message for the ring: fragmenting when too
    /// large, packing when enabled, bare otherwise.
    fn wrap_submit(&mut self, encoded: Bytes, service: Service) -> Vec<EngineOutput> {
        if self.fragmenter.needs_split(encoded.len()) {
            self.next_fragment_id += 1;
            return self
                .fragmenter
                .split(self.next_fragment_id, encoded)
                .into_iter()
                .map(|payload| EngineOutput::Submit { payload, service })
                .collect();
        }
        if let Some(budget) = self.options.packing_budget {
            let packer = self
                .packers
                .entry(service)
                .or_insert_with(|| Packer::new(budget));
            return packer
                .push(encoded)
                .into_iter()
                .map(|payload| EngineOutput::Submit { payload, service })
                .collect();
        }
        vec![EngineOutput::Submit {
            payload: packing::bare(encoded),
            service,
        }]
    }

    /// Closes any partially filled packed payloads. Runtimes with packing
    /// enabled must call this after each batch of client commands (and on
    /// an idle tick), or buffered messages would wait indefinitely.
    pub fn flush(&mut self) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        for (&service, packer) in self.packers.iter_mut() {
            if let Some(payload) = packer.flush() {
                out.push(EngineOutput::Submit { payload, service });
            }
        }
        out
    }

    /// The daemon id this engine serves.
    pub fn pid(&self) -> ParticipantId {
        self.pid
    }

    /// Read access to the replicated group table.
    pub fn groups(&self) -> &GroupTable {
        &self.groups
    }

    /// Names of locally connected clients.
    pub fn local_clients(&self) -> Vec<String> {
        self.local_clients.iter().cloned().collect()
    }

    fn require_client(&self, name: &str) -> Result<ClientId, EngineError> {
        if !self.local_clients.contains(name) {
            return Err(EngineError::UnknownClient(name.to_string()));
        }
        Ok(ClientId {
            daemon: self.pid,
            name: name.to_string(),
        })
    }

    /// Registers a local client.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid or duplicate names.
    pub fn client_connect(&mut self, name: &str) -> Result<(), EngineError> {
        validate_name(name)?;
        if !self.local_clients.insert(name.to_string()) {
            return Err(EngineError::DuplicateClient(name.to_string()));
        }
        Ok(())
    }

    /// Unregisters a local client; its group departures are multicast so
    /// every daemon prunes it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownClient`] if not connected.
    pub fn client_disconnect(&mut self, name: &str) -> Result<Vec<EngineOutput>, EngineError> {
        let id = self.require_client(name)?;
        self.local_clients.remove(name);
        let encoded = encode_group_message(&GroupMessage {
            sender: id,
            seq: 0,
            action: GroupAction::Disconnect,
        });
        Ok(self.wrap_submit(encoded, Service::Agreed))
    }

    /// The named client joins `group` (takes effect when the join comes
    /// back through the total order).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown clients or invalid group names.
    pub fn client_join(
        &mut self,
        name: &str,
        group: &str,
    ) -> Result<Vec<EngineOutput>, EngineError> {
        validate_name(group)?;
        let id = self.require_client(name)?;
        let encoded = encode_group_message(&GroupMessage {
            sender: id,
            seq: 0,
            action: GroupAction::Join {
                group: group.to_string(),
            },
        });
        Ok(self.wrap_submit(encoded, Service::Agreed))
    }

    /// The named client leaves `group`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown clients or invalid group names.
    pub fn client_leave(
        &mut self,
        name: &str,
        group: &str,
    ) -> Result<Vec<EngineOutput>, EngineError> {
        validate_name(group)?;
        let id = self.require_client(name)?;
        let encoded = encode_group_message(&GroupMessage {
            sender: id,
            seq: 0,
            action: GroupAction::Leave {
                group: group.to_string(),
            },
        });
        Ok(self.wrap_submit(encoded, Service::Agreed))
    }

    /// Multicasts `payload` to one or more groups with cross-group total
    /// ordering (Spread's multi-group multicast). The sender need not be a
    /// member of any target group (open-group semantics).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown clients, invalid names, or a bad group
    /// count.
    pub fn client_multicast(
        &mut self,
        name: &str,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<Vec<EngineOutput>, EngineError> {
        self.client_multicast_sequenced(name, groups, payload, service, 0)
    }

    /// Like [`GroupEngine::client_multicast`], but stamps the message with a
    /// client-session sequence number for duplicate suppression: if `seq`
    /// is nonzero and a message with the same sender name and a sequence
    /// number at least `seq` was already delivered, every engine drops the
    /// message on delivery. Used by reconnecting clients to safely resubmit
    /// messages whose fate was unknown when their daemon died.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown clients, invalid names, or a bad group
    /// count.
    pub fn client_multicast_sequenced(
        &mut self,
        name: &str,
        groups: &[&str],
        payload: Bytes,
        service: Service,
        seq: u64,
    ) -> Result<Vec<EngineOutput>, EngineError> {
        if groups.is_empty() || groups.len() > MAX_GROUPS {
            return Err(EngineError::Proto(GroupProtoError::BadGroupCount(
                groups.len(),
            )));
        }
        for g in groups {
            validate_name(g)?;
        }
        let id = self.require_client(name)?;
        let encoded = encode_group_message(&GroupMessage {
            sender: id,
            seq,
            action: GroupAction::Data {
                groups: groups.iter().map(|g| g.to_string()).collect(),
                payload,
            },
        });
        Ok(self.wrap_submit(encoded, service))
    }

    /// Processes one ordered delivery from the ring, producing local client
    /// events. Undecodable payloads are dropped (a daemon must survive a
    /// misbehaving peer). Packed payloads are unpacked and fragments are
    /// reassembled transparently.
    pub fn on_delivery(&mut self, delivery: &Delivery) -> Vec<EngineOutput> {
        let payload = delivery.payload.clone();
        if payload.first() == Some(&TAG_FRAGMENT) {
            let reassembler = self
                .reassemblers
                .entry(delivery.sender)
                .or_insert_with(|| Reassembler::new(64));
            return match reassembler.push(payload) {
                Ok(Some(whole)) => self.process_group_bytes(whole, delivery.service),
                _ => Vec::new(),
            };
        }
        let Ok(messages) = packing::unpack(payload) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for m in messages {
            out.extend(self.process_group_bytes(m, delivery.service));
        }
        out
    }

    fn process_group_bytes(&mut self, mut payload: Bytes, service: Service) -> Vec<EngineOutput> {
        let Ok(msg) = decode_group_message(&mut payload) else {
            return Vec::new();
        };
        if msg.seq != 0 {
            // Per-sender FIFO within the total order means a duplicate
            // (resubmitted) message can only arrive with a seq at or below
            // the highest already seen for that name.
            let last = self.seen_seqs.entry(msg.sender.name.clone()).or_insert(0);
            if msg.seq <= *last {
                self.duplicates_dropped += 1;
                return Vec::new();
            }
            *last = msg.seq;
        }
        match msg.action {
            GroupAction::Data { groups, payload } => {
                // Route to local members of the union of the target groups,
                // once per client even when groups overlap.
                let mut targets: BTreeSet<String> = BTreeSet::new();
                for g in &groups {
                    for member in self.groups.members(g) {
                        if member.daemon == self.pid && self.local_clients.contains(&member.name) {
                            targets.insert(member.name);
                        }
                    }
                }
                targets
                    .into_iter()
                    .map(|client| EngineOutput::Local {
                        client,
                        event: ClientEvent::Message {
                            sender: msg.sender.clone(),
                            seq: msg.seq,
                            groups: groups.clone(),
                            payload: payload.clone(),
                            service,
                        },
                    })
                    .collect()
            }
            GroupAction::Join { group } => {
                let view = self.groups.join(&group, msg.sender);
                self.views_to_outputs(vec![view])
            }
            GroupAction::Leave { group } => {
                let view = self.groups.leave(&group, &msg.sender);
                self.views_to_outputs(view.into_iter().collect())
            }
            GroupAction::Disconnect => {
                let views = self.groups.remove_client(&msg.sender);
                self.views_to_outputs(views)
            }
        }
    }

    /// Processes an EVS configuration change: clients of daemons that left
    /// the configuration are pruned from every group, and all local clients
    /// are notified.
    ///
    /// A regular configuration that *adds* daemons is a merge of
    /// previously partitioned components whose group tables diverged
    /// (each side pruned the other's clients). Every daemon then
    /// re-announces its own local clients' memberships as ordered joins:
    /// joins are idempotent at the replicas, so all tables reconverge,
    /// and the resulting views tell every member the group is whole
    /// again. The outputs may therefore include [`EngineOutput::Submit`]s.
    pub fn on_config_change(&mut self, change: &ConfigChange) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        for client in &self.local_clients {
            out.push(EngineOutput::Local {
                client: client.clone(),
                event: ClientEvent::Config {
                    daemons: change.members.clone(),
                    transitional: change.transitional,
                },
            });
        }
        if !change.transitional {
            let views = self.groups.retain_daemons(&change.members);
            out.extend(self.views_to_outputs(views));
            let merged = !self.known_daemons.is_empty()
                && change
                    .members
                    .iter()
                    .any(|m| !self.known_daemons.contains(m));
            if merged {
                for (group, id) in self.groups.memberships_of_daemon(self.pid) {
                    if !self.local_clients.contains(&id.name) {
                        continue;
                    }
                    let encoded = encode_group_message(&GroupMessage {
                        sender: id,
                        seq: 0,
                        action: GroupAction::Join { group },
                    });
                    out.extend(self.wrap_submit(encoded, Service::Agreed));
                }
            }
            self.known_daemons = change.members.iter().cloned().collect();
        }
        out
    }

    fn views_to_outputs(&self, views: Vec<GroupView>) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        for view in views {
            // Every local member of the group gets the view; the causing
            // client gets it too if local (including a leaver, as its
            // confirmation).
            let mut recipients: BTreeSet<String> = view
                .members
                .iter()
                .filter(|m| m.daemon == self.pid && self.local_clients.contains(&m.name))
                .map(|m| m.name.clone())
                .collect();
            if let Some(cause) = &view.cause {
                if cause.daemon == self.pid && self.local_clients.contains(&cause.name) {
                    recipients.insert(cause.name.clone());
                }
            }
            for client in recipients {
                out.push(EngineOutput::Local {
                    client,
                    event: ClientEvent::View {
                        group: view.group.clone(),
                        members: view.members.clone(),
                    },
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelring_core::{RingId, Round, Seq};

    fn delivery_of(payload: Bytes, service: Service, seq: u64) -> Delivery {
        Delivery {
            seq: Seq::new(seq),
            sender: ParticipantId::new(0),
            round: Round::new(1),
            service,
            payload,
        }
    }

    /// Runs the Submit outputs of `from` through `engines` as ordered
    /// deliveries, returning all local events per engine.
    fn propagate(
        outputs: Vec<EngineOutput>,
        engines: &mut [GroupEngine],
        seq: &mut u64,
    ) -> Vec<Vec<(String, ClientEvent)>> {
        let mut locals = vec![Vec::new(); engines.len()];
        for o in outputs {
            match o {
                EngineOutput::Submit { payload, service } => {
                    *seq += 1;
                    let d = delivery_of(payload, service, *seq);
                    for (i, e) in engines.iter_mut().enumerate() {
                        for out in e.on_delivery(&d) {
                            if let EngineOutput::Local { client, event } = out {
                                locals[i].push((client, event));
                            }
                        }
                    }
                }
                EngineOutput::Local { .. } => unreachable!("client ops only submit"),
            }
        }
        locals
    }

    #[test]
    fn join_produces_views_at_every_daemon_with_members() {
        let mut engines = vec![
            GroupEngine::new(ParticipantId::new(0)),
            GroupEngine::new(ParticipantId::new(1)),
        ];
        engines[0].client_connect("a").unwrap();
        engines[1].client_connect("b").unwrap();
        let mut seq = 0;
        let out = engines[0].client_join("a", "g").unwrap();
        let locals = propagate(out, &mut engines, &mut seq);
        // a (at daemon 0) gets the view; daemon 1 has no members yet.
        assert_eq!(locals[0].len(), 1);
        assert!(locals[1].is_empty());
        let out = engines[1].client_join("b", "g").unwrap();
        let locals = propagate(out, &mut engines, &mut seq);
        assert_eq!(locals[0].len(), 1, "a sees b join");
        assert_eq!(locals[1].len(), 1, "b sees itself join");
        assert_eq!(engines[0].groups().members("g").len(), 2);
        assert_eq!(engines[1].groups().members("g").len(), 2);
    }

    #[test]
    fn data_routed_to_members_only() {
        let mut engines = vec![
            GroupEngine::new(ParticipantId::new(0)),
            GroupEngine::new(ParticipantId::new(1)),
        ];
        engines[0].client_connect("member").unwrap();
        engines[0].client_connect("outsider").unwrap();
        engines[1].client_connect("remote").unwrap();
        let mut seq = 0;
        let out = engines[0].client_join("member", "g").unwrap();
        propagate(out, &mut engines, &mut seq);
        let out = engines[1].client_join("remote", "g").unwrap();
        propagate(out, &mut engines, &mut seq);

        // Open-group semantics: "outsider" sends without being a member.
        let out = engines[0]
            .client_multicast(
                "outsider",
                &["g"],
                Bytes::from_static(b"hi"),
                Service::Agreed,
            )
            .unwrap();
        let locals = propagate(out, &mut engines, &mut seq);
        let names0: Vec<&String> = locals[0].iter().map(|(c, _)| c).collect();
        assert_eq!(names0, vec!["member"], "only the member receives");
        let names1: Vec<&String> = locals[1].iter().map(|(c, _)| c).collect();
        assert_eq!(names1, vec!["remote"]);
    }

    #[test]
    fn multi_group_multicast_deduplicates_recipients() {
        let mut engines = vec![GroupEngine::new(ParticipantId::new(0))];
        engines[0].client_connect("c").unwrap();
        let mut seq = 0;
        for g in ["g1", "g2"] {
            let out = engines[0].client_join("c", g).unwrap();
            propagate(out, &mut engines, &mut seq);
        }
        let out = engines[0]
            .client_multicast(
                "c",
                &["g1", "g2"],
                Bytes::from_static(b"x"),
                Service::Agreed,
            )
            .unwrap();
        let locals = propagate(out, &mut engines, &mut seq);
        assert_eq!(locals[0].len(), 1, "one copy despite two target groups");
        match &locals[0][0].1 {
            ClientEvent::Message { groups, .. } => assert_eq!(groups.len(), 2),
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn disconnect_leaves_all_groups_everywhere() {
        let mut engines = vec![
            GroupEngine::new(ParticipantId::new(0)),
            GroupEngine::new(ParticipantId::new(1)),
        ];
        engines[0].client_connect("a").unwrap();
        engines[1].client_connect("b").unwrap();
        let mut seq = 0;
        for (e, c, g) in [(0usize, "a", "g1"), (0, "a", "g2"), (1, "b", "g1")] {
            let out = engines[e].client_join(c, g).unwrap();
            propagate(out, &mut engines, &mut seq);
        }
        let out = engines[0].client_disconnect("a").unwrap();
        let locals = propagate(out, &mut engines, &mut seq);
        assert!(engines[1].groups().members("g2").is_empty());
        assert_eq!(engines[1].groups().members("g1").len(), 1);
        // b sees the g1 view change.
        assert!(locals[1].iter().any(
            |(c, e)| c == "b" && matches!(e, ClientEvent::View { group, .. } if group == "g1")
        ));
    }

    #[test]
    fn config_change_prunes_departed_daemons() {
        let mut e = GroupEngine::new(ParticipantId::new(0));
        e.client_connect("local").unwrap();
        let mut seq = 0;
        let out = e.client_join("local", "g").unwrap();
        propagate(out, std::slice::from_mut(&mut e), &mut seq);
        // A remote client joins via the ordered stream.
        let remote_join = packing::bare(encode_group_message(&GroupMessage {
            sender: ClientId {
                daemon: ParticipantId::new(5),
                name: "remote".into(),
            },
            seq: 0,
            action: GroupAction::Join { group: "g".into() },
        }));
        e.on_delivery(&delivery_of(remote_join, Service::Agreed, 99));
        assert_eq!(e.groups().members("g").len(), 2);

        // Daemon 5 drops out of the configuration.
        let outputs = e.on_config_change(&ConfigChange {
            ring_id: RingId::new(ParticipantId::new(0), 8),
            members: vec![ParticipantId::new(0)],
            transitional: false,
        });
        assert_eq!(e.groups().members("g").len(), 1);
        // The local client got a Config event and a View event.
        let events: Vec<&ClientEvent> = outputs
            .iter()
            .filter_map(|o| match o {
                EngineOutput::Local { event, .. } => Some(event),
                _ => None,
            })
            .collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, ClientEvent::Config { .. })));
        assert!(events.iter().any(|e| matches!(e, ClientEvent::View { .. })));
    }

    #[test]
    fn merging_config_reannounces_local_memberships() {
        // Two daemons, one local client each, both in "g"; a partition
        // prunes each side's view of the other, and the healing
        // (merging) configuration makes both engines re-announce their
        // local joins so the replicated tables reconverge.
        let d0 = ParticipantId::new(0);
        let d1 = ParticipantId::new(1);
        let mut engines = vec![GroupEngine::new(d0), GroupEngine::new(d1)];
        engines[0].client_connect("a").unwrap();
        engines[1].client_connect("b").unwrap();
        let mut seq = 0;
        for (e, c) in [(0usize, "a"), (1, "b")] {
            let out = engines[e].client_join(c, "g").unwrap();
            propagate(out, &mut engines, &mut seq);
        }
        let full = |counter| ConfigChange {
            ring_id: RingId::new(d0, counter),
            members: vec![d0, d1],
            transitional: false,
        };
        // Installing the first configuration re-announces nothing.
        for e in &mut engines {
            assert!(!e
                .on_config_change(&full(4))
                .iter()
                .any(|o| matches!(o, EngineOutput::Submit { .. })));
        }
        // Partition: each engine alone. Shrinking re-announces nothing.
        for (i, e) in engines.iter_mut().enumerate() {
            let alone = ConfigChange {
                ring_id: RingId::new(ParticipantId::new(i as u16), 8),
                members: vec![ParticipantId::new(i as u16)],
                transitional: false,
            };
            assert!(!e
                .on_config_change(&alone)
                .iter()
                .any(|o| matches!(o, EngineOutput::Submit { .. })));
            assert_eq!(e.groups().members("g").len(), 1, "far side pruned");
        }
        // Heal: both engines re-announce their local member, and
        // replaying the announcements through the total order restores
        // the full view everywhere.
        let mut announced = Vec::new();
        for e in &mut engines {
            let outputs = e.on_config_change(&full(12));
            announced.extend(
                outputs
                    .into_iter()
                    .filter(|o| matches!(o, EngineOutput::Submit { .. })),
            );
        }
        assert_eq!(
            announced.len(),
            2,
            "each daemon re-announces its local join"
        );
        let locals = propagate(announced, &mut engines, &mut seq);
        for e in &engines {
            assert_eq!(e.groups().members("g").len(), 2, "tables reconverge");
        }
        for (i, name) in ["a", "b"].iter().enumerate() {
            assert!(
                locals[i].iter().any(|(c, ev)| c == *name
                    && matches!(ev, ClientEvent::View { group, members }
                        if group == "g" && members.len() == 2)),
                "{name} hears the restored two-member view"
            );
        }
    }

    #[test]
    fn transitional_config_does_not_prune() {
        let mut e = GroupEngine::new(ParticipantId::new(0));
        e.client_connect("local").unwrap();
        let remote_join = packing::bare(encode_group_message(&GroupMessage {
            sender: ClientId {
                daemon: ParticipantId::new(5),
                name: "remote".into(),
            },
            seq: 0,
            action: GroupAction::Join { group: "g".into() },
        }));
        e.on_delivery(&delivery_of(remote_join, Service::Agreed, 1));
        e.on_config_change(&ConfigChange {
            ring_id: RingId::new(ParticipantId::new(0), 8),
            members: vec![ParticipantId::new(0)],
            transitional: true,
        });
        assert_eq!(
            e.groups().members("g").len(),
            1,
            "transitional configs do not prune membership"
        );
    }

    #[test]
    fn unknown_and_duplicate_clients_rejected() {
        let mut e = GroupEngine::new(ParticipantId::new(0));
        assert!(matches!(
            e.client_join("ghost", "g"),
            Err(EngineError::UnknownClient(_))
        ));
        e.client_connect("a").unwrap();
        assert!(matches!(
            e.client_connect("a"),
            Err(EngineError::DuplicateClient(_))
        ));
    }

    #[test]
    fn bad_group_counts_rejected() {
        let mut e = GroupEngine::new(ParticipantId::new(0));
        e.client_connect("a").unwrap();
        assert!(e
            .client_multicast("a", &[], Bytes::new(), Service::Agreed)
            .is_err());
        let too_many: Vec<String> = (0..MAX_GROUPS + 1).map(|i| format!("g{i}")).collect();
        let refs: Vec<&str> = too_many.iter().map(String::as_str).collect();
        assert!(e
            .client_multicast("a", &refs, Bytes::new(), Service::Agreed)
            .is_err());
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let mut engines = vec![
            GroupEngine::with_options(
                ParticipantId::new(0),
                EngineOptions {
                    packing_budget: None,
                    fragment_budget: 256,
                },
            ),
            GroupEngine::with_options(
                ParticipantId::new(1),
                EngineOptions {
                    packing_budget: None,
                    fragment_budget: 256,
                },
            ),
        ];
        engines[0].client_connect("a").unwrap();
        engines[1].client_connect("b").unwrap();
        let mut seq = 0;
        let out = engines[1].client_join("b", "g").unwrap();
        propagate(out, &mut engines, &mut seq);

        let big = Bytes::from(
            (0..2000u32)
                .flat_map(|i| i.to_le_bytes())
                .collect::<Vec<u8>>(),
        );
        let out = engines[0]
            .client_multicast("a", &["g"], big.clone(), Service::Agreed)
            .unwrap();
        assert!(
            out.len() > 5,
            "big message must fragment, got {}",
            out.len()
        );
        let locals = propagate(out, &mut engines, &mut seq);
        assert_eq!(locals[1].len(), 1, "exactly one reassembled delivery");
        match &locals[1][0].1 {
            ClientEvent::Message { payload, .. } => assert_eq!(payload, &big),
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn packing_coalesces_small_messages() {
        let mut engines = vec![GroupEngine::with_options(
            ParticipantId::new(0),
            EngineOptions {
                packing_budget: Some(1350),
                fragment_budget: 48 * 1024,
            },
        )];
        engines[0].client_connect("a").unwrap();
        let mut seq = 0;
        let out = engines[0].client_join("a", "g").unwrap();
        let mut outputs = out;
        outputs.extend(engines[0].flush());
        propagate(outputs, &mut engines, &mut seq);

        // Twenty tiny messages: far fewer ring payloads than messages.
        let mut submitted = Vec::new();
        for i in 0..20u32 {
            submitted.extend(
                engines[0]
                    .client_multicast("a", &["g"], Bytes::from(format!("m{i}")), Service::Agreed)
                    .unwrap(),
            );
        }
        submitted.extend(engines[0].flush());
        assert!(
            submitted.len() < 5,
            "20 tiny messages should pack into a few payloads, got {}",
            submitted.len()
        );
        let locals = propagate(submitted, &mut engines, &mut seq);
        let texts: Vec<String> = locals[0]
            .iter()
            .filter_map(|(_, e)| match e {
                ClientEvent::Message { payload, .. } => {
                    Some(String::from_utf8_lossy(payload).to_string())
                }
                _ => None,
            })
            .collect();
        assert_eq!(texts.len(), 20, "all packed messages delivered");
        assert_eq!(texts[0], "m0");
        assert_eq!(texts[19], "m19");
    }

    #[test]
    fn packing_never_mixes_service_levels() {
        let mut e = GroupEngine::with_options(
            ParticipantId::new(0),
            EngineOptions {
                packing_budget: Some(1350),
                fragment_budget: 48 * 1024,
            },
        );
        e.client_connect("a").unwrap();
        let _ = e.client_multicast("a", &["g"], Bytes::from_static(b"x"), Service::Agreed);
        let _ = e.client_multicast("a", &["g"], Bytes::from_static(b"y"), Service::Safe);
        let flushed = e.flush();
        assert_eq!(flushed.len(), 2, "one packet per service level");
        let services: Vec<Service> = flushed
            .iter()
            .filter_map(|o| match o {
                EngineOutput::Submit { service, .. } => Some(*service),
                _ => None,
            })
            .collect();
        assert!(services.contains(&Service::Agreed));
        assert!(services.contains(&Service::Safe));
    }

    #[test]
    fn sequenced_duplicates_dropped_across_daemons() {
        let mut engines = vec![
            GroupEngine::new(ParticipantId::new(0)),
            GroupEngine::new(ParticipantId::new(1)),
        ];
        engines[0].client_connect("pub").unwrap();
        engines[1].client_connect("sub").unwrap();
        let mut seq = 0;
        let out = engines[1].client_join("sub", "g").unwrap();
        propagate(out, &mut engines, &mut seq);

        // First sequenced send delivers normally.
        let out = engines[0]
            .client_multicast_sequenced(
                "pub",
                &["g"],
                Bytes::from_static(b"m1"),
                Service::Agreed,
                1,
            )
            .unwrap();
        let locals = propagate(out, &mut engines, &mut seq);
        assert_eq!(locals[1].len(), 1);

        // The same client reconnects at daemon 1 and resubmits seq 1, then
        // sends seq 2: the duplicate is suppressed everywhere, the new
        // message goes through.
        engines[1].client_connect("pub").unwrap();
        let dup = engines[1]
            .client_multicast_sequenced(
                "pub",
                &["g"],
                Bytes::from_static(b"m1"),
                Service::Agreed,
                1,
            )
            .unwrap();
        let locals = propagate(dup, &mut engines, &mut seq);
        assert!(locals[1].is_empty(), "duplicate seq must be dropped");
        assert_eq!(engines[0].duplicates_dropped(), 1);
        assert_eq!(engines[1].duplicates_dropped(), 1);
        let fresh = engines[1]
            .client_multicast_sequenced(
                "pub",
                &["g"],
                Bytes::from_static(b"m2"),
                Service::Agreed,
                2,
            )
            .unwrap();
        let locals = propagate(fresh, &mut engines, &mut seq);
        assert_eq!(locals[1].len(), 1, "next seq delivers");
        assert_eq!(engines[0].last_seq("pub"), 2);

        // Unsequenced (seq 0) messages are never suppressed.
        let a = engines[1]
            .client_multicast("pub", &["g"], Bytes::from_static(b"u"), Service::Agreed)
            .unwrap();
        let b = engines[1]
            .client_multicast("pub", &["g"], Bytes::from_static(b"u"), Service::Agreed)
            .unwrap();
        let mut both = a;
        both.extend(b);
        let locals = propagate(both, &mut engines, &mut seq);
        assert_eq!(locals[1].len(), 2, "seq 0 messages always deliver");
    }

    #[test]
    fn undecodable_delivery_is_dropped() {
        let mut e = GroupEngine::new(ParticipantId::new(0));
        let out = e.on_delivery(&delivery_of(
            Bytes::from_static(b"\xff\xff garbage"),
            Service::Agreed,
            1,
        ));
        assert!(out.is_empty());
    }
}
