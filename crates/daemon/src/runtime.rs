//! The runnable group daemon: a [`GroupEngine`] pumped by a thread over a
//! real UDP transport node, serving in-process clients through channels
//! (the "IPC" of the paper's daemon prototype).

use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::Duration;

use accelring_core::Service;
use accelring_transport::{AppEvent, NodeHandle};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use crate::engine::{ClientEvent, EngineError, EngineOptions, EngineOutput, GroupEngine};

enum Cmd {
    Connect {
        name: String,
        events: Sender<ClientEvent>,
        resp: Sender<Result<(), EngineError>>,
    },
    Join {
        name: String,
        group: String,
        resp: Sender<Result<(), EngineError>>,
    },
    Leave {
        name: String,
        group: String,
        resp: Sender<Result<(), EngineError>>,
    },
    Multicast {
        name: String,
        groups: Vec<String>,
        payload: Bytes,
        service: Service,
        resp: Sender<Result<(), EngineError>>,
    },
    Disconnect {
        name: String,
    },
    Shutdown,
}

/// A running group daemon: the ordering/membership stack plus the group
/// engine, serving local clients.
#[derive(Debug)]
pub struct GroupDaemon {
    cmd_tx: Sender<Cmd>,
    thread: Option<JoinHandle<()>>,
}

impl GroupDaemon {
    /// Starts the group layer on top of a running transport node with
    /// default engine options.
    pub fn start(node: NodeHandle) -> GroupDaemon {
        GroupDaemon::start_with_options(node, EngineOptions::default())
    }

    /// Starts the group layer with explicit packing/fragmentation options.
    pub fn start_with_options(node: NodeHandle, options: EngineOptions) -> GroupDaemon {
        let (cmd_tx, cmd_rx) = unbounded();
        let thread = std::thread::Builder::new()
            .name(format!("group-daemon-{}", node.pid()))
            .spawn(move || pump(node, cmd_rx, options))
            .expect("spawn group daemon thread");
        GroupDaemon {
            cmd_tx,
            thread: Some(thread),
        }
    }

    /// Connects a new local client.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid or duplicate names.
    pub fn connect(&self, name: &str) -> Result<GroupClient, EngineError> {
        let (event_tx, event_rx) = unbounded();
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(Cmd::Connect {
            name: name.to_string(),
            events: event_tx,
            resp: resp_tx,
        });
        resp_rx
            .recv()
            .unwrap_or(Err(EngineError::UnknownClient(name.to_string())))?;
        Ok(GroupClient {
            name: name.to_string(),
            cmd_tx: self.cmd_tx.clone(),
            event_rx,
        })
    }

    /// Stops the daemon thread (clients become inert).
    pub fn shutdown(mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for GroupDaemon {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A client connected to a local [`GroupDaemon`].
#[derive(Debug)]
pub struct GroupClient {
    name: String,
    cmd_tx: Sender<Cmd>,
    event_rx: Receiver<ClientEvent>,
}

impl GroupClient {
    /// This client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stream of messages, views, and configuration notices.
    pub fn events(&self) -> &Receiver<ClientEvent> {
        &self.event_rx
    }

    fn call(
        &self,
        make: impl FnOnce(Sender<Result<(), EngineError>>) -> Cmd,
    ) -> Result<(), EngineError> {
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(make(resp_tx));
        resp_rx
            .recv()
            .unwrap_or(Err(EngineError::UnknownClient(self.name.clone())))
    }

    /// Joins a group.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid group names.
    pub fn join(&self, group: &str) -> Result<(), EngineError> {
        self.call(|resp| Cmd::Join {
            name: self.name.clone(),
            group: group.to_string(),
            resp,
        })
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid group names.
    pub fn leave(&self, group: &str) -> Result<(), EngineError> {
        self.call(|resp| Cmd::Leave {
            name: self.name.clone(),
            group: group.to_string(),
            resp,
        })
    }

    /// Multicasts to one or more groups with cross-group total ordering.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid names or group counts.
    pub fn multicast(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<(), EngineError> {
        self.call(|resp| Cmd::Multicast {
            name: self.name.clone(),
            groups: groups.iter().map(|g| g.to_string()).collect(),
            payload,
            service,
            resp,
        })
    }

    /// Disconnects, leaving every group.
    pub fn disconnect(self) {
        let _ = self.cmd_tx.send(Cmd::Disconnect {
            name: self.name.clone(),
        });
    }
}

fn pump(node: NodeHandle, cmd_rx: Receiver<Cmd>, options: EngineOptions) {
    let mut engine = GroupEngine::with_options(node.pid(), options);
    let mut client_channels: HashMap<String, Sender<ClientEvent>> = HashMap::new();

    let dispatch = |engine_outputs: Vec<EngineOutput>,
                    channels: &HashMap<String, Sender<ClientEvent>>| {
        for out in engine_outputs {
            match out {
                EngineOutput::Submit { payload, service } => {
                    // Engine traffic is low-rate control fan-out; a full
                    // command queue here means the daemon is wedged and the
                    // protocol's own recovery will resynchronize the group.
                    let _ = node.submit(payload, service);
                }
                EngineOutput::Local { client, event } => {
                    if let Some(tx) = channels.get(&client) {
                        let _ = tx.send(event);
                    }
                }
            }
        }
    };

    loop {
        // Client commands.
        while let Ok(cmd) = cmd_rx.try_recv() {
            match cmd {
                Cmd::Connect { name, events, resp } => {
                    let result = engine.client_connect(&name);
                    if result.is_ok() {
                        client_channels.insert(name, events);
                    }
                    let _ = resp.send(result);
                }
                Cmd::Join { name, group, resp } => {
                    let result = engine.client_join(&name, &group);
                    let _ = resp.send(result.map(|o| dispatch(o, &client_channels)));
                }
                Cmd::Leave { name, group, resp } => {
                    let result = engine.client_leave(&name, &group);
                    let _ = resp.send(result.map(|o| dispatch(o, &client_channels)));
                }
                Cmd::Multicast {
                    name,
                    groups,
                    payload,
                    service,
                    resp,
                } => {
                    let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                    let result = engine.client_multicast(&name, &refs, payload, service);
                    let _ = resp.send(result.map(|o| dispatch(o, &client_channels)));
                }
                Cmd::Disconnect { name } => {
                    if let Ok(outputs) = engine.client_disconnect(&name) {
                        dispatch(outputs, &client_channels);
                    }
                    client_channels.remove(&name);
                }
                Cmd::Shutdown => return,
            }
        }
        // Close any partially packed payloads so buffered client messages
        // are not held hostage waiting for more traffic.
        let flushed = engine.flush();
        dispatch(flushed, &client_channels);

        // Ring events.
        match node.events().recv_timeout(Duration::from_millis(1)) {
            Ok(AppEvent::Delivered(d)) => {
                let outputs = engine.on_delivery(&d);
                dispatch(outputs, &client_channels);
            }
            Ok(AppEvent::Config(c)) => {
                let outputs = engine.on_config_change(&c);
                dispatch(outputs, &client_channels);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
