//! The runnable group daemon: a [`GroupEngine`] pumped by a reactor
//! thread over a real UDP transport node, serving in-process clients
//! through channels and remote clients through the session frontend
//! ([`crate::frontend`]).
//!
//! One thread does everything: it parks on the session socket with
//! `ppoll` (via [`Poller`]), so a remote SUBMIT wakes it the instant the
//! datagram lands; in-process command channels and ring events are
//! drained on every wakeup with a short tick bounding their latency. All
//! client sessions — channel adapters and remote sessions alike — live in
//! one slab-indexed [`SessionMux`], sharing fair egress, credit gating,
//! and per-cause shed accounting.
//!
//! The pump supervises its transport node: when the node thread dies
//! (panic, kill switch, or plain exit) every connected client receives a
//! terminal [`ClientEvent::Disconnected`] instead of silently hanging on
//! an event channel that will never speak again. Clients can then
//! reconnect to a surviving daemon and resubmit in-flight messages with
//! session sequence numbers; the replicated engines drop the duplicates.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use accelring_core::{FrontendStats, Service, ShedCause};
use accelring_transport::{AppEvent, NodeHandle, Poller, TransportProbe, TransportStats};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Select, Sender, TryRecvError};

use crate::engine::{ClientEvent, EngineError, EngineOptions, EngineOutput, GroupEngine};
use crate::frontend::{FrontendOptions, Ingress, SessionMux};
use crate::proto::GroupAction;

/// Liveness backstop for the pump's select: everything interesting wakes
/// the select through a channel, so this only bounds how stale the
/// exported stats can get.
const IDLE_TICK: Duration = Duration::from_millis(50);

/// Wait cap when the session socket is open: a datagram wakes the
/// reactor immediately through `ppoll`; command channels and ring events
/// (which cannot be polled) are picked up within this tick.
const REACTOR_TICK: Duration = Duration::from_millis(1);

/// Runtime settings for a [`GroupDaemon`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DaemonOptions {
    /// Packing/fragmentation settings for the group engine.
    pub engine: EngineOptions,
    /// Per-client event queue capacity; `None` means unbounded. With a
    /// bounded queue, a client that stops draining its events sheds
    /// `Message`/`View`/`Config` events (counted in
    /// [`DaemonStats::events_shed`]) instead of growing daemon memory
    /// without bound. The terminal [`ClientEvent::Disconnected`] is never
    /// shed — the pump blocks briefly to deliver it, and channel closure
    /// backstops even that.
    pub client_queue: Option<usize>,
    /// Session-frontend tuning; set
    /// [`FrontendOptions::session_socket`] to serve remote
    /// [`crate::frontend::SessionClient`]s over UDP.
    pub frontend: FrontendOptions,
}

/// Counters exported by a running [`GroupDaemon`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Client events dropped across all causes (the sum of the per-cause
    /// counters below).
    pub events_shed: u64,
    /// Events shed because one session's bounded queue was full.
    pub events_shed_slow: u64,
    /// Events shed because the frontend-wide queued-event budget was
    /// exhausted.
    pub events_shed_budget: u64,
    /// Events dropped because their session closed while the delivery
    /// was in flight.
    pub events_shed_race: u64,
    /// Sequenced messages dropped by this daemon's engine as duplicates.
    pub duplicates_dropped: u64,
}

#[derive(Debug, Default)]
struct SharedStats {
    frontend: Mutex<FrontendStats>,
    duplicates_dropped: AtomicU64,
}

enum Cmd {
    Connect {
        name: String,
        events: Sender<ClientEvent>,
        resp: Sender<Result<(), EngineError>>,
    },
    Join {
        name: String,
        group: String,
        resp: Sender<Result<(), EngineError>>,
    },
    Leave {
        name: String,
        group: String,
        resp: Sender<Result<(), EngineError>>,
    },
    Multicast {
        name: String,
        groups: Vec<String>,
        payload: Bytes,
        service: Service,
        seq: u64,
        resp: Sender<Result<(), EngineError>>,
    },
    Disconnect {
        name: String,
    },
    Shutdown,
    ShutdownGraceful {
        drain: Duration,
    },
}

/// A running group daemon: the ordering/membership stack plus the group
/// engine, serving local clients.
#[derive(Debug)]
pub struct GroupDaemon {
    cmd_tx: Sender<Cmd>,
    thread: Option<JoinHandle<()>>,
    options: DaemonOptions,
    shared: Arc<SharedStats>,
    probe: TransportProbe,
    session_addr: Option<SocketAddr>,
}

impl GroupDaemon {
    /// Starts the group layer on top of a running transport node with
    /// default options.
    pub fn start(node: NodeHandle) -> GroupDaemon {
        GroupDaemon::start_with(node, DaemonOptions::default())
    }

    /// Starts the group layer with explicit packing/fragmentation options
    /// and an unbounded client queue.
    pub fn start_with_options(node: NodeHandle, options: EngineOptions) -> GroupDaemon {
        GroupDaemon::start_with(
            node,
            DaemonOptions {
                engine: options,
                ..DaemonOptions::default()
            },
        )
    }

    /// Starts the group layer with full runtime options.
    pub fn start_with(node: NodeHandle, options: DaemonOptions) -> GroupDaemon {
        let (cmd_tx, cmd_rx) = unbounded();
        let shared = Arc::new(SharedStats::default());
        let pump_shared = shared.clone();
        // Taken before the handle moves into the pump thread: the probe
        // keeps the transport counters readable for the daemon's lifetime.
        let probe = node.probe();
        let pump_probe = probe.clone();
        // Bound before the thread spawns so the session address is known
        // the moment this constructor returns.
        let mux = SessionMux::new(options.frontend).expect("bind session socket");
        let session_addr = mux.local_addr();
        let thread = std::thread::Builder::new()
            .name(format!("group-daemon-{}", node.pid()))
            .spawn(move || pump(node, cmd_rx, options.engine, mux, pump_shared, pump_probe))
            .expect("spawn group daemon thread");
        GroupDaemon {
            cmd_tx,
            thread: Some(thread),
            options,
            shared,
            probe,
            session_addr,
        }
    }

    /// The UDP address remote [`crate::frontend::SessionClient`]s dial,
    /// or `None` when the session socket is disabled.
    pub fn session_addr(&self) -> Option<SocketAddr> {
        self.session_addr
    }

    /// A snapshot of the session frontend's counters (sessions open,
    /// submits, per-cause sheds, reactor wakeups/syscalls).
    pub fn frontend_stats(&self) -> FrontendStats {
        *self.shared.frontend.lock().expect("frontend stats lock")
    }

    /// Connects a new local client with no session history (sequenced
    /// sends start at 1).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid or duplicate names.
    pub fn connect(&self, name: &str) -> Result<GroupClient, EngineError> {
        self.connect_session(name, 0)
    }

    /// Connects a client resuming an earlier session: its next sequenced
    /// multicast is stamped `resume_from + 1`. A client reconnecting after
    /// its daemon died passes the last sequence number it *knows* was
    /// accepted, then re-sends everything after it with
    /// [`GroupClient::resubmit`]; engines drop whatever actually made it
    /// through the first time.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid or duplicate names, or if the
    /// daemon is no longer running.
    pub fn connect_session(
        &self,
        name: &str,
        resume_from: u64,
    ) -> Result<GroupClient, EngineError> {
        let event_rx = {
            let (event_tx, event_rx) = match self.options.client_queue {
                Some(cap) => bounded(cap),
                None => unbounded(),
            };
            let (resp_tx, resp_rx) = bounded(1);
            let _ = self.cmd_tx.send(Cmd::Connect {
                name: name.to_string(),
                events: event_tx,
                resp: resp_tx,
            });
            resp_rx
                .recv()
                .unwrap_or(Err(EngineError::UnknownClient(name.to_string())))?;
            event_rx
        };
        Ok(GroupClient {
            name: name.to_string(),
            cmd_tx: self.cmd_tx.clone(),
            event_rx,
            next_seq: AtomicU64::new(resume_from),
        })
    }

    /// Current runtime counters.
    pub fn stats(&self) -> DaemonStats {
        let fs = *self.shared.frontend.lock().expect("frontend stats lock");
        DaemonStats {
            events_shed: fs.events_shed(),
            events_shed_slow: fs.shed_slow_session,
            events_shed_budget: fs.shed_global_budget,
            events_shed_race: fs.shed_disconnect_race,
            duplicates_dropped: self.shared.duplicates_dropped.load(Ordering::Relaxed),
        }
    }

    /// A snapshot of the underlying transport node's counters (datagrams,
    /// syscalls, pool hits — the hot-path efficiency numbers), readable
    /// even though the node handle lives inside the pump thread.
    pub fn transport_stats(&self) -> TransportStats {
        self.probe.stats()
    }

    /// A clonable probe onto the node's transport counters and buffer
    /// pools, outliving this daemon's shutdown (useful for leak checks).
    pub fn transport_probe(&self) -> TransportProbe {
        self.probe.clone()
    }

    /// Stops the daemon thread immediately. Connected clients receive
    /// [`ClientEvent::Disconnected`]; no departure courtesy is extended to
    /// the ring (peers detect the loss via token-loss timeout).
    pub fn shutdown(mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Gracefully drains and leaves: pending submissions and deliveries
    /// are flushed (bounded by `drain`), then the node announces its
    /// departure so survivors reform after one gather round instead of
    /// waiting out the token-loss timeout; the departure's configuration
    /// change prunes this daemon's clients from group views everywhere.
    /// Local clients receive their final deliveries, then
    /// [`ClientEvent::Disconnected`].
    pub fn shutdown_graceful(mut self, drain: Duration) {
        let _ = self.cmd_tx.send(Cmd::ShutdownGraceful { drain });
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for GroupDaemon {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A client connected to a local [`GroupDaemon`].
#[derive(Debug)]
pub struct GroupClient {
    name: String,
    cmd_tx: Sender<Cmd>,
    event_rx: Receiver<ClientEvent>,
    /// Last session sequence number handed out by
    /// [`GroupClient::multicast_sequenced`].
    next_seq: AtomicU64,
}

impl GroupClient {
    /// This client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stream of messages, views, configuration notices, and the
    /// terminal [`ClientEvent::Disconnected`]. The channel closing without
    /// one also means the daemon is gone.
    pub fn events(&self) -> &Receiver<ClientEvent> {
        &self.event_rx
    }

    /// The last sequence number stamped by
    /// [`GroupClient::multicast_sequenced`] (or the resume watermark if
    /// none yet). Persist this across reconnects.
    pub fn last_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    fn call(
        &self,
        make: impl FnOnce(Sender<Result<(), EngineError>>) -> Cmd,
    ) -> Result<(), EngineError> {
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(make(resp_tx));
        resp_rx
            .recv()
            .unwrap_or(Err(EngineError::UnknownClient(self.name.clone())))
    }

    /// Joins a group.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid group names.
    pub fn join(&self, group: &str) -> Result<(), EngineError> {
        self.call(|resp| Cmd::Join {
            name: self.name.clone(),
            group: group.to_string(),
            resp,
        })
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid group names.
    pub fn leave(&self, group: &str) -> Result<(), EngineError> {
        self.call(|resp| Cmd::Leave {
            name: self.name.clone(),
            group: group.to_string(),
            resp,
        })
    }

    /// Multicasts to one or more groups with cross-group total ordering
    /// (unsequenced: a resubmission after a daemon failure could be
    /// delivered twice; use [`GroupClient::multicast_sequenced`] when that
    /// matters).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid names or group counts.
    pub fn multicast(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<(), EngineError> {
        self.send_with_seq(groups, payload, service, 0)
    }

    /// Multicasts with the session's next sequence number stamped on the
    /// message, returning that number. If this daemon later dies with the
    /// message's fate unknown, reconnect elsewhere and
    /// [`GroupClient::resubmit`] with the same number: every engine drops
    /// the copy it has already delivered.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid names or group counts.
    pub fn multicast_sequenced(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<u64, EngineError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.send_with_seq(groups, payload, service, seq)?;
        Ok(seq)
    }

    /// Re-sends a message under an explicit session sequence number after
    /// a reconnect. Delivered at most once ring-wide: duplicates of an
    /// already-delivered sequence number are suppressed by every engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for invalid names or group counts.
    pub fn resubmit(
        &self,
        seq: u64,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<(), EngineError> {
        self.send_with_seq(groups, payload, service, seq)
    }

    fn send_with_seq(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
        seq: u64,
    ) -> Result<(), EngineError> {
        self.call(|resp| Cmd::Multicast {
            name: self.name.clone(),
            groups: groups.iter().map(|g| g.to_string()).collect(),
            payload,
            service,
            seq,
            resp,
        })
    }

    /// Disconnects, leaving every group.
    pub fn disconnect(self) {
        let _ = self.cmd_tx.send(Cmd::Disconnect {
            name: self.name.clone(),
        });
    }
}

/// Why the pump loop ended.
enum Exit {
    /// Immediate shutdown: no ring courtesy.
    Immediate,
    /// Graceful shutdown: drain and announce departure.
    Graceful(Duration),
    /// The transport node is dead (panic, kill, or exit).
    NodeDead(String),
}

struct Pump {
    engine: GroupEngine,
    mux: SessionMux,
    shared: Arc<SharedStats>,
    probe: TransportProbe,
    /// Frontend counters as of the last export, for delta-mirroring the
    /// shed counts into the transport probe.
    reported: FrontendStats,
}

impl Pump {
    fn dispatch(&mut self, outputs: Vec<EngineOutput>, node: &NodeHandle) {
        for out in outputs {
            match out {
                EngineOutput::Submit { payload, service } => {
                    // Engine traffic is low-rate control fan-out; a full
                    // command queue here means the daemon is wedged and the
                    // protocol's own recovery will resynchronize the group.
                    let _ = node.submit(payload, service);
                }
                EngineOutput::Local { client, event } => {
                    self.mux.deliver(&client, event);
                }
            }
        }
    }

    /// Routes the engine-relevant frames surfaced by one ingest burst.
    fn handle_ingress(&mut self, ingress: &mut Vec<Ingress>, node: &NodeHandle) {
        for ing in ingress.drain(..) {
            match ing {
                Ingress::Hello {
                    name,
                    resume_seq,
                    nonce,
                    addr,
                } => {
                    // Split borrow: the mux decides new-vs-resume, the
                    // engine registers genuinely new clients.
                    let engine = &mut self.engine;
                    let mux = &mut self.mux;
                    mux.handle_hello(name, resume_seq, nonce, addr, |n| engine.client_connect(n));
                }
                Ingress::Submit {
                    name,
                    seq,
                    service,
                    action,
                } => {
                    let result = match action {
                        GroupAction::Data { groups, payload } => {
                            let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                            self.engine
                                .client_multicast_sequenced(&name, &refs, payload, service, seq)
                        }
                        GroupAction::Join { group } => self.engine.client_join(&name, &group),
                        GroupAction::Leave { group } => self.engine.client_leave(&name, &group),
                        GroupAction::Disconnect => {
                            let result = self.engine.client_disconnect(&name);
                            self.mux.close_name(&name);
                            result
                        }
                    };
                    match result {
                        Ok(outputs) => self.dispatch(outputs, node),
                        Err(_) => self.mux.note_rejected(),
                    }
                }
                Ingress::Bye { name } => {
                    if let Ok(outputs) = self.engine.client_disconnect(&name) {
                        self.dispatch(outputs, node);
                    }
                }
                // Recovery anti-entropy and local services are
                // multi-ring concerns; the single-ring daemon has no
                // shard map to serve or adopt and mounts no application.
                Ingress::MapPull { .. } | Ingress::MapPush { .. } | Ingress::SvcQuery { .. } => {}
            }
        }
    }

    /// Handles one client command; `Some` ends the pump loop.
    fn handle_cmd(&mut self, cmd: Cmd, node: &NodeHandle) -> Option<Exit> {
        match cmd {
            Cmd::Connect { name, events, resp } => {
                let result = self.engine.client_connect(&name);
                if result.is_ok() {
                    self.mux.open_adapter(&name, events);
                }
                let _ = resp.send(result);
            }
            Cmd::Join { name, group, resp } => {
                let result = self.engine.client_join(&name, &group);
                let _ = resp.send(result.map(|o| self.dispatch(o, node)));
            }
            Cmd::Leave { name, group, resp } => {
                let result = self.engine.client_leave(&name, &group);
                let _ = resp.send(result.map(|o| self.dispatch(o, node)));
            }
            Cmd::Multicast {
                name,
                groups,
                payload,
                service,
                seq,
                resp,
            } => {
                let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                let result = self
                    .engine
                    .client_multicast_sequenced(&name, &refs, payload, service, seq);
                let _ = resp.send(result.map(|o| self.dispatch(o, node)));
            }
            Cmd::Disconnect { name } => {
                if let Ok(outputs) = self.engine.client_disconnect(&name) {
                    self.dispatch(outputs, node);
                }
                self.mux.close_name(&name);
            }
            Cmd::Shutdown => return Some(Exit::Immediate),
            Cmd::ShutdownGraceful { drain } => {
                // Only flush partially packed payloads here. Clients are
                // deliberately NOT disconnected through the engine: their
                // routing state must survive the drain so deliveries that
                // complete during it still reach them. Survivors prune
                // this daemon's clients via the departure's configuration
                // change, exactly as they would after a crash — just
                // sooner, thanks to the leave announcement.
                let flushed = self.engine.flush();
                self.dispatch(flushed, node);
                return Some(Exit::Graceful(drain));
            }
        }
        None
    }

    fn on_ring_event(&mut self, ev: AppEvent, node: &NodeHandle) {
        match ev {
            AppEvent::Delivered(d) => {
                let outputs = self.engine.on_delivery(&d);
                self.dispatch(outputs, node);
            }
            AppEvent::Config(c) => {
                let outputs = self.engine.on_config_change(&c);
                self.dispatch(outputs, node);
            }
            // Handled by the callers (reason needed for Disconnected).
            AppEvent::Fault { .. } => {}
        }
    }

    fn export_stats(&mut self) {
        self.shared
            .duplicates_dropped
            .store(self.engine.duplicates_dropped(), Ordering::Relaxed);
        let now = self.mux.stats();
        // Mirror shed deltas into the transport probe so chaos/leak
        // tooling watching TransportStats sees the frontend's drops too.
        let d_slow = now.shed_slow_session - self.reported.shed_slow_session;
        let d_budget = now.shed_global_budget - self.reported.shed_global_budget;
        let d_race = now.shed_disconnect_race - self.reported.shed_disconnect_race;
        if d_slow > 0 {
            self.probe.note_events_shed(ShedCause::SlowSession, d_slow);
        }
        if d_budget > 0 {
            self.probe
                .note_events_shed(ShedCause::GlobalBudget, d_budget);
        }
        if d_race > 0 {
            self.probe
                .note_events_shed(ShedCause::DisconnectRace, d_race);
        }
        self.reported = now;
        *self.shared.frontend.lock().expect("frontend stats lock") = now;
    }
}

fn pump(
    node: NodeHandle,
    cmd_rx: Receiver<Cmd>,
    options: EngineOptions,
    mux: SessionMux,
    shared: Arc<SharedStats>,
    probe: TransportProbe,
) {
    let mut p = Pump {
        engine: GroupEngine::with_options(node.pid(), options),
        mux,
        shared,
        probe,
        reported: FrontendStats::default(),
    };
    // With a session socket, the reactor parks on its descriptor: a
    // datagram wakes it instantly, channel work is drained each tick.
    // Without one, the old fully channel-driven select blocks until a
    // command or ring event arrives — no polling at all.
    let mut poller = Poller::new();
    let session_fd = p.mux.poll_fd();
    if let Some(fd) = session_fd {
        poller.set_fds(&[fd]);
    }
    let mut ingress: Vec<Ingress> = Vec::new();

    let exit = 'pump: loop {
        if session_fd.is_some() {
            // Skip the park entirely while egress is backed up: drain it.
            let tick = if p.mux.has_pending_egress() {
                Duration::ZERO
            } else {
                REACTOR_TICK
            };
            poller.wait(tick);
        } else {
            let mut sel = Select::new();
            sel.recv(&cmd_rx);
            sel.recv(node.events());
            let _ = sel.ready_timeout(IDLE_TICK);
        }
        p.mux.note_wakeup();

        loop {
            match cmd_rx.try_recv() {
                Ok(cmd) => {
                    if let Some(exit) = p.handle_cmd(cmd, &node) {
                        break 'pump exit;
                    }
                }
                Err(TryRecvError::Empty) => break,
                // Every daemon and client handle dropped without Shutdown.
                Err(TryRecvError::Disconnected) => break 'pump Exit::Immediate,
            }
        }
        // Session ingest before the engine flush: submits that just
        // arrived ride the same flush as this tick's command traffic.
        p.mux.ingest(&mut ingress);
        if !ingress.is_empty() {
            p.handle_ingress(&mut ingress, &node);
        }
        // Close any partially packed payloads so buffered client messages
        // are not held hostage waiting for more traffic.
        let flushed = p.engine.flush();
        p.dispatch(flushed, &node);

        loop {
            match node.events().try_recv() {
                Ok(AppEvent::Fault { reason }) => break 'pump Exit::NodeDead(reason),
                Ok(ev) => p.on_ring_event(ev, &node),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    break 'pump Exit::NodeDead("node thread exited".to_string());
                }
            }
        }
        p.mux.flush_egress();
        p.export_stats();
    };

    match exit {
        Exit::Immediate => {
            p.mux.flush_egress();
            p.mux.broadcast_disconnected("daemon shutdown");
            node.shutdown();
        }
        Exit::Graceful(drain) => {
            // The node flushes pending work, announces its departure, and
            // exits; deliveries produced during the drain still reach the
            // clients before their terminal event.
            let rx = node.leave(drain);
            while let Ok(ev) = rx.try_recv() {
                match ev {
                    AppEvent::Fault { .. } => break,
                    AppEvent::Delivered(d) => {
                        let outputs = p.engine.on_delivery(&d);
                        for out in outputs {
                            if let EngineOutput::Local { client, event } = out {
                                p.mux.deliver(&client, event);
                            }
                        }
                    }
                    AppEvent::Config(_) => {}
                }
            }
            p.mux.flush_egress();
            p.mux.broadcast_disconnected("daemon shutdown");
        }
        Exit::NodeDead(reason) => {
            p.mux.flush_egress();
            p.mux.broadcast_disconnected(&reason);
        }
    }
    p.export_stats();
}
