//! Message packing and fragmentation, as in Spread (Section IV-A3 of the
//! paper): "Spread includes a built-in ability to pack small messages into
//! a single protocol packet ... large messages are fragmented into
//! multiple packets."
//!
//! * [`Packer`] coalesces several small client messages into one ring
//!   payload, amortizing per-packet protocol and processing costs.
//! * [`Fragmenter`]/[`Reassembler`] split a client message larger than the
//!   packet budget across several ring payloads and rebuild it at the
//!   receivers. Because fragments travel through the total order, the
//!   pieces of one message arrive contiguously ordered and reassembly
//!   needs no reordering logic beyond sequence bookkeeping.
//!
//! Both framings are self-describing: the first byte of a ring payload
//! produced by this module tags it as packed ([`TAG_PACKED`]), a fragment
//! ([`TAG_FRAGMENT`]), or a bare message ([`TAG_BARE`]). The group engine
//! applies them transparently.

use accelring_core::wire::DecodeError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// Tag byte identifying a packed payload.
pub const TAG_PACKED: u8 = 0xA1;
/// Tag byte identifying a fragment.
pub const TAG_FRAGMENT: u8 = 0xA2;
/// Tag byte identifying a bare (neither packed nor fragmented) payload.
pub const TAG_BARE: u8 = 0xA0;
/// Tag byte reserved for multi-ring merge ticks (idle-ring skip
/// messages).
///
/// Tick payloads ride the total order like any other message so their
/// token round advances every observer's merge watermark, but they carry
/// no client data: [`unpack`] rejects the tag, so the group engine drops
/// them without emitting client events.
pub const TAG_TICK: u8 = 0xA3;
/// Tag byte reserved for multi-ring group-migration control messages.
///
/// Like ticks, migration fences travel through each ring's total order
/// so every observer applies the migration state transition at the same
/// point of the ring's stream — the whole determinism argument rests on
/// it. [`unpack`] rejects the tag, so a plain single-ring group engine
/// drops them silently.
pub const TAG_MIG: u8 = 0xA4;
/// Tag byte reserved for multi-ring shard-map announcements.
///
/// A shard-map epoch rides a ring's total order so every observer of
/// that ring adopts the new group→ring assignment at the same point of
/// the stream — this is the ordered half of the crash-recovery catch-up
/// protocol (the anti-entropy `MAP_PULL`/`MAP_PUSH` session frames are
/// the unordered half). [`unpack`] rejects the tag, so map frames can
/// never surface as client data.
pub const TAG_MAP: u8 = 0xA5;

/// Phase of the group-migration handshake a [`MigMsg`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigOp {
    /// Ordered on the **source** ring: the handoff fence. Delivery
    /// freezes the group on the source; everything the source orders
    /// for the group after this point is dropped identically everywhere.
    Start,
    /// Ordered on the **target** ring by each daemon once it has
    /// replayed its local members' joins there: proof the target can
    /// order traffic and that this daemon's members are present.
    Ready,
    /// Ordered on the **source** ring once the readiness barrier is
    /// met: the commit decision. Racing with [`MigOp::Abort`] on the
    /// same stream, so whichever is delivered first wins — at every
    /// observer identically.
    Commit,
    /// Ordered on the **source** ring by the abort escalation (target
    /// partitioned, readiness never achieved): reopens the group on the
    /// source and flushes held traffic back to it.
    Abort,
    /// Ordered on the **new home** ring after a commit: unfreezes the
    /// group there (a no-op unless an earlier migration away from that
    /// ring had frozen it — the back-migration case).
    Open,
}

impl MigOp {
    fn to_u8(self) -> u8 {
        match self {
            MigOp::Start => 1,
            MigOp::Ready => 2,
            MigOp::Commit => 3,
            MigOp::Abort => 4,
            MigOp::Open => 5,
        }
    }

    fn from_u8(b: u8) -> Option<MigOp> {
        Some(match b {
            1 => MigOp::Start,
            2 => MigOp::Ready,
            3 => MigOp::Commit,
            4 => MigOp::Abort,
            5 => MigOp::Open,
            _ => return None,
        })
    }
}

/// One group-migration control message, ordered on a ring like any
/// other payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigMsg {
    /// Handshake phase.
    pub op: MigOp,
    /// The migrating group.
    pub group: String,
    /// Source ring index.
    pub from: u16,
    /// Target ring index.
    pub to: u16,
    /// Participant id of the daemon that submitted this message (the
    /// readiness barrier counts distinct senders).
    pub sender: u16,
}

/// Encodes a migration control message:
/// `[TAG_MIG, op, from(2 LE), to(2 LE), sender(2 LE), group bytes]`.
pub fn mig_payload(msg: &MigMsg) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + msg.group.len());
    buf.put_u8(TAG_MIG);
    buf.put_u8(msg.op.to_u8());
    buf.put_u16_le(msg.from);
    buf.put_u16_le(msg.to);
    buf.put_u16_le(msg.sender);
    buf.put_slice(msg.group.as_bytes());
    buf.freeze()
}

/// Recognizes a migration control payload; `None` for anything else
/// (including malformed migration frames — a daemon must survive a
/// misbehaving peer, so garbage degrades to a dropped delivery).
pub fn parse_mig(payload: &[u8]) -> Option<MigMsg> {
    if payload.len() < 8 || payload[0] != TAG_MIG {
        return None;
    }
    let op = MigOp::from_u8(payload[1])?;
    let from = u16::from_le_bytes([payload[2], payload[3]]);
    let to = u16::from_le_bytes([payload[4], payload[5]]);
    let sender = u16::from_le_bytes([payload[6], payload[7]]);
    let group = std::str::from_utf8(&payload[8..]).ok()?.to_string();
    if group.is_empty() {
        return None;
    }
    Some(MigMsg {
        op,
        group,
        from,
        to,
        sender,
    })
}

/// One shard-map announcement, ordered on a ring like any other
/// payload. Carries the full map (version, ring count, retired rings,
/// and every non-default placement) so adoption is idempotent and
/// order-insensitive across rings: observers apply strictly-newer
/// versions and drop the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapMsg {
    /// Monotone map version (bumped on every placement change).
    pub version: u64,
    /// Total ring count the map hashes over.
    pub rings: u16,
    /// Participant id of the daemon that announced this epoch.
    pub sender: u16,
    /// Retired (permanently dead) ring indices.
    pub retired: Vec<u16>,
    /// Explicit group→ring placements (groups not listed hash to their
    /// default ring).
    pub overrides: Vec<(String, u16)>,
}

/// Encodes a shard-map announcement:
/// `[TAG_MAP, sender(2 LE), rings(2 LE), version(8 LE),
///   n_retired(2 LE), retired*2LE,
///   n_overrides(2 LE), {name_len(2 LE), name, ring(2 LE)}*]`.
pub fn map_payload(msg: &MapMsg) -> Bytes {
    let names: usize = msg.overrides.iter().map(|(g, _)| 4 + g.len()).sum();
    let mut buf = BytesMut::with_capacity(17 + 2 * msg.retired.len() + names);
    buf.put_u8(TAG_MAP);
    buf.put_u16_le(msg.sender);
    buf.put_u16_le(msg.rings);
    buf.put_u64_le(msg.version);
    buf.put_u16_le(msg.retired.len() as u16);
    for r in &msg.retired {
        buf.put_u16_le(*r);
    }
    buf.put_u16_le(msg.overrides.len() as u16);
    for (group, ring) in &msg.overrides {
        buf.put_u16_le(group.len() as u16);
        buf.put_slice(group.as_bytes());
        buf.put_u16_le(*ring);
    }
    buf.freeze()
}

/// Recognizes a shard-map announcement; `None` for anything else
/// (including malformed map frames — garbage from a misbehaving peer
/// degrades to a dropped delivery, never a panic).
pub fn parse_map(payload: &[u8]) -> Option<MapMsg> {
    if payload.len() < 17 || payload[0] != TAG_MAP {
        return None;
    }
    let mut buf = &payload[1..];
    let sender = buf.get_u16_le();
    let rings = buf.get_u16_le();
    let version = buf.get_u64_le();
    let n_retired = buf.get_u16_le() as usize;
    if buf.remaining() < 2 * n_retired {
        return None;
    }
    let mut retired = Vec::with_capacity(n_retired);
    for _ in 0..n_retired {
        retired.push(buf.get_u16_le());
    }
    if buf.remaining() < 2 {
        return None;
    }
    let n_overrides = buf.get_u16_le() as usize;
    let mut overrides = Vec::with_capacity(n_overrides.min(1024));
    for _ in 0..n_overrides {
        if buf.remaining() < 2 {
            return None;
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len + 2 {
            return None;
        }
        let group = std::str::from_utf8(&buf[..len]).ok()?.to_string();
        if group.is_empty() {
            return None;
        }
        buf.advance(len);
        let ring = buf.get_u16_le();
        overrides.push((group, ring));
    }
    if buf.has_remaining() {
        return None;
    }
    Some(MapMsg {
        version,
        rings,
        sender,
        retired,
        overrides,
    })
}

/// Re-wraps already-unpacked messages as one packed ring payload,
/// without a budget: the messages were on the wire together already
/// (the migration filter uses this to re-frame the survivors of a
/// partially frozen packed delivery).
pub fn pack_all(messages: &[Bytes]) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + messages.iter().map(|m| 4 + m.len()).sum::<usize>());
    buf.put_u8(TAG_PACKED);
    for m in messages {
        buf.put_u32_le(m.len() as u32);
        buf.put_slice(m);
    }
    buf.freeze()
}

/// A minimal tick payload: just the reserved tag byte.
pub fn tick_payload() -> Bytes {
    Bytes::from_static(&[TAG_TICK])
}

/// A tick payload carrying a configuration-epoch hint: the highest
/// ring-id counter the submitting daemon has seen across *all* its
/// rings. Ordered on a ring whose own configurations lag, it lets every
/// observer of that ring align its merge clock past the faster rings'
/// epoch bases at the same point of the stream.
pub fn tick_payload_with_epoch(epoch: u64) -> Bytes {
    let mut buf = Vec::with_capacity(9);
    buf.push(TAG_TICK);
    buf.extend_from_slice(&epoch.to_be_bytes());
    Bytes::from(buf)
}

/// Recognizes a tick payload, returning the epoch hint it carries
/// (zero for the minimal epochless form). `None` for anything that is
/// not a tick.
pub fn parse_tick(payload: &[u8]) -> Option<u64> {
    match payload {
        [TAG_TICK] => Some(0),
        [TAG_TICK, rest @ ..] if rest.len() == 8 => {
            let mut be = [0u8; 8];
            be.copy_from_slice(rest);
            Some(u64::from_be_bytes(be))
        }
        _ => None,
    }
}

/// Coalesces small payloads into packets of at most `budget` bytes.
///
/// # Examples
///
/// ```
/// use accelring_daemon::packing::{unpack, Packer};
/// use bytes::Bytes;
///
/// let mut packer = Packer::new(64);
/// assert!(packer.push(Bytes::from_static(b"tick 1")).is_empty());
/// assert!(packer.push(Bytes::from_static(b"tick 2")).is_empty());
/// let packet = packer.flush().expect("two messages buffered");
/// let messages = unpack(packet).unwrap();
/// assert_eq!(messages.len(), 2);
/// assert_eq!(&messages[1][..], b"tick 2");
/// ```
#[derive(Debug)]
pub struct Packer {
    budget: usize,
    pending: Vec<Bytes>,
    pending_bytes: usize,
}

impl Packer {
    /// Creates a packer with the given packet budget (payload bytes per
    /// ring message; Spread uses what fits a 1500-byte MTU).
    ///
    /// # Panics
    ///
    /// Panics if `budget` cannot hold even one length-prefixed byte.
    pub fn new(budget: usize) -> Packer {
        assert!(budget > 5, "budget must exceed framing overhead");
        Packer {
            budget,
            pending: Vec::new(),
            pending_bytes: 1, // tag byte
        }
    }

    /// Bytes a message of length `len` occupies inside a packet.
    fn framed(len: usize) -> usize {
        4 + len
    }

    /// Number of messages currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Adds a message; returns zero or more *completed* packets (a message
    /// that does not fit the current packet closes it; an oversized
    /// message that can never share a packet is emitted alone as a bare
    /// payload for the fragmenter to handle upstream).
    pub fn push(&mut self, payload: Bytes) -> Vec<Bytes> {
        let mut done = Vec::new();
        if Self::framed(payload.len()) + 1 > self.budget {
            // Never fits: flush what we have and pass the big one through.
            if let Some(packet) = self.flush() {
                done.push(packet);
            }
            done.push(bare(payload));
            return done;
        }
        if self.pending_bytes + Self::framed(payload.len()) > self.budget {
            if let Some(packet) = self.flush() {
                done.push(packet);
            }
        }
        self.pending_bytes += Self::framed(payload.len());
        self.pending.push(payload);
        done
    }

    /// Closes and returns the current packet, if any messages are buffered.
    pub fn flush(&mut self) -> Option<Bytes> {
        if self.pending.is_empty() {
            return None;
        }
        let mut buf = BytesMut::with_capacity(self.pending_bytes);
        buf.put_u8(TAG_PACKED);
        for m in self.pending.drain(..) {
            buf.put_u32_le(m.len() as u32);
            buf.put_slice(&m);
        }
        self.pending_bytes = 1;
        Some(buf.freeze())
    }
}

/// Wraps a payload as a bare (unpacked, unfragmented) ring payload.
pub fn bare(payload: Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + payload.len());
    buf.put_u8(TAG_BARE);
    buf.put_slice(&payload);
    buf.freeze()
}

/// Splits a tagged ring payload back into client messages.
///
/// # Errors
///
/// Returns [`DecodeError`] for malformed packed framing or an unknown tag.
pub fn unpack(mut payload: Bytes) -> Result<Vec<Bytes>, DecodeError> {
    if payload.is_empty() {
        return Err(DecodeError::Truncated);
    }
    match payload.get_u8() {
        TAG_BARE => Ok(vec![payload]),
        TAG_PACKED => {
            let mut out = Vec::new();
            while payload.has_remaining() {
                if payload.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let len = payload.get_u32_le() as usize;
                if payload.remaining() < len {
                    return Err(DecodeError::BadLength {
                        declared: len,
                        available: payload.remaining(),
                    });
                }
                out.push(payload.split_to(len));
            }
            Ok(out)
        }
        other => Err(DecodeError::BadKind(other)),
    }
}

/// Splits one large payload into tagged fragments of at most `budget`
/// bytes each (including the fragment header).
///
/// # Examples
///
/// ```
/// use accelring_daemon::packing::{Fragmenter, Reassembler};
/// use bytes::Bytes;
///
/// let big = Bytes::from(vec![42u8; 5000]);
/// let frags = Fragmenter::new(1400).split(7, big.clone());
/// assert!(frags.len() > 3);
///
/// let mut reassembler = Reassembler::new(64);
/// let mut whole = None;
/// for f in frags {
///     whole = reassembler.push(f).unwrap();
/// }
/// assert_eq!(whole.unwrap(), big);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fragmenter {
    budget: usize,
}

/// Fragment header: tag (1) + message id (8) + index (2) + total (2) +
/// chunk length (4).
const FRAG_HEADER: usize = 1 + 8 + 2 + 2 + 4;

impl Fragmenter {
    /// Creates a fragmenter with the given per-ring-payload budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` does not exceed the fragment header.
    pub fn new(budget: usize) -> Fragmenter {
        assert!(budget > FRAG_HEADER, "budget must exceed fragment header");
        Fragmenter { budget }
    }

    /// Whether a payload of `len` bytes needs fragmenting under this
    /// budget (as a bare payload it costs one tag byte).
    pub fn needs_split(&self, len: usize) -> bool {
        1 + len > self.budget
    }

    /// Splits `payload` into fragments stamped with `msg_id` (unique per
    /// sender; receivers key reassembly on the ring sender and this id).
    pub fn split(&self, msg_id: u64, payload: Bytes) -> Vec<Bytes> {
        let chunk_size = self.budget - FRAG_HEADER;
        let total = payload.len().div_ceil(chunk_size).max(1);
        assert!(total <= u16::MAX as usize, "payload too large to fragment");
        let mut out = Vec::with_capacity(total);
        let mut rest = payload;
        for idx in 0..total {
            let take = rest.len().min(chunk_size);
            let chunk = rest.split_to(take);
            let mut buf = BytesMut::with_capacity(FRAG_HEADER + chunk.len());
            buf.put_u8(TAG_FRAGMENT);
            buf.put_u64_le(msg_id);
            buf.put_u16_le(idx as u16);
            buf.put_u16_le(total as u16);
            buf.put_u32_le(chunk.len() as u32);
            buf.put_slice(&chunk);
            out.push(buf.freeze());
        }
        out
    }
}

#[derive(Debug)]
struct PartialMessage {
    total: u16,
    received: u16,
    chunks: Vec<Option<Bytes>>,
}

/// Rebuilds fragmented messages. Keyed by message id; the caller must use
/// one reassembler per ring sender (fragment ids are only unique per
/// sender).
#[derive(Debug)]
pub struct Reassembler {
    partial: BTreeMap<u64, PartialMessage>,
    max_partial: usize,
}

impl Reassembler {
    /// Creates a reassembler holding at most `max_partial` incomplete
    /// messages (oldest discarded beyond that, defending against a peer
    /// that never completes its messages).
    pub fn new(max_partial: usize) -> Reassembler {
        Reassembler {
            partial: BTreeMap::new(),
            max_partial: max_partial.max(1),
        }
    }

    /// Number of incomplete messages currently held.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Consumes one tagged fragment; returns the whole message when its
    /// last fragment arrives.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed fragments or inconsistent
    /// totals.
    pub fn push(&mut self, mut fragment: Bytes) -> Result<Option<Bytes>, DecodeError> {
        if fragment.remaining() < FRAG_HEADER {
            return Err(DecodeError::Truncated);
        }
        let tag = fragment.get_u8();
        if tag != TAG_FRAGMENT {
            return Err(DecodeError::BadKind(tag));
        }
        let msg_id = fragment.get_u64_le();
        let idx = fragment.get_u16_le() as usize;
        let total = fragment.get_u16_le();
        let len = fragment.get_u32_le() as usize;
        if total == 0 || idx >= total as usize {
            return Err(DecodeError::BadLength {
                declared: idx,
                available: total as usize,
            });
        }
        if fragment.remaining() != len {
            return Err(DecodeError::BadLength {
                declared: len,
                available: fragment.remaining(),
            });
        }

        let entry = self
            .partial
            .entry(msg_id)
            .or_insert_with(|| PartialMessage {
                total,
                received: 0,
                chunks: vec![None; total as usize],
            });
        if entry.total != total {
            self.partial.remove(&msg_id);
            return Err(DecodeError::BadLength {
                declared: total as usize,
                available: 0,
            });
        }
        if entry.chunks[idx].is_none() {
            entry.chunks[idx] = Some(fragment);
            entry.received += 1;
        }
        if entry.received == entry.total {
            let entry = self.partial.remove(&msg_id).expect("present");
            let mut whole = BytesMut::new();
            for chunk in entry.chunks {
                whole.put_slice(&chunk.expect("all chunks received"));
            }
            return Ok(Some(whole.freeze()));
        }
        // Bound memory: discard the oldest partials beyond the cap.
        while self.partial.len() > self.max_partial {
            let oldest = *self.partial.keys().next().expect("non-empty");
            self.partial.remove(&oldest);
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_payloads_are_rejected_by_unpack() {
        // Ticks must never surface as client messages: the engine's
        // delivery path unpacks every ring payload and drops undecodable
        // ones, so the reserved tag guarantees ticks stay invisible.
        let tick = tick_payload();
        assert_eq!(tick[0], TAG_TICK);
        assert!(matches!(unpack(tick), Err(DecodeError::BadKind(TAG_TICK))));
    }

    #[test]
    fn epoch_ticks_round_trip_and_stay_unpackable() {
        let tick = tick_payload_with_epoch(0x1234_5678_9abc);
        assert_eq!(parse_tick(&tick), Some(0x1234_5678_9abc));
        assert_eq!(parse_tick(&tick_payload()), Some(0));
        assert_eq!(parse_tick(b"plain data"), None);
        assert_eq!(parse_tick(&[]), None);
        assert!(matches!(unpack(tick), Err(DecodeError::BadKind(TAG_TICK))));
    }

    #[test]
    fn tick_tag_collides_with_no_framing_tag() {
        assert_ne!(TAG_TICK, TAG_BARE);
        assert_ne!(TAG_TICK, TAG_PACKED);
        assert_ne!(TAG_TICK, TAG_FRAGMENT);
        assert_ne!(TAG_MIG, TAG_BARE);
        assert_ne!(TAG_MIG, TAG_PACKED);
        assert_ne!(TAG_MIG, TAG_FRAGMENT);
        assert_ne!(TAG_MIG, TAG_TICK);
        assert_ne!(TAG_MAP, TAG_BARE);
        assert_ne!(TAG_MAP, TAG_PACKED);
        assert_ne!(TAG_MAP, TAG_FRAGMENT);
        assert_ne!(TAG_MAP, TAG_TICK);
        assert_ne!(TAG_MAP, TAG_MIG);
    }

    #[test]
    fn map_payloads_round_trip_and_stay_unpackable() {
        for msg in [
            MapMsg {
                version: 0,
                rings: 1,
                sender: 0,
                retired: Vec::new(),
                overrides: Vec::new(),
            },
            MapMsg {
                version: u64::MAX,
                rings: 4,
                sender: 2,
                retired: vec![1, 3],
                overrides: vec![("hot".to_string(), 0), ("cold-storage".to_string(), 2)],
            },
        ] {
            let payload = map_payload(&msg);
            assert_eq!(parse_map(&payload), Some(msg));
            // A plain single-ring group engine must drop map frames
            // silently, never surface them as client messages.
            assert!(matches!(
                unpack(payload),
                Err(DecodeError::BadKind(TAG_MAP))
            ));
        }
    }

    #[test]
    fn parse_map_rejects_garbage() {
        assert_eq!(parse_map(&[]), None);
        assert_eq!(parse_map(b"plain data"), None);
        assert_eq!(parse_map(&tick_payload()), None);
        let good = map_payload(&MapMsg {
            version: 9,
            rings: 2,
            sender: 1,
            retired: vec![0],
            overrides: vec![("g".to_string(), 1)],
        });
        // Every truncation of a valid frame must be rejected, and so
        // must a frame with trailing junk.
        for cut in 0..good.len() {
            assert_eq!(parse_map(&good[..cut]), None, "cut at {cut}");
        }
        let mut padded = good.to_vec();
        padded.push(0);
        assert_eq!(parse_map(&padded), None);
        // Declared counts larger than the body.
        let mut short = good.to_vec();
        short[13] = 0xFF; // n_retired low byte
        assert_eq!(parse_map(&short), None);
        // Empty group name.
        let empty_name = map_payload(&MapMsg {
            version: 1,
            rings: 2,
            sender: 0,
            retired: Vec::new(),
            overrides: vec![(String::new(), 0)],
        });
        assert_eq!(parse_map(&empty_name), None);
    }

    #[test]
    fn mig_payloads_round_trip_and_stay_unpackable() {
        for op in [
            MigOp::Start,
            MigOp::Ready,
            MigOp::Commit,
            MigOp::Abort,
            MigOp::Open,
        ] {
            let msg = MigMsg {
                op,
                group: "hot-shard".to_string(),
                from: 0,
                to: 3,
                sender: 7,
            };
            let payload = mig_payload(&msg);
            assert_eq!(parse_mig(&payload), Some(msg));
            // The group engine must never surface a migration frame as a
            // client message.
            assert!(matches!(
                unpack(payload),
                Err(DecodeError::BadKind(TAG_MIG))
            ));
        }
    }

    #[test]
    fn parse_mig_rejects_garbage() {
        assert_eq!(parse_mig(&[]), None);
        assert_eq!(parse_mig(b"plain data"), None);
        assert_eq!(parse_mig(&[TAG_MIG, 1, 0, 0, 0, 1]), None); // truncated
        assert_eq!(parse_mig(&[TAG_MIG, 9, 0, 0, 0, 1, 0, 0, b'g']), None); // bad op
        assert_eq!(parse_mig(&[TAG_MIG, 1, 0, 0, 0, 1, 0, 0]), None); // empty group
        assert_eq!(parse_mig(&tick_payload()), None);
        // Non-UTF8 group bytes.
        assert_eq!(parse_mig(&[TAG_MIG, 1, 0, 0, 0, 1, 0, 0, 0xFF]), None);
    }

    #[test]
    fn pack_all_round_trips_survivors() {
        let msgs = vec![
            Bytes::from_static(b"one"),
            Bytes::from_static(b""),
            Bytes::from_static(b"three"),
        ];
        assert_eq!(unpack(pack_all(&msgs)).unwrap(), msgs);
        // An empty survivor set still frames validly (zero messages).
        assert_eq!(unpack(pack_all(&[])).unwrap(), Vec::<Bytes>::new());
    }

    #[test]
    fn packer_coalesces_until_budget() {
        // Budget 24: tag (1) + one framed 10-byte message (14) = 15 fits;
        // a second framed message would reach 29 and closes the packet.
        let mut p = Packer::new(24);
        assert!(p.push(Bytes::from_static(b"0123456789")).is_empty()); // 14+1
        let out = p.push(Bytes::from_static(b"abcdefghij")); // would exceed 32
        assert_eq!(out.len(), 1, "first packet closed");
        let msgs = unpack(out[0].clone()).unwrap();
        assert_eq!(msgs.len(), 1);
        let rest = p.flush().unwrap();
        assert_eq!(unpack(rest).unwrap()[0], Bytes::from_static(b"abcdefghij"));
    }

    #[test]
    fn packer_packs_many_tiny_messages() {
        let mut p = Packer::new(1350);
        let mut packets = Vec::new();
        for i in 0..100u32 {
            packets.extend(p.push(Bytes::from(i.to_le_bytes().to_vec())));
        }
        packets.extend(p.flush());
        let all: Vec<Bytes> = packets
            .into_iter()
            .flat_map(|pkt| unpack(pkt).unwrap())
            .collect();
        assert_eq!(all.len(), 100);
        for (i, m) in all.iter().enumerate() {
            assert_eq!(m.as_ref(), (i as u32).to_le_bytes());
        }
    }

    #[test]
    fn packer_passes_oversized_through_as_bare() {
        let mut p = Packer::new(32);
        p.push(Bytes::from_static(b"small"));
        let out = p.push(Bytes::from(vec![1u8; 100]));
        assert_eq!(out.len(), 2, "pending packet flushed, then bare payload");
        assert_eq!(
            unpack(out[0].clone()).unwrap()[0],
            Bytes::from_static(b"small")
        );
        assert_eq!(
            unpack(out[1].clone()).unwrap()[0],
            Bytes::from(vec![1u8; 100])
        );
    }

    #[test]
    fn flush_empty_returns_none() {
        let mut p = Packer::new(64);
        assert!(p.flush().is_none());
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn unpack_rejects_garbage() {
        assert!(unpack(Bytes::new()).is_err());
        assert!(unpack(Bytes::from_static(b"\xff rest")).is_err());
        // Truncated packed framing.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_PACKED);
        buf.put_u32_le(100);
        buf.put_slice(b"short");
        assert!(unpack(buf.freeze()).is_err());
    }

    #[test]
    fn bare_roundtrip() {
        let b = bare(Bytes::from_static(b"payload"));
        assert_eq!(unpack(b).unwrap(), vec![Bytes::from_static(b"payload")]);
    }

    #[test]
    fn fragment_roundtrip_exact_multiple() {
        let f = Fragmenter::new(100);
        let chunk = 100 - FRAG_HEADER;
        let payload = Bytes::from(vec![9u8; chunk * 3]);
        let frags = f.split(1, payload.clone());
        assert_eq!(frags.len(), 3);
        let mut r = Reassembler::new(8);
        assert!(r.push(frags[0].clone()).unwrap().is_none());
        assert!(r.push(frags[1].clone()).unwrap().is_none());
        assert_eq!(r.push(frags[2].clone()).unwrap().unwrap(), payload);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn fragment_roundtrip_empty_payload() {
        let f = Fragmenter::new(100);
        let frags = f.split(2, Bytes::new());
        assert_eq!(frags.len(), 1);
        let mut r = Reassembler::new(8);
        assert_eq!(r.push(frags[0].clone()).unwrap().unwrap(), Bytes::new());
    }

    #[test]
    fn duplicate_fragments_ignored() {
        let f = Fragmenter::new(64);
        let payload = Bytes::from(vec![5u8; 200]);
        let frags = f.split(3, payload.clone());
        let mut r = Reassembler::new(8);
        for frag in &frags[..frags.len() - 1] {
            assert!(r.push(frag.clone()).unwrap().is_none());
            assert!(r.push(frag.clone()).unwrap().is_none(), "duplicate ignored");
        }
        assert_eq!(
            r.push(frags.last().unwrap().clone()).unwrap().unwrap(),
            payload
        );
    }

    #[test]
    fn interleaved_messages_reassemble_independently() {
        let f = Fragmenter::new(64);
        let pay_a = Bytes::from(vec![1u8; 150]);
        let pay_b = Bytes::from(vec![2u8; 150]);
        let fa = f.split(10, pay_a.clone());
        let fb = f.split(11, pay_b.clone());
        let mut r = Reassembler::new(8);
        let mut done = Vec::new();
        for (a, b) in fa.iter().zip(fb.iter()) {
            if let Some(m) = r.push(a.clone()).unwrap() {
                done.push(m);
            }
            if let Some(m) = r.push(b.clone()).unwrap() {
                done.push(m);
            }
        }
        assert_eq!(done, vec![pay_a, pay_b]);
    }

    #[test]
    fn reassembler_bounds_partial_messages() {
        let f = Fragmenter::new(64);
        let mut r = Reassembler::new(2);
        // Start four messages but never finish them.
        for id in 0..4u64 {
            let frags = f.split(id, Bytes::from(vec![0u8; 200]));
            r.push(frags[0].clone()).unwrap();
        }
        assert!(
            r.pending() <= 2,
            "partial cap enforced, got {}",
            r.pending()
        );
    }

    #[test]
    fn reassembler_rejects_malformed() {
        let mut r = Reassembler::new(4);
        assert!(r.push(Bytes::from_static(b"short")).is_err());
        assert!(r.push(bare(Bytes::from_static(b"not a fragment"))).is_err());
        // Inconsistent totals for the same id.
        let f64b = Fragmenter::new(64);
        let f128 = Fragmenter::new(128);
        let a = f64b.split(5, Bytes::from(vec![0u8; 300]));
        let b = f128.split(5, Bytes::from(vec![0u8; 300]));
        let mut r = Reassembler::new(4);
        r.push(a[0].clone()).unwrap();
        assert!(r.push(b[0].clone()).is_err());
    }

    #[test]
    fn needs_split_boundary() {
        let f = Fragmenter::new(100);
        assert!(!f.needs_split(99));
        assert!(f.needs_split(100));
    }
}
