//! # accelring-daemon
//!
//! The client–daemon group-messaging layer of the Accelerated Ring stack —
//! the architecture that made Spread successful (Section I of the paper):
//! a clean separation between middleware and application, one set of
//! daemons serving several applications, and **open group semantics** (a
//! process need not be a member of a group to send to it).
//!
//! Features reproduced from Spread:
//!
//! * named groups with client-level join/leave and membership views;
//! * **multi-group multicast**: one message to the members of multiple
//!   distinct groups, with ordering guaranteed *across* groups because
//!   group routing rides the single ring total order;
//! * descriptive client and group names (the "large headers" the paper
//!   mentions as a cost of the production system);
//! * EVS awareness: clients are told about daemon configuration changes,
//!   and clients of departed daemons are pruned from groups consistently
//!   at every surviving daemon.
//!
//! The pure [`engine::GroupEngine`] is runtime-agnostic; the
//! [`runtime::GroupDaemon`] binds it to the real UDP transport.
//!
//! ## Example
//!
//! ```no_run
//! use accelring_core::{ProtocolConfig, Service};
//! use accelring_daemon::{ClientEvent, GroupDaemon};
//! use accelring_membership::MembershipConfig;
//! use accelring_transport::spawn_local_ring;
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nodes = spawn_local_ring(2, ProtocolConfig::default(), MembershipConfig::for_wall_clock())?;
//! let mut nodes = nodes.into_iter();
//! let d0 = GroupDaemon::start(nodes.next().unwrap());
//! let d1 = GroupDaemon::start(nodes.next().unwrap());
//!
//! let alice = d0.connect("alice")?;
//! let bob = d1.connect("bob")?;
//! alice.join("chat")?;
//! bob.join("chat")?;
//! alice.multicast(&["chat"], Bytes::from_static(b"hi"), Service::Agreed)?;
//! while let Ok(event) = bob.events().recv() {
//!     if let ClientEvent::Message { payload, .. } = event {
//!         assert_eq!(&payload[..], b"hi");
//!         break;
//!     }
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod frontend;
pub mod groups;
pub mod packing;
pub mod proto;
pub mod runtime;

pub use engine::{ClientEvent, EngineError, EngineOptions, EngineOutput, GroupEngine};
pub use frontend::{FrontendOptions, Ingress, SessionClient, SessionMux};
pub use groups::{GroupTable, GroupView};
pub use proto::{
    ClientId, GroupAction, GroupMessage, GroupProtoError, SessionFrame, MAX_GROUPS, MAX_NAME,
};
pub use runtime::{DaemonOptions, DaemonStats, GroupClient, GroupDaemon};
