//! The reactor session frontend: one thread, one socket, up to 100k
//! client sessions.
//!
//! The seed served clients through per-client crossbeam channel pairs
//! pumped by a blocking `Select` loop — fine for a handful of in-process
//! clients, a dead end for the daemon-as-fan-in architecture the paper
//! inherits from Spread, where one daemon fronts every application sender
//! on its machine. This module replaces that shape with a reactor:
//!
//! * **One session socket.** Remote clients speak the framed session
//!   protocol of [`crate::proto`] ([`SessionFrame`]) over UDP. Frames
//!   carry the session id, never rely on the source address, so any
//!   number of sessions multiplex over any number of client sockets.
//! * **A slab session table.** Sessions live in a generation-tagged slab
//!   ([`SessionMux`]); a session id is `slot | generation << 32`, so a
//!   reused slot never honors frames addressed to its previous tenant.
//! * **Batched, pooled ingest.** The reactor drains the socket with
//!   `recvmmsg` into pooled leases and parses frames in place — the
//!   submit payload handed to the engine is a slice of the receive
//!   buffer, zero copies on the way in.
//! * **Encode-once fanout.** An event delivered to N subscribed sessions
//!   is encoded once ([`crate::proto::encode_event_body`]); only the
//!   9-byte frame header differs per recipient.
//! * **Credit-gated, fair, bounded egress.** EVENT frames queue per
//!   session, bounded per session *and* by a frontend-wide budget;
//!   overload sheds events with an attributed cause ([`accelring_core::ShedCause`])
//!   instead of growing memory. A round-robin scheduler drains queues
//!   under a per-wakeup budget with `sendmmsg`, so one firehose session
//!   cannot starve ten thousand quiet ones.
//!
//! The old in-process API survives as *adapter sessions*: a channel
//! `Sender<ClientEvent>` registered in the same table, sharing the same
//! shed accounting — which is how every pre-existing test, bench, and
//! example runs unchanged over the new frontend.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use accelring_core::{Backoff, BufLease, BufferPool, FrontendStats, Service};
use accelring_transport::{DatagramSocket, RecvSlot};
use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{Sender, TrySendError};

use crate::engine::{ClientEvent, EngineError};
use crate::proto::{
    decode_event_body, decode_session_frame, encode_event_body, encode_session_frame, GroupAction,
    SessionFrame, FR_EVENT,
};

/// Largest session datagram (the UDP limit; submit payloads above the
/// engine's fragment budget never reach the wire anyway).
const MAX_FRAME: usize = 65_536;
/// Datagrams drained per `recvmmsg` burst.
const RECV_BATCH: usize = 32;
/// Pooled receive buffers parked for reuse.
const POOL_MAX_FREE: usize = 64;
/// EVENT frames drained from one session per round-robin turn: small
/// enough for fairness, large enough to amortize the queue bookkeeping.
const RR_CHUNK: usize = 8;
/// How long a terminal [`ClientEvent::Disconnected`] may block on a slow
/// adapter channel before channel closure is left to tell the story.
const DISCONNECT_SEND_TIMEOUT: Duration = Duration::from_secs(1);
/// HELLO retries before [`SessionClient::connect`] gives up.
const HELLO_ATTEMPTS: u32 = 5;
/// Base / cap of the client's full-jitter HELLO retry backoff.
const HELLO_BACKOFF_BASE: Duration = Duration::from_millis(20);
const HELLO_BACKOFF_CAP: Duration = Duration::from_millis(500);
/// Events a [`SessionClient`] consumes before granting the daemon another
/// batch of credits (half the initial window, so the pipe never drains).
const CREDIT_REFRESH: u32 = 64;

/// Tuning for the session frontend. `Copy` so daemon options (and the
/// multi-ring options embedding them) stay plain values.
#[derive(Debug, Clone, Copy)]
pub struct FrontendOptions {
    /// Open a UDP session socket and serve remote sessions. Off by
    /// default: adapter-only daemons skip the socket entirely and the
    /// pump keeps its zero-latency channel select.
    pub session_socket: bool,
    /// Per-session EVENT queue cap; beyond it events are shed with
    /// [`accelring_core::ShedCause::SlowSession`].
    pub session_queue: usize,
    /// Frontend-wide queued-EVENT budget; beyond it events are shed with
    /// [`accelring_core::ShedCause::GlobalBudget`] no matter whose queue had room. This
    /// is the bound that keeps 100k sessions' worth of backlog from
    /// growing without limit.
    pub global_queue: usize,
    /// EVENT frames flushed per reactor wakeup across all sessions.
    pub egress_budget: usize,
    /// Credits granted in WELCOME (EVENT frames the daemon may send
    /// before the client must grant more).
    pub initial_credits: u32,
}

impl Default for FrontendOptions {
    fn default() -> Self {
        FrontendOptions {
            session_socket: false,
            session_queue: 256,
            global_queue: 65_536,
            egress_budget: 4096,
            initial_credits: 256,
        }
    }
}

impl FrontendOptions {
    /// Options with the session socket enabled and everything else at
    /// defaults.
    pub fn enabled() -> Self {
        FrontendOptions {
            session_socket: true,
            ..FrontendOptions::default()
        }
    }
}

/// Work the reactor must route through the engine, surfaced by
/// [`SessionMux::ingest`]. Credits and session-level dedup are absorbed
/// inside the mux; only engine-relevant frames bubble up.
#[derive(Debug)]
pub enum Ingress {
    /// A HELLO that needs an engine decision (see
    /// [`SessionMux::handle_hello`]).
    Hello {
        /// Client name.
        name: String,
        /// Resume watermark from the client.
        resume_seq: u64,
        /// Retry-dedup nonce.
        nonce: u64,
        /// Where WELCOME/ERROR replies go.
        addr: SocketAddr,
    },
    /// A SUBMIT that passed session-level dedup.
    Submit {
        /// The submitting client's name.
        name: String,
        /// Session sequence (0 = unsequenced).
        seq: u64,
        /// Requested service.
        service: Service,
        /// The group action.
        action: GroupAction,
    },
    /// A session said BYE (already removed from the table); the engine
    /// should disconnect the named client.
    Bye {
        /// The departing client's name.
        name: String,
    },
    /// A peer daemon asked for recovery state (anti-entropy). The
    /// runtime answers with a MAP_PUSH via
    /// [`SessionMux::send_session_frame`].
    MapPull {
        /// Echoed so the requester recognizes its response.
        nonce: u64,
        /// The requester's highest observed configuration epoch.
        want_epoch: u64,
        /// Where the MAP_PUSH reply goes.
        addr: SocketAddr,
    },
    /// A peer daemon pushed recovery state in response to our pull.
    MapPush {
        /// Echo of our pull nonce.
        nonce: u64,
        /// The responder's highest observed configuration epoch.
        epoch: u64,
        /// The responder's delivered merge-slot cursor.
        slot: u64,
        /// The responder's shard-map version.
        map_version: u64,
        /// The opaque snapshot body (the multi-ring layer decodes it).
        body: Bytes,
    },
    /// A local-service query (no session, no credits). The runtime
    /// answers with an SVC_REPLY via
    /// [`SessionMux::send_session_frame`], or stays silent when no
    /// service is mounted — the requester owns retries.
    SvcQuery {
        /// Echoed so the requester recognizes its response.
        nonce: u64,
        /// The opaque query body (the mounted service decodes it).
        body: Bytes,
        /// Where the SVC_REPLY goes.
        addr: SocketAddr,
    },
}

enum SessionKind {
    /// In-process client behind a channel (the legacy API).
    Adapter { tx: Sender<ClientEvent> },
    /// Remote client behind the session socket.
    Remote {
        addr: SocketAddr,
        nonce: u64,
        /// The HELLO watermark: submits at or below it are resubmits of
        /// in-doubt messages and always pass through to the engine,
        /// whose ring-wide dedup decides their fate.
        resume: u64,
        /// Highest sequence forwarded this session; new submits at or
        /// below it (but above `resume`) are retransmissions and are
        /// dropped here, before they cost ring bandwidth.
        fw: u64,
        credits: u32,
        queue: VecDeque<Bytes>,
        /// Whether this slot is in the egress round-robin ring.
        armed: bool,
    },
}

struct Session {
    gen: u32,
    name: String,
    kind: SessionKind,
}

/// The slab-indexed session table plus the session socket: everything the
/// reactor needs to serve many sessions from one thread.
///
/// Embedded by both the group daemon's pump ([`crate::runtime`]) and the
/// multi-ring pump, so adapter clients, remote sessions, and the shed
/// machinery behave identically everywhere.
pub struct SessionMux {
    opts: FrontendOptions,
    socket: Option<UdpSocket>,
    addr: Option<SocketAddr>,
    slots: Vec<Option<Session>>,
    /// Tenancy count per slot; a session id embeds the generation so a
    /// reused slot ignores its previous tenant's frames.
    gens: Vec<u32>,
    free: Vec<u32>,
    by_name: HashMap<String, u32>,
    /// Round-robin ring of slots with queued frames and credits.
    rr: VecDeque<u32>,
    queued_total: usize,
    pool: BufferPool,
    recv_leases: Vec<BufLease>,
    send_scratch: Vec<(Bytes, SocketAddr)>,
    /// Encode-once memo: the payload identity of the last encoded
    /// Message event and its body. Holding the payload `Bytes` pins the
    /// buffer, so pointer equality cannot alias a new message.
    memo: Option<(Bytes, Bytes)>,
    stats: FrontendStats,
}

impl std::fmt::Debug for SessionMux {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionMux")
            .field("addr", &self.addr)
            .field("sessions_open", &self.stats.sessions_open)
            .finish_non_exhaustive()
    }
}

fn session_id(slot: u32, gen: u32) -> u64 {
    u64::from(slot) | (u64::from(gen) << 32)
}

/// Bumps and returns the tenancy generation of a slot. A free function
/// over the `gens` field alone so callers can hold a live borrow into
/// `slots` at the same time.
fn bump_gen(gens: &mut Vec<u32>, idx: u32) -> u32 {
    while gens.len() <= idx as usize {
        gens.push(0);
    }
    gens[idx as usize] += 1;
    gens[idx as usize]
}

impl SessionMux {
    /// Creates the mux, binding the session socket when
    /// [`FrontendOptions::session_socket`] is set.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the session socket cannot be opened.
    pub fn new(opts: FrontendOptions) -> io::Result<SessionMux> {
        let socket = if opts.session_socket {
            let s = UdpSocket::bind("127.0.0.1:0")?;
            s.set_nonblocking(true)?;
            Some(s)
        } else {
            None
        };
        let addr = match &socket {
            Some(s) => Some(s.local_addr()?),
            None => None,
        };
        Ok(SessionMux {
            opts,
            socket,
            addr,
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            by_name: HashMap::new(),
            rr: VecDeque::new(),
            queued_total: 0,
            pool: BufferPool::new(MAX_FRAME, POOL_MAX_FREE),
            recv_leases: Vec::new(),
            send_scratch: Vec::new(),
            memo: None,
            stats: FrontendStats::default(),
        })
    }

    /// The session socket's address, if one is open.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Descriptor to park the reactor on, if the session socket is open
    /// and the platform exposes one.
    pub fn poll_fd(&self) -> Option<i32> {
        self.socket.as_ref().and_then(|s| s.poll_fd())
    }

    /// Counts one reactor wakeup (the pump calls this per loop turn).
    pub fn note_wakeup(&mut self) {
        self.stats.wakeups += 1;
    }

    /// A copy of the frontend counters.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    fn alloc_slot(&mut self, name: String, kind: SessionKind) -> u64 {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        let gen = bump_gen(&mut self.gens, idx);
        self.by_name.insert(name.clone(), idx);
        self.slots[idx as usize] = Some(Session { gen, name, kind });
        self.stats.sessions_open += 1;
        self.stats.sessions_peak = self.stats.sessions_peak.max(self.stats.sessions_open);
        session_id(idx, gen)
    }

    fn free_slot(&mut self, idx: u32) -> Option<Session> {
        let sess = self.slots.get_mut(idx as usize)?.take()?;
        self.by_name.remove(&sess.name);
        if let SessionKind::Remote { queue, .. } = &sess.kind {
            self.queued_total -= queue.len();
        }
        self.free.push(idx);
        self.stats.sessions_open -= 1;
        self.stats.closes += 1;
        Some(sess)
    }

    /// Validates a wire session id against the slab, returning the slot
    /// index. Returns no reference so callers keep full use of `self`.
    fn resolve(&self, session: u64) -> Option<u32> {
        let idx = (session & 0xFFFF_FFFF) as u32;
        let gen = (session >> 32) as u32;
        let sess = self.slots.get(idx as usize)?.as_ref()?;
        (sess.gen == gen).then_some(idx)
    }

    /// Registers an in-process adapter session (the caller has already
    /// connected the name at the engine).
    pub fn open_adapter(&mut self, name: &str, tx: Sender<ClientEvent>) {
        self.stats.hellos += 1;
        self.alloc_slot(name.to_string(), SessionKind::Adapter { tx });
    }

    /// Removes the named session without farewell frames (adapter
    /// disconnects, engine-side removals).
    pub fn close_name(&mut self, name: &str) {
        if let Some(idx) = self.by_name.get(name).copied() {
            self.free_slot(idx);
        }
    }

    /// Whether the named session exists.
    pub fn has_session(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Counts a submit the engine rejected (invalid group name, unknown
    /// client): the frame was well-formed but unusable, which the
    /// frontend surfaces in the same counter as parse failures.
    pub fn note_rejected(&mut self) {
        self.stats.bad_frames += 1;
    }

    fn send_frame(&mut self, frame: &SessionFrame, addr: SocketAddr) {
        if let Some(sock) = &self.socket {
            let encoded = encode_session_frame(frame);
            self.stats.syscalls += 1;
            let _ = DatagramSocket::send_to(sock, &encoded, addr);
        }
    }

    /// Sends one frame to an arbitrary peer address over the session
    /// socket (a no-op when the socket is disabled). The recovery
    /// runtime uses this for daemon-to-daemon MAP_PULL requests and
    /// MAP_PUSH replies, which deliberately bypass the session table and
    /// its credit machinery.
    pub fn send_session_frame(&mut self, frame: &SessionFrame, addr: SocketAddr) {
        self.send_frame(frame, addr);
    }

    /// Resolves a HELLO. The `connect` closure performs the engine-side
    /// client registration when (and only when) this is a genuinely new
    /// name; retried HELLOs are re-welcomed and reconnects of a live
    /// remote session supersede it in place, keeping the engine-side
    /// client (and its group memberships) intact.
    pub fn handle_hello<E>(
        &mut self,
        name: String,
        resume_seq: u64,
        nonce: u64,
        addr: SocketAddr,
        connect: E,
    ) where
        E: FnOnce(&str) -> Result<(), EngineError>,
    {
        if let Some(idx) = self.by_name.get(&name).copied() {
            let sess = self.slots[idx as usize]
                .as_mut()
                .expect("by_name points at a live slot");
            match &mut sess.kind {
                SessionKind::Remote {
                    addr: old_addr,
                    nonce: old_nonce,
                    resume,
                    fw,
                    credits,
                    queue,
                    armed,
                } => {
                    if *old_nonce == nonce {
                        // Retried HELLO: the first WELCOME was lost.
                        let frame = SessionFrame::Welcome {
                            session: session_id(idx, sess.gen),
                            resume_seq: *resume,
                            credits: *credits,
                            nonce,
                        };
                        self.send_frame(&frame, addr);
                        return;
                    }
                    // A new incarnation supersedes the old session in
                    // place: parked events die with the old credit state,
                    // the engine-side client (and group memberships)
                    // survive for the resume.
                    let stale = queue.len();
                    let dead_addr = *old_addr;
                    *old_addr = addr;
                    *old_nonce = nonce;
                    *resume = resume_seq;
                    *fw = resume_seq;
                    *credits = self.opts.initial_credits;
                    queue.clear();
                    *armed = false;
                    let gen = bump_gen(&mut self.gens, idx);
                    sess.gen = gen;
                    self.queued_total -= stale;
                    self.stats.resumes += 1;
                    self.send_frame(
                        &SessionFrame::Error {
                            session: 0,
                            reason: "session superseded".to_string(),
                        },
                        dead_addr,
                    );
                    let welcome = SessionFrame::Welcome {
                        session: session_id(idx, gen),
                        resume_seq,
                        credits: self.opts.initial_credits,
                        nonce,
                    };
                    self.send_frame(&welcome, addr);
                }
                SessionKind::Adapter { .. } => {
                    self.send_frame(
                        &SessionFrame::Error {
                            session: 0,
                            reason: format!("name {name:?} in use by a local client"),
                        },
                        addr,
                    );
                }
            }
            return;
        }
        match connect(&name) {
            Ok(()) | Err(EngineError::DuplicateClient(_)) => {
                if resume_seq > 0 {
                    self.stats.resumes += 1;
                } else {
                    self.stats.hellos += 1;
                }
                let session = self.alloc_slot(
                    name,
                    SessionKind::Remote {
                        addr,
                        nonce,
                        resume: resume_seq,
                        fw: resume_seq,
                        credits: self.opts.initial_credits,
                        queue: VecDeque::new(),
                        armed: false,
                    },
                );
                let welcome = SessionFrame::Welcome {
                    session,
                    resume_seq,
                    credits: self.opts.initial_credits,
                    nonce,
                };
                self.send_frame(&welcome, addr);
            }
            Err(e) => {
                self.send_frame(
                    &SessionFrame::Error {
                        session: 0,
                        reason: e.to_string(),
                    },
                    addr,
                );
            }
        }
    }

    /// Drains the session socket, absorbing CREDIT and dedup internally
    /// and appending engine-relevant work to `out`. Returns how many
    /// datagrams were consumed.
    pub fn ingest(&mut self, out: &mut Vec<Ingress>) -> usize {
        if self.socket.is_none() {
            return 0;
        }
        let mut total = 0;
        loop {
            while self.recv_leases.len() < RECV_BATCH {
                self.recv_leases.push(self.pool.acquire());
            }
            let (outcome, meta) = {
                let sock = self.socket.as_ref().expect("checked above");
                let mut slots: Vec<RecvSlot<'_>> = self
                    .recv_leases
                    .iter_mut()
                    .map(|l| RecvSlot::new(l.recv_space()))
                    .collect();
                let outcome = sock.recv_batch(&mut slots);
                let meta: Vec<(usize, SocketAddr)> = slots
                    .iter()
                    .take_while(|s| s.addr.is_some())
                    .map(|s| (s.len, s.addr.expect("filled slot")))
                    .collect();
                (outcome, meta)
            };
            let outcome = match outcome {
                Ok(o) => o,
                Err(_) => {
                    self.stats.bad_frames += 1;
                    break;
                }
            };
            self.stats.syscalls += outcome.syscalls;
            if outcome.received == 0 {
                break;
            }
            total += outcome.received;
            let used: Vec<BufLease> = self.recv_leases.drain(..outcome.received).collect();
            for (lease, (len, addr)) in used.into_iter().zip(meta) {
                // Parse in place: the frame (and any submit payload it
                // carries) is a slice of the pooled buffer.
                let mut datagram = lease.freeze_prefix(len);
                match decode_session_frame(&mut datagram) {
                    Ok(frame) => self.on_frame(frame, addr, out),
                    Err(_) => self.stats.bad_frames += 1,
                }
            }
            if outcome.received < RECV_BATCH {
                break;
            }
        }
        total
    }

    fn on_frame(&mut self, frame: SessionFrame, addr: SocketAddr, out: &mut Vec<Ingress>) {
        match frame {
            SessionFrame::Hello {
                name,
                resume_seq,
                nonce,
            } => out.push(Ingress::Hello {
                name,
                resume_seq,
                nonce,
                addr,
            }),
            SessionFrame::Submit {
                session,
                seq,
                service,
                action,
            } => {
                let Some(idx) = self.resolve(session) else {
                    self.stats.bad_frames += 1;
                    self.send_frame(
                        &SessionFrame::Error {
                            session,
                            reason: "unknown session".to_string(),
                        },
                        addr,
                    );
                    return;
                };
                let sess = self.slots[idx as usize]
                    .as_mut()
                    .expect("resolve returned a live slot");
                let SessionKind::Remote { resume, fw, .. } = &mut sess.kind else {
                    self.stats.bad_frames += 1;
                    return;
                };
                // Session-level dedup: sequences above the resume
                // watermark must be strictly increasing; at or below it
                // they are deliberate resubmits and pass through to the
                // engine's ring-wide dedup.
                if seq > *resume {
                    if seq <= *fw {
                        self.stats.submits_duplicate += 1;
                        return;
                    }
                    *fw = seq;
                }
                let name = sess.name.clone();
                self.stats.submits += 1;
                out.push(Ingress::Submit {
                    name,
                    seq,
                    service,
                    action,
                });
            }
            SessionFrame::Credit { session, credits } => {
                let Some(idx) = self.resolve(session) else {
                    return;
                };
                let sess = self.slots[idx as usize]
                    .as_mut()
                    .expect("resolve returned a live slot");
                if let SessionKind::Remote {
                    credits: c,
                    queue,
                    armed,
                    ..
                } = &mut sess.kind
                {
                    *c = c.saturating_add(credits);
                    self.stats.credits_granted += 1;
                    if !queue.is_empty() && !*armed {
                        *armed = true;
                        self.rr.push_back(idx);
                    }
                }
            }
            SessionFrame::Bye { session } => {
                let Some(idx) = self.resolve(session) else {
                    return;
                };
                if let Some(sess) = self.free_slot(idx) {
                    out.push(Ingress::Bye { name: sess.name });
                }
            }
            // Recovery anti-entropy rides the session socket but is
            // daemon-to-daemon: no session table entry, no credits —
            // the runtime owns both sides.
            SessionFrame::MapPull { nonce, want_epoch } => out.push(Ingress::MapPull {
                nonce,
                want_epoch,
                addr,
            }),
            SessionFrame::MapPush {
                nonce,
                epoch,
                slot,
                map_version,
                body,
            } => out.push(Ingress::MapPush {
                nonce,
                epoch,
                slot,
                map_version,
                body,
            }),
            SessionFrame::SvcQuery { nonce, body } => {
                self.stats.svc_queries += 1;
                out.push(Ingress::SvcQuery { nonce, body, addr });
            }
            // A reply reaching the daemon socket answers nothing here:
            // requesters receive replies on their own sockets.
            SessionFrame::SvcReply { .. } => {}
            // Daemon-to-client frames arriving at the daemon are noise.
            SessionFrame::Welcome { .. }
            | SessionFrame::Event { .. }
            | SessionFrame::Error { .. } => {
                self.stats.bad_frames += 1;
            }
        }
    }

    /// Routes one engine-emitted event to the named session: adapters
    /// get the event on their channel, remote sessions get an encoded
    /// EVENT frame queued under the credit/shed policy.
    pub fn deliver(&mut self, name: &str, event: ClientEvent) {
        let Some(idx) = self.by_name.get(name).copied() else {
            // The session closed between the engine emitting the event
            // and the reactor routing it.
            self.stats.shed_disconnect_race += 1;
            return;
        };
        let terminal = matches!(event, ClientEvent::Disconnected { .. });
        let sess = self.slots[idx as usize]
            .as_mut()
            .expect("by_name points at a live slot");
        match &mut sess.kind {
            SessionKind::Adapter { tx } => {
                self.stats.events_enqueued += 1;
                if terminal {
                    // Never shed the terminal event; channel closure
                    // backstops even a wedged client.
                    let _ = tx.send_timeout(event, DISCONNECT_SEND_TIMEOUT);
                    self.stats.events_sent += 1;
                    self.free_slot(idx);
                    return;
                }
                match tx.try_send(event) {
                    Ok(()) => self.stats.events_sent += 1,
                    Err(TrySendError::Full(_)) => self.stats.shed_slow_session += 1,
                    Err(TrySendError::Disconnected(_)) => {
                        self.stats.shed_disconnect_race += 1;
                    }
                }
            }
            SessionKind::Remote {
                addr,
                credits,
                queue,
                armed,
                ..
            } => {
                let gen = sess.gen;
                let addr = *addr;
                if terminal {
                    // Terminal frames bypass the credit gate: sent
                    // immediately, then the slot dies.
                    let body = encode_event_body(&event);
                    let frame = SessionFrame::Event {
                        session: session_id(idx, gen),
                        body,
                    };
                    self.send_frame(&frame, addr);
                    self.stats.events_sent += 1;
                    self.free_slot(idx);
                    return;
                }
                self.stats.events_enqueued += 1;
                if self.queued_total >= self.opts.global_queue {
                    self.stats.shed_global_budget += 1;
                    return;
                }
                if queue.len() >= self.opts.session_queue {
                    self.stats.shed_slow_session += 1;
                    return;
                }
                let body = encode_once(&mut self.memo, &event);
                let mut frame = BytesMut::with_capacity(9 + body.len());
                frame.put_u8(FR_EVENT);
                frame.put_u64_le(session_id(idx, gen));
                frame.put_slice(&body);
                queue.push_back(frame.freeze());
                self.queued_total += 1;
                if *credits > 0 && !*armed {
                    *armed = true;
                    self.rr.push_back(idx);
                }
            }
        }
    }

    /// Flushes queued EVENT frames: round-robin across armed sessions,
    /// bounded by credits per session and the egress budget overall, in
    /// as few syscalls as `sendmmsg` allows.
    pub fn flush_egress(&mut self) {
        if self.socket.is_none() || self.rr.is_empty() {
            return;
        }
        let mut budget = self.opts.egress_budget;
        let mut batch = std::mem::take(&mut self.send_scratch);
        batch.clear();
        while budget > 0 {
            let Some(idx) = self.rr.pop_front() else {
                break;
            };
            let Some(sess) = self.slots[idx as usize].as_mut() else {
                continue;
            };
            let SessionKind::Remote {
                addr,
                credits,
                queue,
                armed,
                ..
            } = &mut sess.kind
            else {
                continue;
            };
            let n = (*credits as usize)
                .min(queue.len())
                .min(RR_CHUNK)
                .min(budget);
            for _ in 0..n {
                let frame = queue.pop_front().expect("n <= queue.len()");
                batch.push((frame, *addr));
            }
            *credits -= n as u32;
            self.queued_total -= n;
            budget -= n;
            if !queue.is_empty() && *credits > 0 {
                self.rr.push_back(idx);
            } else {
                *armed = false;
            }
        }
        if !batch.is_empty() {
            let sock = self.socket.as_ref().expect("checked above");
            let out = sock.send_batch(&batch);
            self.stats.syscalls += out.syscalls;
            self.stats.events_sent += out.sent as u64;
        }
        batch.clear();
        self.send_scratch = batch;
    }

    /// Whether any session still has queued egress (the pump should not
    /// park long while this is true).
    pub fn has_pending_egress(&self) -> bool {
        !self.rr.is_empty()
    }

    /// Delivers the terminal event to every session: adapters get a
    /// briefly-blocking channel send, remote sessions get an immediate
    /// EVENT frame. The table is left empty.
    pub fn broadcast_disconnected(&mut self, reason: &str) {
        let indices: Vec<u32> = self.by_name.values().copied().collect();
        for idx in indices {
            let Some(sess) = self.slots[idx as usize].as_ref() else {
                continue;
            };
            let name = sess.name.clone();
            self.deliver(
                &name,
                ClientEvent::Disconnected {
                    reason: reason.to_string(),
                },
            );
        }
    }
}

/// Encodes an event body, reusing the previous encoding when this is the
/// same message fanning out to another subscriber. Identity is the
/// payload `Bytes` (pointer + length); the memo holds that `Bytes`, so
/// the buffer cannot be freed and recycled into a false match. A free
/// function over the memo field alone so [`SessionMux::deliver`] can call
/// it while holding a borrow into the session table.
fn encode_once(memo: &mut Option<(Bytes, Bytes)>, event: &ClientEvent) -> Bytes {
    if let ClientEvent::Message { payload, .. } = event {
        if let Some((memo_payload, memo_body)) = memo {
            if memo_payload.as_ptr() == payload.as_ptr() && memo_payload.len() == payload.len() {
                return memo_body.clone();
            }
        }
        let body = encode_event_body(event);
        *memo = Some((payload.clone(), body.clone()));
        return body;
    }
    encode_event_body(event)
}

// ---------------------------------------------------------------------------
// Remote client
// ---------------------------------------------------------------------------

/// A remote client of a daemon's session frontend: the wire-protocol
/// counterpart of [`crate::runtime::GroupClient`], usable from any
/// process (or host) that can reach the daemon's session socket.
///
/// Mirrors the adapter API where it can; group operations are
/// fire-and-forget datagrams (errors surface as an ERROR frame on the
/// event stream), events arrive through [`SessionClient::recv_event`],
/// which also drives the credit grants that keep the daemon sending.
#[derive(Debug)]
pub struct SessionClient {
    socket: UdpSocket,
    daemon: SocketAddr,
    name: String,
    session: u64,
    next_seq: u64,
    consumed: u32,
    recv_buf: Vec<u8>,
}

impl SessionClient {
    /// Opens a fresh session (sequenced sends start at 1).
    ///
    /// # Errors
    ///
    /// Returns an error if the daemon rejected the name or never
    /// answered [`HELLO_ATTEMPTS`] jittered retries.
    pub fn connect(daemon: SocketAddr, name: &str) -> io::Result<SessionClient> {
        SessionClient::connect_session(daemon, name, 0)
    }

    /// Opens a session resuming an earlier watermark, exactly like
    /// [`crate::runtime::GroupDaemon::connect_session`]: sequenced sends
    /// continue above `resume_from`, and in-doubt sequences at or below
    /// it may be [`SessionClient::resubmit`]ted for at-most-once
    /// redelivery.
    ///
    /// # Errors
    ///
    /// Returns an error if the daemon rejected the session or the HELLO
    /// retries were exhausted.
    pub fn connect_session(
        daemon: SocketAddr,
        name: &str,
        resume_from: u64,
    ) -> io::Result<SessionClient> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        // Nonce from the wall clock and the ephemeral port: unique per
        // connect attempt series, stable across retries of one series.
        let nonce = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            socket.local_addr()?.hash(&mut h);
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap_or_default()
                .subsec_nanos()
                .hash(&mut h);
            h.finish()
        };
        let hello = encode_session_frame(&SessionFrame::Hello {
            name: name.to_string(),
            resume_seq: resume_from,
            nonce,
        });
        let mut backoff = Backoff::new(HELLO_BACKOFF_BASE, HELLO_BACKOFF_CAP, nonce | 1);
        let mut buf = vec![0u8; MAX_FRAME];
        for _ in 0..HELLO_ATTEMPTS {
            socket.send_to(&hello, daemon)?;
            // Jittered wait for WELCOME doubles as the retry backoff.
            socket.set_read_timeout(Some(backoff.next_delay().max(Duration::from_millis(5))))?;
            loop {
                match socket.recv_from(&mut buf) {
                    Ok((len, from)) if from == daemon => {
                        let mut datagram = Bytes::copy_from_slice(&buf[..len]);
                        match decode_session_frame(&mut datagram) {
                            Ok(SessionFrame::Welcome {
                                session, nonce: n, ..
                            }) if n == nonce => {
                                socket.set_read_timeout(None)?;
                                return Ok(SessionClient {
                                    socket,
                                    daemon,
                                    name: name.to_string(),
                                    session,
                                    next_seq: resume_from,
                                    consumed: 0,
                                    recv_buf: buf,
                                });
                            }
                            Ok(SessionFrame::Error { reason, .. }) => {
                                return Err(io::Error::new(
                                    io::ErrorKind::ConnectionRefused,
                                    reason,
                                ));
                            }
                            _ => continue,
                        }
                    }
                    Ok(_) => continue,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("no WELCOME from {daemon} after {HELLO_ATTEMPTS} attempts"),
        ))
    }

    /// This client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The daemon-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The last sequence stamped by
    /// [`SessionClient::multicast_sequenced`] (or the resume watermark).
    pub fn last_seq(&self) -> u64 {
        self.next_seq
    }

    fn submit(&self, seq: u64, service: Service, action: GroupAction) -> io::Result<()> {
        let frame = encode_session_frame(&SessionFrame::Submit {
            session: self.session,
            seq,
            service,
            action,
        });
        self.socket.send_to(&frame, self.daemon)?;
        Ok(())
    }

    /// Joins a group.
    ///
    /// # Errors
    ///
    /// Returns an error if the datagram could not be sent.
    pub fn join(&self, group: &str) -> io::Result<()> {
        self.submit(
            0,
            Service::Agreed,
            GroupAction::Join {
                group: group.to_string(),
            },
        )
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// Returns an error if the datagram could not be sent.
    pub fn leave(&self, group: &str) -> io::Result<()> {
        self.submit(
            0,
            Service::Agreed,
            GroupAction::Leave {
                group: group.to_string(),
            },
        )
    }

    /// Multicasts unsequenced data to one or more groups.
    ///
    /// # Errors
    ///
    /// Returns an error if the datagram could not be sent.
    pub fn multicast(&self, groups: &[&str], payload: Bytes, service: Service) -> io::Result<()> {
        self.submit(
            0,
            service,
            GroupAction::Data {
                groups: groups.iter().map(|g| (*g).to_string()).collect(),
                payload,
            },
        )
    }

    /// Multicasts with the session's next sequence number stamped,
    /// returning it for possible [`SessionClient::resubmit`] after a
    /// reconnect.
    ///
    /// # Errors
    ///
    /// Returns an error if the datagram could not be sent.
    pub fn multicast_sequenced(
        &mut self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> io::Result<u64> {
        let seq = self.next_seq + 1;
        self.submit(
            seq,
            service,
            GroupAction::Data {
                groups: groups.iter().map(|g| (*g).to_string()).collect(),
                payload,
            },
        )?;
        self.next_seq = seq;
        Ok(seq)
    }

    /// Re-sends an in-doubt message under its original sequence number;
    /// engines deliver it at most once ring-wide.
    ///
    /// # Errors
    ///
    /// Returns an error if the datagram could not be sent.
    pub fn resubmit(
        &self,
        seq: u64,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> io::Result<()> {
        self.submit(
            seq,
            service,
            GroupAction::Data {
                groups: groups.iter().map(|g| (*g).to_string()).collect(),
                payload,
            },
        )
    }

    /// Waits up to `timeout` for the next event. `Ok(None)` means the
    /// wait timed out. Consuming events grants the daemon fresh credits
    /// in batches, keeping the event pipe full without a per-event ack.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failure.
    pub fn recv_event(&mut self, timeout: Duration) -> io::Result<Option<ClientEvent>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.socket.set_read_timeout(Some(remaining))?;
            match self.socket.recv_from(&mut self.recv_buf) {
                Ok((len, from)) if from == self.daemon => {
                    let mut datagram = Bytes::copy_from_slice(&self.recv_buf[..len]);
                    match decode_session_frame(&mut datagram) {
                        Ok(SessionFrame::Event { session, mut body })
                            if session == self.session =>
                        {
                            if let Ok(event) = decode_event_body(&mut body) {
                                self.consumed += 1;
                                if self.consumed >= CREDIT_REFRESH {
                                    let credit = encode_session_frame(&SessionFrame::Credit {
                                        session: self.session,
                                        credits: self.consumed,
                                    });
                                    let _ = self.socket.send_to(&credit, self.daemon);
                                    self.consumed = 0;
                                }
                                return Ok(Some(event));
                            }
                        }
                        Ok(SessionFrame::Error { reason, .. }) => {
                            return Ok(Some(ClientEvent::Disconnected { reason }));
                        }
                        _ => {}
                    }
                }
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Closes the session.
    pub fn bye(self) {
        let frame = encode_session_frame(&SessionFrame::Bye {
            session: self.session,
        });
        let _ = self.socket.send_to(&frame, self.daemon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ClientId;
    use accelring_core::ParticipantId;
    use crossbeam::channel::bounded;

    fn msg(payload: &'static [u8]) -> ClientEvent {
        ClientEvent::Message {
            sender: ClientId {
                daemon: ParticipantId::new(0),
                name: "s".to_string(),
            },
            seq: 0,
            groups: vec!["g".to_string()],
            payload: Bytes::from_static(payload),
            service: Service::Agreed,
        }
    }

    fn recv_frame(sock: &UdpSocket) -> SessionFrame {
        let mut buf = vec![0u8; MAX_FRAME];
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let (len, _) = sock.recv_from(&mut buf).unwrap();
        let mut datagram = Bytes::copy_from_slice(&buf[..len]);
        decode_session_frame(&mut datagram).unwrap()
    }

    /// HELLO → WELCOME through the mux, then the session-level dedup
    /// rule: repeats of a forwarded sequence are dropped, sequences at or
    /// below the resume watermark pass through (the engine decides).
    #[test]
    fn hello_then_submit_dedup() {
        let mut mux = SessionMux::new(FrontendOptions::enabled()).unwrap();
        let daemon = mux.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        let hello = encode_session_frame(&SessionFrame::Hello {
            name: "alice".to_string(),
            resume_seq: 3,
            nonce: 7,
        });
        client.send_to(&hello, daemon).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        mux.ingest(&mut out);
        let Some(Ingress::Hello {
            name,
            resume_seq,
            nonce,
            addr,
        }) = out.pop()
        else {
            panic!("expected a HELLO ingress");
        };
        mux.handle_hello(name, resume_seq, nonce, addr, |_| Ok(()));
        let SessionFrame::Welcome {
            session,
            resume_seq,
            ..
        } = recv_frame(&client)
        else {
            panic!("expected WELCOME");
        };
        assert_eq!(resume_seq, 3);

        let submit = |seq: u64| {
            let frame = encode_session_frame(&SessionFrame::Submit {
                session,
                seq,
                service: Service::Agreed,
                action: GroupAction::Data {
                    groups: vec!["g".to_string()],
                    payload: Bytes::from_static(b"x"),
                },
            });
            client.send_to(&frame, daemon).unwrap();
        };
        submit(4); // fresh
        submit(4); // retransmission: dropped at the session
        submit(2); // at/below resume: passes through to the engine
        std::thread::sleep(Duration::from_millis(20));
        out.clear();
        mux.ingest(&mut out);
        let forwarded: Vec<u64> = out
            .iter()
            .filter_map(|i| match i {
                Ingress::Submit { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(forwarded, vec![4, 2]);
        assert_eq!(mux.stats().submits_duplicate, 1);
    }

    /// Egress is credit-gated: the daemon sends at most the granted
    /// window, and a CREDIT frame reopens it.
    #[test]
    fn egress_respects_credits() {
        let opts = FrontendOptions {
            session_socket: true,
            initial_credits: 2,
            ..FrontendOptions::default()
        };
        let mut mux = SessionMux::new(opts).unwrap();
        let daemon = mux.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        let client_addr = client.local_addr().unwrap();
        mux.handle_hello("bob".to_string(), 0, 1, client_addr, |_| Ok(()));
        let SessionFrame::Welcome {
            session, credits, ..
        } = recv_frame(&client)
        else {
            panic!("expected WELCOME");
        };
        assert_eq!(credits, 2);
        for _ in 0..5 {
            mux.deliver("bob", msg(b"ev"));
        }
        mux.flush_egress();
        for _ in 0..2 {
            assert!(matches!(recv_frame(&client), SessionFrame::Event { .. }));
        }
        client
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut buf = [0u8; 64];
        assert!(client.recv_from(&mut buf).is_err(), "window exhausted");

        let credit = encode_session_frame(&SessionFrame::Credit {
            session,
            credits: 3,
        });
        client.send_to(&credit, daemon).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        mux.ingest(&mut out);
        mux.flush_egress();
        for _ in 0..3 {
            assert!(matches!(recv_frame(&client), SessionFrame::Event { .. }));
        }
        assert_eq!(mux.stats().events_sent, 5);
    }

    /// Adapter sessions shed into the per-cause counters when their
    /// channel is full, but the terminal Disconnected always lands.
    #[test]
    fn adapter_sheds_but_terminal_delivers() {
        let mut mux = SessionMux::new(FrontendOptions::default()).unwrap();
        let (tx, rx) = bounded(1);
        mux.open_adapter("carol", tx);
        for _ in 0..3 {
            mux.deliver("carol", msg(b"ev"));
        }
        assert_eq!(mux.stats().shed_slow_session, 2);
        assert!(rx.try_recv().is_ok());
        mux.deliver(
            "carol",
            ClientEvent::Disconnected {
                reason: "bye".to_string(),
            },
        );
        assert!(matches!(
            rx.try_recv(),
            Ok(ClientEvent::Disconnected { .. })
        ));
        assert!(!mux.has_session("carol"), "terminal delivery closes");
        // Deliveries racing the close are attributed, not lost silently.
        mux.deliver("carol", msg(b"late"));
        assert_eq!(mux.stats().shed_disconnect_race, 1);
    }

    /// A reused slot's new generation invalidates the old session id.
    #[test]
    fn stale_session_id_is_rejected() {
        let mut mux = SessionMux::new(FrontendOptions::enabled()).unwrap();
        let daemon = mux.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        mux.handle_hello(
            "dave".to_string(),
            0,
            9,
            client.local_addr().unwrap(),
            |_| Ok(()),
        );
        let SessionFrame::Welcome { session, .. } = recv_frame(&client) else {
            panic!("expected WELCOME");
        };
        mux.close_name("dave");
        mux.handle_hello(
            "erin".to_string(),
            0,
            10,
            client.local_addr().unwrap(),
            |_| Ok(()),
        );
        let SessionFrame::Welcome { session: s2, .. } = recv_frame(&client) else {
            panic!("expected WELCOME");
        };
        assert_ne!(session, s2, "slot reuse must change the session id");
        let stale = encode_session_frame(&SessionFrame::Submit {
            session,
            seq: 1,
            service: Service::Agreed,
            action: GroupAction::Data {
                groups: vec!["g".to_string()],
                payload: Bytes::new(),
            },
        });
        client.send_to(&stale, daemon).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        mux.ingest(&mut out);
        assert!(out.is_empty(), "stale id must not reach the engine");
        assert_eq!(mux.stats().bad_frames, 1);
        assert!(matches!(recv_frame(&client), SessionFrame::Error { .. }));
    }

    /// A HELLO with a new nonce supersedes the live session in place:
    /// same name, fresh generation, parked events dropped.
    #[test]
    fn reconnect_supersedes_in_place() {
        let opts = FrontendOptions {
            session_socket: true,
            initial_credits: 0,
            ..FrontendOptions::default()
        };
        let mut mux = SessionMux::new(opts).unwrap();
        let old = UdpSocket::bind("127.0.0.1:0").unwrap();
        mux.handle_hello("fred".to_string(), 0, 1, old.local_addr().unwrap(), |_| {
            Ok(())
        });
        let SessionFrame::Welcome { session: s1, .. } = recv_frame(&old) else {
            panic!("expected WELCOME");
        };
        mux.deliver("fred", msg(b"parked"));
        let mut connects = 0;
        let new = UdpSocket::bind("127.0.0.1:0").unwrap();
        mux.handle_hello("fred".to_string(), 5, 2, new.local_addr().unwrap(), |_| {
            connects += 1;
            Ok(())
        });
        assert_eq!(connects, 0, "supersede keeps the engine-side client");
        let SessionFrame::Welcome {
            session: s2,
            resume_seq,
            ..
        } = recv_frame(&new)
        else {
            panic!("expected WELCOME on the new socket");
        };
        assert_ne!(s1, s2);
        assert_eq!(resume_seq, 5);
        assert!(matches!(recv_frame(&old), SessionFrame::Error { .. }));
        assert_eq!(mux.stats().resumes, 1);
        assert_eq!(mux.stats().sessions_open, 1);
    }
}
