//! The replicated group table: which clients are members of which groups.
//!
//! Every daemon applies exactly the same sequence of join/leave/disconnect
//! operations (they arrive through the total order), so the tables are
//! replicas of each other without any further coordination.

use std::collections::{BTreeMap, BTreeSet};

use accelring_core::ParticipantId;

use crate::proto::ClientId;

/// A change to one group's membership, with the resulting view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupView {
    /// The group whose membership changed.
    pub group: String,
    /// The full member list after the change, sorted.
    pub members: Vec<ClientId>,
    /// The client whose action caused the change, if any (none for
    /// configuration-change prunes).
    pub cause: Option<ClientId>,
}

/// The replicated group-membership table.
#[derive(Debug, Clone, Default)]
pub struct GroupTable {
    groups: BTreeMap<String, BTreeSet<ClientId>>,
}

impl GroupTable {
    /// Creates an empty table.
    pub fn new() -> GroupTable {
        GroupTable::default()
    }

    /// Members of `group`, sorted (empty if the group does not exist).
    pub fn members(&self, group: &str) -> Vec<ClientId> {
        self.groups
            .get(group)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Whether `client` is a member of `group`.
    pub fn is_member(&self, group: &str, client: &ClientId) -> bool {
        self.groups.get(group).is_some_and(|s| s.contains(client))
    }

    /// All group names with at least one member.
    pub fn group_names(&self) -> Vec<String> {
        self.groups.keys().cloned().collect()
    }

    /// Number of non-empty groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Applies a join; returns the new view if membership changed.
    pub fn join(&mut self, group: &str, client: ClientId) -> Option<GroupView> {
        let set = self.groups.entry(group.to_string()).or_default();
        if set.insert(client.clone()) {
            Some(GroupView {
                group: group.to_string(),
                members: set.iter().cloned().collect(),
                cause: Some(client),
            })
        } else {
            None
        }
    }

    /// Applies a leave; returns the new view if membership changed. Empty
    /// groups are removed.
    pub fn leave(&mut self, group: &str, client: &ClientId) -> Option<GroupView> {
        let set = self.groups.get_mut(group)?;
        if !set.remove(client) {
            return None;
        }
        let view = GroupView {
            group: group.to_string(),
            members: set.iter().cloned().collect(),
            cause: Some(client.clone()),
        };
        if set.is_empty() {
            self.groups.remove(group);
        }
        Some(view)
    }

    /// Removes `client` from every group (disconnect), returning one view
    /// per affected group.
    pub fn remove_client(&mut self, client: &ClientId) -> Vec<GroupView> {
        let affected: Vec<String> = self
            .groups
            .iter()
            .filter(|(_, members)| members.contains(client))
            .map(|(g, _)| g.clone())
            .collect();
        affected
            .into_iter()
            .filter_map(|g| self.leave(&g, client))
            .collect()
    }

    /// Removes every client attached to a daemon outside `alive` (applied
    /// on EVS configuration changes: clients of departed daemons are gone).
    pub fn retain_daemons(&mut self, alive: &[ParticipantId]) -> Vec<GroupView> {
        let departed: BTreeSet<ClientId> = self
            .groups
            .values()
            .flatten()
            .filter(|c| !alive.contains(&c.daemon))
            .cloned()
            .collect();
        let mut views = Vec::new();
        for client in departed {
            views.extend(self.remove_client(&client));
        }
        views
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(d: u16, name: &str) -> ClientId {
        ClientId {
            daemon: ParticipantId::new(d),
            name: name.to_string(),
        }
    }

    #[test]
    fn join_and_leave_produce_views() {
        let mut t = GroupTable::new();
        let a = client(0, "a");
        let b = client(1, "b");
        let v1 = t.join("g", a.clone()).unwrap();
        assert_eq!(v1.members, vec![a.clone()]);
        assert_eq!(v1.cause, Some(a.clone()));
        let v2 = t.join("g", b.clone()).unwrap();
        assert_eq!(v2.members.len(), 2);
        let v3 = t.leave("g", &a).unwrap();
        assert_eq!(v3.members, vec![b.clone()]);
        assert!(t.is_member("g", &b));
        assert!(!t.is_member("g", &a));
    }

    #[test]
    fn duplicate_join_is_a_noop() {
        let mut t = GroupTable::new();
        let a = client(0, "a");
        assert!(t.join("g", a.clone()).is_some());
        assert!(t.join("g", a).is_none());
    }

    #[test]
    fn leave_of_non_member_is_a_noop() {
        let mut t = GroupTable::new();
        assert!(t.leave("g", &client(0, "a")).is_none());
        t.join("g", client(0, "a"));
        assert!(t.leave("g", &client(0, "other")).is_none());
    }

    #[test]
    fn empty_groups_disappear() {
        let mut t = GroupTable::new();
        let a = client(0, "a");
        t.join("g", a.clone());
        assert_eq!(t.len(), 1);
        t.leave("g", &a);
        assert!(t.is_empty());
        assert!(t.group_names().is_empty());
    }

    #[test]
    fn remove_client_covers_all_groups() {
        let mut t = GroupTable::new();
        let a = client(0, "a");
        t.join("g1", a.clone());
        t.join("g2", a.clone());
        t.join("g2", client(1, "b"));
        let views = t.remove_client(&a);
        assert_eq!(views.len(), 2);
        assert!(t.members("g1").is_empty());
        assert_eq!(t.members("g2").len(), 1);
    }

    #[test]
    fn retain_daemons_prunes_departed() {
        let mut t = GroupTable::new();
        t.join("g", client(0, "a"));
        t.join("g", client(1, "b"));
        t.join("g", client(2, "c"));
        let views = t.retain_daemons(&[ParticipantId::new(0), ParticipantId::new(2)]);
        assert_eq!(views.len(), 1);
        let members = t.members("g");
        assert_eq!(members.len(), 2);
        assert!(members.iter().all(|c| c.daemon != ParticipantId::new(1)));
        // Prune views have no causing client.
        assert_eq!(views[0].cause, None.or(views[0].cause.clone()));
    }

    #[test]
    fn members_sorted_deterministically() {
        let mut t = GroupTable::new();
        t.join("g", client(1, "z"));
        t.join("g", client(0, "a"));
        t.join("g", client(0, "b"));
        let members = t.members("g");
        assert_eq!(members[0], client(0, "a"));
        assert_eq!(members[1], client(0, "b"));
        assert_eq!(members[2], client(1, "z"));
    }
}
