//! The replicated group table: which clients are members of which groups.
//!
//! Every daemon applies exactly the same sequence of join/leave/disconnect
//! operations (they arrive through the total order), so the tables are
//! replicas of each other without any further coordination.

use std::collections::{BTreeMap, BTreeSet};

use accelring_core::ParticipantId;

use crate::proto::ClientId;

/// A change to one group's membership, with the resulting view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupView {
    /// The group whose membership changed.
    pub group: String,
    /// The full member list after the change, sorted.
    pub members: Vec<ClientId>,
    /// The client whose action caused the change, if any (none for
    /// configuration-change prunes).
    pub cause: Option<ClientId>,
}

/// The replicated group-membership table.
#[derive(Debug, Clone, Default)]
pub struct GroupTable {
    groups: BTreeMap<String, BTreeSet<ClientId>>,
}

impl GroupTable {
    /// Creates an empty table.
    pub fn new() -> GroupTable {
        GroupTable::default()
    }

    /// Members of `group`, sorted (empty if the group does not exist).
    pub fn members(&self, group: &str) -> Vec<ClientId> {
        self.groups
            .get(group)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Whether `client` is a member of `group`.
    pub fn is_member(&self, group: &str, client: &ClientId) -> bool {
        self.groups.get(group).is_some_and(|s| s.contains(client))
    }

    /// All group names with at least one member.
    pub fn group_names(&self) -> Vec<String> {
        self.groups.keys().cloned().collect()
    }

    /// Number of non-empty groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Applies a join and returns the resulting view.
    ///
    /// Idempotent: a duplicate join leaves the membership untouched and
    /// returns the current view as a confirmation. This matters when a
    /// shard rebalance moves a group to a new ring and every daemon
    /// re-submits joins for its local members — replayed joins must
    /// converge instead of being treated as errors or dropped silently
    /// (the joining client still needs its view).
    pub fn join(&mut self, group: &str, client: ClientId) -> GroupView {
        let set = self.groups.entry(group.to_string()).or_default();
        set.insert(client.clone());
        GroupView {
            group: group.to_string(),
            members: set.iter().cloned().collect(),
            cause: Some(client),
        }
    }

    /// Applies a leave; returns the new view if membership changed. Empty
    /// groups are removed.
    pub fn leave(&mut self, group: &str, client: &ClientId) -> Option<GroupView> {
        let set = self.groups.get_mut(group)?;
        if !set.remove(client) {
            return None;
        }
        let view = GroupView {
            group: group.to_string(),
            members: set.iter().cloned().collect(),
            cause: Some(client.clone()),
        };
        if set.is_empty() {
            self.groups.remove(group);
        }
        Some(view)
    }

    /// Removes `client` from every group (disconnect), returning one view
    /// per affected group.
    pub fn remove_client(&mut self, client: &ClientId) -> Vec<GroupView> {
        let affected: Vec<String> = self
            .groups
            .iter()
            .filter(|(_, members)| members.contains(client))
            .map(|(g, _)| g.clone())
            .collect();
        affected
            .into_iter()
            .filter_map(|g| self.leave(&g, client))
            .collect()
    }

    /// Every `(group, client)` membership of clients attached to
    /// `daemon`, in deterministic `(group, client)` order — what a daemon
    /// re-announces through the total order when a configuration merge
    /// reunites components with divergent tables.
    pub fn memberships_of_daemon(&self, daemon: ParticipantId) -> Vec<(String, ClientId)> {
        self.groups
            .iter()
            .flat_map(|(group, members)| {
                members
                    .iter()
                    .filter(|c| c.daemon == daemon)
                    .map(move |c| (group.clone(), c.clone()))
            })
            .collect()
    }

    /// Removes every client attached to a daemon outside `alive` (applied
    /// on EVS configuration changes: clients of departed daemons are gone).
    pub fn retain_daemons(&mut self, alive: &[ParticipantId]) -> Vec<GroupView> {
        let departed: BTreeSet<ClientId> = self
            .groups
            .values()
            .flatten()
            .filter(|c| !alive.contains(&c.daemon))
            .cloned()
            .collect();
        let mut views = Vec::new();
        for client in departed {
            views.extend(self.remove_client(&client));
        }
        views
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(d: u16, name: &str) -> ClientId {
        ClientId {
            daemon: ParticipantId::new(d),
            name: name.to_string(),
        }
    }

    #[test]
    fn join_and_leave_produce_views() {
        let mut t = GroupTable::new();
        let a = client(0, "a");
        let b = client(1, "b");
        let v1 = t.join("g", a.clone());
        assert_eq!(v1.members, vec![a.clone()]);
        assert_eq!(v1.cause, Some(a.clone()));
        let v2 = t.join("g", b.clone());
        assert_eq!(v2.members.len(), 2);
        let v3 = t.leave("g", &a).unwrap();
        assert_eq!(v3.members, vec![b.clone()]);
        assert!(t.is_member("g", &b));
        assert!(!t.is_member("g", &a));
    }

    #[test]
    fn duplicate_join_is_idempotent() {
        let mut t = GroupTable::new();
        let a = client(0, "a");
        let first = t.join("g", a.clone());
        let second = t.join("g", a.clone());
        // The replayed join changes nothing but still confirms the view.
        assert_eq!(first, second);
        assert_eq!(t.members("g"), vec![a]);
    }

    #[test]
    fn leave_of_non_member_is_a_noop() {
        let mut t = GroupTable::new();
        assert!(t.leave("g", &client(0, "a")).is_none());
        t.join("g", client(0, "a"));
        assert!(t.leave("g", &client(0, "other")).is_none());
    }

    #[test]
    fn empty_groups_disappear() {
        let mut t = GroupTable::new();
        let a = client(0, "a");
        t.join("g", a.clone());
        assert_eq!(t.len(), 1);
        t.leave("g", &a);
        assert!(t.is_empty());
        assert!(t.group_names().is_empty());
    }

    #[test]
    fn remove_client_covers_all_groups() {
        let mut t = GroupTable::new();
        let a = client(0, "a");
        t.join("g1", a.clone());
        t.join("g2", a.clone());
        t.join("g2", client(1, "b"));
        let views = t.remove_client(&a);
        assert_eq!(views.len(), 2);
        assert!(t.members("g1").is_empty());
        assert_eq!(t.members("g2").len(), 1);
    }

    #[test]
    fn retain_daemons_prunes_departed() {
        let mut t = GroupTable::new();
        t.join("g", client(0, "a"));
        t.join("g", client(1, "b"));
        t.join("g", client(2, "c"));
        let views = t.retain_daemons(&[ParticipantId::new(0), ParticipantId::new(2)]);
        assert_eq!(views.len(), 1);
        let members = t.members("g");
        assert_eq!(members.len(), 2);
        assert!(members.iter().all(|c| c.daemon != ParticipantId::new(1)));
        // Prune views have no causing client.
        assert_eq!(views[0].cause, None.or(views[0].cause.clone()));
    }

    #[test]
    fn retain_daemons_with_everyone_alive_is_a_noop() {
        let mut t = GroupTable::new();
        t.join("g", client(0, "a"));
        t.join("g", client(1, "b"));
        let views = t.retain_daemons(&[ParticipantId::new(0), ParticipantId::new(1)]);
        assert!(views.is_empty());
        assert_eq!(t.members("g").len(), 2);
    }

    #[test]
    fn rejoin_after_retain_daemons_restores_membership() {
        // Shard reassignment replays joins on the group's new ring: a
        // daemon that was pruned by a configuration change and came back
        // re-joins its clients, and the replay must produce full views.
        let mut t = GroupTable::new();
        let a = client(0, "a");
        let b = client(1, "b");
        t.join("g", a.clone());
        t.join("g", b.clone());
        t.retain_daemons(&[ParticipantId::new(1)]);
        assert_eq!(t.members("g"), vec![b.clone()]);
        let v = t.join("g", a.clone());
        assert_eq!(v.members, vec![a.clone(), b.clone()]);
        // The surviving member's replayed join is also harmless.
        let v = t.join("g", b.clone());
        assert_eq!(v.members, vec![a, b]);
    }

    #[test]
    fn remove_client_then_retain_daemons_is_stable() {
        // A disconnect racing a configuration change must not double-prune
        // or resurrect: remove_client empties the client out, and a later
        // retain_daemons for the same daemon reports nothing new.
        let mut t = GroupTable::new();
        let a = client(0, "a");
        t.join("g1", a.clone());
        t.join("g2", a.clone());
        t.join("g2", client(1, "b"));
        let first = t.remove_client(&a);
        assert_eq!(first.len(), 2);
        let second = t.retain_daemons(&[ParticipantId::new(1)]);
        assert!(second.is_empty());
        assert_eq!(t.group_names(), vec!["g2".to_string()]);
    }

    #[test]
    fn retain_daemons_then_remove_client_reports_once() {
        let mut t = GroupTable::new();
        let a = client(0, "a");
        let b = client(1, "b");
        t.join("g", a.clone());
        t.join("g", b.clone());
        let pruned = t.retain_daemons(&[ParticipantId::new(1)]);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].members, vec![b]);
        // The departed client is fully gone; an explicit disconnect for it
        // afterwards has nothing left to report.
        assert!(t.remove_client(&a).is_empty());
    }

    #[test]
    fn members_sorted_deterministically() {
        let mut t = GroupTable::new();
        t.join("g", client(1, "z"));
        t.join("g", client(0, "a"));
        t.join("g", client(0, "b"));
        let members = t.members("g");
        assert_eq!(members[0], client(0, "a"));
        assert_eq!(members[1], client(0, "b"));
        assert_eq!(members[2], client(1, "z"));
    }
}
