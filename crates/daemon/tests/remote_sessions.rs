//! The remote session path end to end: real UDP ring, real session
//! socket, [`SessionClient`]s speaking the framed wire protocol to the
//! reactor frontend — joins, ordered delivery, credit-driven event flow,
//! reconnect-with-resume, and exactly-once resubmits.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use accelring_core::{ParticipantId, ProtocolConfig, Service};
use accelring_daemon::{ClientEvent, DaemonOptions, FrontendOptions, GroupDaemon, SessionClient};
use accelring_membership::MembershipConfig;
use accelring_transport::{AddressBook, BoundNode, NodeAddr};
use bytes::Bytes;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_membership_config() -> MembershipConfig {
    MembershipConfig {
        token_loss_timeout: 300_000_000,
        token_retransmit_timeout: 80_000_000,
        join_interval: 30_000_000,
        consensus_timeout: 250_000_000,
        commit_timeout: 250_000_000,
        recovery_timeout: 1_000_000_000,
        presence_interval: 100_000_000,
        gather_settle: 60_000_000,
    }
}

fn spawn_daemons(n: u16, options: DaemonOptions) -> Vec<GroupDaemon> {
    let bound: Vec<BoundNode> = (0..n)
        .map(|i| BoundNode::bind(ParticipantId::new(i), "127.0.0.1").expect("bind"))
        .collect();
    let addrs: Vec<NodeAddr> = bound.iter().map(|b| b.addr().expect("addr")).collect();
    let book = AddressBook::new(addrs);
    bound
        .into_iter()
        .map(|b| {
            let handle = b
                .start(
                    book.clone(),
                    ProtocolConfig::accelerated(20, 15),
                    test_membership_config(),
                )
                .expect("start node");
            GroupDaemon::start_with(handle, options)
        })
        .collect()
}

fn remote_options() -> DaemonOptions {
    DaemonOptions {
        frontend: FrontendOptions::enabled(),
        ..DaemonOptions::default()
    }
}

/// Waits until the client sees a view of `group` with exactly `n`
/// members, draining other events along the way.
fn await_view(client: &mut SessionClient, group: &str, n: usize, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok(Some(ClientEvent::View { group: g, members })) =
            client.recv_event(Duration::from_millis(50))
        {
            if g == group && members.len() == n {
                return true;
            }
        }
    }
    false
}

/// Collects message payloads until `deadline`, stopping early after
/// `want` payloads (0 = drain the whole window).
fn collect_payloads(client: &mut SessionClient, want: usize, deadline: Duration) -> Vec<Bytes> {
    let start = Instant::now();
    let mut got = Vec::new();
    while start.elapsed() < deadline && (want == 0 || got.len() < want) {
        if let Ok(Some(ClientEvent::Message { payload, .. })) =
            client.recv_event(Duration::from_millis(50))
        {
            got.push(payload);
        }
    }
    got
}

#[test]
fn remote_clients_multicast_and_receive_in_order() {
    let _serial = serial();
    let daemons = spawn_daemons(2, remote_options());
    let addr0 = daemons[0].session_addr().expect("session socket");
    let addr1 = daemons[1].session_addr().expect("session socket");

    let mut alice = SessionClient::connect(addr0, "alice").expect("connect alice");
    let mut bob = SessionClient::connect(addr1, "bob").expect("connect bob");
    alice.join("chat").expect("alice joins");
    bob.join("chat").expect("bob joins");
    assert!(
        await_view(&mut alice, "chat", 2, Duration::from_secs(15)),
        "alice must see the two-member view"
    );
    assert!(
        await_view(&mut bob, "chat", 2, Duration::from_secs(15)),
        "bob must see the two-member view"
    );

    for k in 0..10u32 {
        alice
            .multicast(&["chat"], Bytes::from(format!("m{k}")), Service::Agreed)
            .expect("submit");
    }
    let got = collect_payloads(&mut bob, 10, Duration::from_secs(15));
    let want: Vec<Bytes> = (0..10u32).map(|k| Bytes::from(format!("m{k}"))).collect();
    assert_eq!(got, want, "remote delivery must be complete and in order");

    let fs = daemons[0].frontend_stats();
    assert!(fs.sessions_peak >= 1, "frontend must have served alice");
    assert!(fs.submits >= 11, "joins and multicasts all ride SUBMIT");
    alice.bye();
    bob.bye();
}

#[test]
fn remote_reconnect_and_resubmit_is_exactly_once() {
    let _serial = serial();
    let daemons = spawn_daemons(2, remote_options());
    let addr0 = daemons[0].session_addr().expect("session socket");
    let addr1 = daemons[1].session_addr().expect("session socket");

    let mut sender = SessionClient::connect(addr0, "sender").expect("connect sender");
    let mut watcher = SessionClient::connect(addr1, "watcher").expect("connect watcher");
    sender.join("g").expect("join");
    watcher.join("g").expect("join");
    assert!(await_view(&mut watcher, "g", 2, Duration::from_secs(15)));

    let seq = sender
        .multicast_sequenced(&["g"], Bytes::from_static(b"in-doubt"), Service::Agreed)
        .expect("sequenced submit");
    let first = collect_payloads(&mut watcher, 1, Duration::from_secs(15));
    assert_eq!(first, vec![Bytes::from_static(b"in-doubt")]);

    // The client loses its daemon connection with the message's fate
    // unknown: reconnect to the *other* daemon resuming the session, and
    // resubmit. The ring-wide session dedup must suppress the copy.
    drop(sender);
    let mut resumed =
        SessionClient::connect_session(addr1, "sender", seq).expect("resume elsewhere");
    resumed
        .resubmit(
            seq,
            &["g"],
            Bytes::from_static(b"in-doubt"),
            Service::Agreed,
        )
        .expect("resubmit");
    resumed
        .multicast_sequenced(&["g"], Bytes::from_static(b"after-resume"), Service::Agreed)
        .expect("fresh submit");

    let after = collect_payloads(&mut watcher, 2, Duration::from_secs(10));
    assert_eq!(
        after,
        vec![Bytes::from_static(b"after-resume")],
        "resubmitted message must be suppressed, new message delivered"
    );
    resumed.bye();
    watcher.bye();
}

#[test]
fn supersede_moves_a_live_session_to_a_new_socket() {
    let _serial = serial();
    let daemons = spawn_daemons(1, remote_options());
    let addr = daemons[0].session_addr().expect("session socket");

    let mut old = SessionClient::connect(addr, "mover").expect("connect");
    old.join("room").expect("join");
    assert!(await_view(&mut old, "room", 1, Duration::from_secs(15)));

    // Reconnect under the same name without saying BYE: the frontend
    // supersedes the old incarnation in place and the engine-side client
    // (and its membership) must survive.
    let mut fresh =
        SessionClient::connect_session(addr, "mover", old.last_seq()).expect("supersede");
    fresh
        .multicast(&["room"], Bytes::from_static(b"still me"), Service::Agreed)
        .expect("submit on the new socket");
    let got = collect_payloads(&mut fresh, 1, Duration::from_secs(15));
    assert_eq!(
        got,
        vec![Bytes::from_static(b"still me")],
        "membership survives the supersede, so the self-delivery arrives"
    );
    assert!(
        daemons[0].frontend_stats().resumes >= 1,
        "the supersede must be counted as a resume"
    );
    fresh.bye();
}
