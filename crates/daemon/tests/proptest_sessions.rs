//! Property: reconnect storms through the reactor session frontend are
//! exactly-once. Seeded schedules drive S remote sessions through epochs
//! of connect / sequenced submits / duplicate resubmits / abrupt-or-
//! polite disconnects (abrupt reconnects exercise the supersede path);
//! an in-process watcher must observe every unique (session, seq) exactly
//! once, in strictly increasing per-session order.

use std::time::{Duration, Instant};

use accelring_core::{ParticipantId, ProtocolConfig, Service};
use accelring_daemon::{ClientEvent, DaemonOptions, FrontendOptions, GroupDaemon, SessionClient};
use accelring_membership::MembershipConfig;
use accelring_transport::{AddressBook, BoundNode, NodeAddr};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::HashMap;

fn test_membership_config() -> MembershipConfig {
    MembershipConfig {
        token_loss_timeout: 300_000_000,
        token_retransmit_timeout: 80_000_000,
        join_interval: 30_000_000,
        consensus_timeout: 250_000_000,
        commit_timeout: 250_000_000,
        recovery_timeout: 1_000_000_000,
        presence_interval: 100_000_000,
        gather_settle: 60_000_000,
    }
}

fn spawn_daemon() -> GroupDaemon {
    let bound = BoundNode::bind(ParticipantId::new(0), "127.0.0.1").expect("bind");
    let addrs: Vec<NodeAddr> = vec![bound.addr().expect("addr")];
    let book = AddressBook::new(addrs);
    let handle = bound
        .start(
            book,
            ProtocolConfig::accelerated(20, 15),
            test_membership_config(),
        )
        .expect("start node");
    GroupDaemon::start_with(
        handle,
        DaemonOptions {
            frontend: FrontendOptions::enabled(),
            ..DaemonOptions::default()
        },
    )
}

/// Tiny deterministic generator so one u64 seed fixes the whole storm.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn run_storm(seed: u64, sessions: usize, epochs: usize) -> Result<(), String> {
    let daemon = spawn_daemon();
    let addr = daemon.session_addr().expect("session socket");
    let watcher = daemon.connect("watcher").map_err(|e| e.to_string())?;
    watcher.join("storm").map_err(|e| e.to_string())?;
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match watcher.events().recv_timeout(Duration::from_millis(50)) {
            Ok(ClientEvent::View { group, members }) if group == "storm" && members.len() == 1 => {
                break;
            }
            _ if Instant::now() > deadline => return Err("no initial view".to_string()),
            _ => {}
        }
    }

    let mut rng = Lcg(seed | 1);
    // Highest sequence each session has ever submitted (the resume
    // watermark carried across its reconnects).
    let mut high: Vec<u64> = vec![0; sessions];
    let mut expected: u64 = 0;
    for epoch in 0..epochs {
        let mut clients: Vec<Option<SessionClient>> = Vec::new();
        for (s, high) in high.iter_mut().enumerate() {
            let name = format!("s{s}");
            let mut c = SessionClient::connect_session(addr, &name, *high)
                .map_err(|e| format!("connect {name} epoch {epoch}: {e}"))?;
            let burst = 1 + rng.pick(3);
            let mut sent = Vec::new();
            for _ in 0..burst {
                let seq = c
                    .multicast_sequenced(
                        &["storm"],
                        Bytes::from(format!("{name}:{}", *high + sent.len() as u64 + 1)),
                        Service::Agreed,
                    )
                    .map_err(|e| e.to_string())?;
                sent.push(seq);
                expected += 1;
            }
            // Duplicate injection: re-send a prefix of this epoch's
            // burst under the same sequence numbers, and sometimes an
            // old epoch's sequence too — all must be suppressed.
            let dups = rng.pick(sent.len() as u64 + 1);
            for &seq in sent.iter().take(dups as usize) {
                c.resubmit(
                    seq,
                    &["storm"],
                    Bytes::from(format!("{name}:{seq}")),
                    Service::Agreed,
                )
                .map_err(|e| e.to_string())?;
            }
            if *high > 0 && rng.pick(2) == 0 {
                let old = 1 + rng.pick(*high);
                c.resubmit(
                    old,
                    &["storm"],
                    Bytes::from(format!("{name}:{old}")),
                    Service::Agreed,
                )
                .map_err(|e| e.to_string())?;
            }
            *high = *sent.last().expect("burst >= 1");
            clients.push(Some(c));
        }
        // Polite BYE or abrupt drop, chosen per session; an abrupt drop
        // leaves the session live so the next epoch's connect supersedes.
        for slot in &mut clients {
            if rng.pick(2) == 0 {
                if let Some(c) = slot.take() {
                    c.bye();
                }
            } else {
                *slot = None;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Exactly-once: every submitted (session, seq) observed once, in
    // strictly increasing per-session order.
    let mut seen: HashMap<String, Vec<u64>> = HashMap::new();
    let mut got: u64 = 0;
    let deadline = Instant::now() + Duration::from_secs(20);
    while got < expected && Instant::now() < deadline {
        if let Ok(ClientEvent::Message { payload, .. }) =
            watcher.events().recv_timeout(Duration::from_millis(100))
        {
            let text = String::from_utf8(payload.to_vec()).map_err(|e| e.to_string())?;
            let (name, seq) = text.split_once(':').ok_or("bad payload")?;
            let seq: u64 = seq.parse().map_err(|_| "bad seq")?;
            seen.entry(name.to_string()).or_default().push(seq);
            got += 1;
        }
    }
    // Catch stragglers (late duplicates would fail the checks below).
    while let Ok(ClientEvent::Message { payload, .. }) =
        watcher.events().recv_timeout(Duration::from_millis(300))
    {
        let text = String::from_utf8(payload.to_vec()).map_err(|e| e.to_string())?;
        let (name, seq) = text.split_once(':').ok_or("bad payload")?;
        seen.entry(name.to_string())
            .or_default()
            .push(seq.parse().map_err(|_| "bad seq")?);
        got += 1;
    }
    if got != expected {
        return Err(format!(
            "expected {expected} deliveries, saw {got}: {seen:?}"
        ));
    }
    for (s, name) in (0..sessions).map(|s| (s, format!("s{s}"))) {
        let seqs = seen.get(&name).cloned().unwrap_or_default();
        let want: Vec<u64> = (1..=high[s]).collect();
        if seqs != want {
            return Err(format!(
                "session {name}: delivered seqs {seqs:?}, want exactly-once monotone {want:?}"
            ));
        }
    }
    Ok(())
}

proptest! {
    // Each case spins a real single-daemon ring and a full storm; keep
    // the count small enough for CI while the seeds still roam.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn reconnect_storms_are_exactly_once(seed in any::<u64>()) {
        let sessions = 3 + (seed % 3) as usize;
        if let Err(e) = run_storm(seed, sessions, 3) {
            return Err(TestCaseError::fail(e));
        }
    }
}
