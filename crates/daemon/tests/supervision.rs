//! Client session supervision over a real UDP ring: daemon death surfaces
//! as a terminal event, reconnect + resubmit is exactly-once, slow clients
//! shed instead of wedging the daemon, and graceful shutdown drains.
//!
//! The tests serialize themselves through a file-local mutex: real
//! sockets, real timers, and concurrent rings skew each other's clocks.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use accelring_core::{ParticipantId, ProtocolConfig, Service};
use accelring_daemon::{ClientEvent, DaemonOptions, EngineOptions, GroupClient, GroupDaemon};
use accelring_membership::MembershipConfig;
use accelring_transport::{AddressBook, BoundNode, KillSwitch, NodeAddr};
use bytes::Bytes;

/// Serializes the tests in this file even under the default parallel test
/// runner: each spins a real ring against real timers, and concurrent
/// rings starve each other of CPU on small machines.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_membership_config() -> MembershipConfig {
    MembershipConfig {
        token_loss_timeout: 300_000_000,      // 300 ms
        token_retransmit_timeout: 80_000_000, // 80 ms
        join_interval: 30_000_000,            // 30 ms
        consensus_timeout: 250_000_000,       // 250 ms
        commit_timeout: 250_000_000,          // 250 ms
        recovery_timeout: 1_000_000_000,      // 1 s
        presence_interval: 100_000_000,       // 100 ms
        gather_settle: 60_000_000,            // 60 ms
    }
}

/// Spawns `n` group daemons on a localhost ring, returning each node's
/// kill switch alongside its daemon (the node handle itself is owned by
/// the daemon's pump thread).
fn spawn_daemons(n: u16, options: DaemonOptions) -> (Vec<KillSwitch>, Vec<GroupDaemon>) {
    let bound: Vec<BoundNode> = (0..n)
        .map(|i| BoundNode::bind(ParticipantId::new(i), "127.0.0.1").expect("bind"))
        .collect();
    let addrs: Vec<NodeAddr> = bound.iter().map(|b| b.addr().expect("addr")).collect();
    let book = AddressBook::new(addrs);
    let mut kills = Vec::new();
    let daemons = bound
        .into_iter()
        .map(|b| {
            let handle = b
                .start(
                    book.clone(),
                    ProtocolConfig::accelerated(20, 15),
                    test_membership_config(),
                )
                .expect("start node");
            kills.push(handle.killswitch());
            GroupDaemon::start_with(handle, options)
        })
        .collect();
    (kills, daemons)
}

/// Waits until the client sees a view of `group` with exactly `n` members.
fn await_view(client: &GroupClient, group: &str, n: usize, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok(ClientEvent::View { group: g, members }) =
            client.events().recv_timeout(Duration::from_millis(50))
        {
            if g == group && members.len() == n {
                return true;
            }
        }
    }
    false
}

/// Drains the client's queue collecting message payloads until `deadline`,
/// stopping early after `want` payloads (0 = drain the whole window).
fn collect_payloads(client: &GroupClient, want: usize, deadline: Duration) -> Vec<Bytes> {
    let start = Instant::now();
    let mut got = Vec::new();
    while start.elapsed() < deadline && (want == 0 || got.len() < want) {
        if let Ok(ClientEvent::Message { payload, .. }) =
            client.events().recv_timeout(Duration::from_millis(50))
        {
            got.push(payload);
        }
    }
    got
}

#[test]
fn killed_daemon_disconnects_clients_and_survivors_prune() {
    let _serial = serial();
    let (kills, daemons) = spawn_daemons(3, DaemonOptions::default());

    let a = daemons[0].connect("a").expect("connect a");
    let b = daemons[1].connect("b").expect("connect b");
    a.join("g").expect("a joins");
    b.join("g").expect("b joins");
    assert!(
        await_view(&a, "g", 2, Duration::from_secs(15)),
        "group forms with both members"
    );
    assert!(await_view(&b, "g", 2, Duration::from_secs(15)));

    // Traffic in flight while the daemon dies.
    b.multicast(&["g"], Bytes::from_static(b"mid-traffic"), Service::Agreed)
        .expect("submit");
    kills[0].kill();

    // The dead daemon's client learns it is orphaned well within the
    // token-loss timeout: supervision reacts to the thread dying, not to
    // the ring noticing the silence.
    let t0 = Instant::now();
    let mut disconnected = None;
    while t0.elapsed() < Duration::from_secs(5) && disconnected.is_none() {
        match a.events().recv_timeout(Duration::from_millis(50)) {
            Ok(ClientEvent::Disconnected { reason }) => disconnected = Some(reason),
            Ok(_) => {}
            Err(_) => {}
        }
    }
    assert!(
        disconnected.is_some(),
        "client of the killed daemon must receive a terminal Disconnected"
    );

    // Survivors reform and prune the dead daemon's client from the view.
    assert!(
        await_view(&b, "g", 1, Duration::from_secs(15)),
        "survivor's view must shrink to the remaining member"
    );
}

#[test]
fn reconnect_and_resubmit_is_exactly_once() {
    let _serial = serial();
    let (kills, daemons) = spawn_daemons(3, DaemonOptions::default());

    let s = daemons[0].connect("s").expect("connect s");
    let r = daemons[1].connect("r").expect("connect r");
    s.join("g").expect("s joins");
    r.join("g").expect("r joins");
    assert!(await_view(&r, "g", 2, Duration::from_secs(15)));

    // A sequenced send that the sender cannot confirm: the daemon dies
    // right after submitting.
    let seq = s
        .multicast_sequenced(&["g"], Bytes::from_static(b"exactly-once"), Service::Agreed)
        .expect("sequenced send");
    assert_eq!(seq, 1);
    let first = collect_payloads(&r, 1, Duration::from_secs(15));
    assert_eq!(first, vec![Bytes::from_static(b"exactly-once")]);

    kills[0].kill();
    let start = Instant::now();
    let mut orphaned = false;
    while start.elapsed() < Duration::from_secs(5) && !orphaned {
        orphaned = matches!(
            s.events().recv_timeout(Duration::from_millis(50)),
            Ok(ClientEvent::Disconnected { .. })
        );
    }
    assert!(orphaned, "sender must learn its daemon died");
    // Survivors prune the old session before the name is reused ring-wide.
    assert!(
        await_view(&r, "g", 1, Duration::from_secs(15)),
        "survivors prune the dead daemon's client"
    );

    // Reconnect at a surviving daemon, resuming the session watermark, and
    // resubmit the in-doubt message: its fate was actually "delivered", so
    // every engine must drop the copy.
    let s2 = daemons[2]
        .connect_session("s", seq)
        .expect("reconnect at survivor");
    s2.join("g").expect("rejoin");
    assert!(await_view(&r, "g", 2, Duration::from_secs(15)));
    s2.resubmit(
        seq,
        &["g"],
        Bytes::from_static(b"exactly-once"),
        Service::Agreed,
    )
    .expect("resubmit");
    let next = s2
        .multicast_sequenced(&["g"], Bytes::from_static(b"after-resume"), Service::Agreed)
        .expect("new send");
    assert_eq!(next, 2, "session resumes past the watermark");

    // The subscriber sees the new message but never a duplicate of the
    // resubmitted one.
    let after = collect_payloads(&r, 1, Duration::from_secs(15));
    assert_eq!(
        after,
        vec![Bytes::from_static(b"after-resume")],
        "resubmitted message must be suppressed, new message delivered"
    );
    let dupes: u64 = daemons.iter().map(|d| d.stats().duplicates_dropped).sum();
    assert!(
        dupes >= 1,
        "at least one engine must report the suppressed duplicate"
    );
}

#[test]
fn slow_client_sheds_events_instead_of_wedging() {
    let _serial = serial();
    let options = DaemonOptions {
        engine: EngineOptions::default(),
        client_queue: Some(4),
        ..DaemonOptions::default()
    };
    let (_kills, daemons) = spawn_daemons(1, options);

    let slow = daemons[0].connect("slow").expect("connect slow");
    let fast = daemons[0].connect("fast").expect("connect fast");
    slow.join("g").expect("slow joins");
    fast.join("g").expect("fast joins");
    assert!(await_view(&fast, "g", 2, Duration::from_secs(15)));

    // `slow` never drains its queue; `fast` floods the group. Both queues
    // hold only 4 events, so the burst must overflow them — the daemon
    // sheds and counts rather than buffering without bound or wedging.
    for k in 0..64 {
        fast.multicast(&["g"], Bytes::from(format!("m{k}")), Service::Agreed)
            .expect("submit");
    }
    let start = Instant::now();
    while daemons[0].stats().events_shed == 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        daemons[0].stats().events_shed > 0,
        "overflowing a bounded client queue must be counted as shed"
    );

    // The daemon is not wedged: a drained client still sees fresh traffic.
    let _ = collect_payloads(&fast, 0, Duration::from_millis(500));
    fast.multicast(&["g"], Bytes::from_static(b"still alive"), Service::Agreed)
        .expect("submit after shed");
    let start = Instant::now();
    let mut seen = false;
    while start.elapsed() < Duration::from_secs(10) && !seen {
        seen = collect_payloads(&fast, 1, Duration::from_millis(200))
            .iter()
            .any(|p| &p[..] == b"still alive");
    }
    assert!(seen, "daemon keeps serving after shedding");
}

#[test]
fn graceful_shutdown_drains_deliveries_before_disconnecting() {
    let _serial = serial();
    let (_kills, mut daemons) = spawn_daemons(2, DaemonOptions::default());

    let a = daemons[0].connect("a").expect("connect a");
    let b = daemons[1].connect("b").expect("connect b");
    a.join("g").expect("a joins");
    b.join("g").expect("b joins");
    assert!(await_view(&a, "g", 2, Duration::from_secs(15)));
    assert!(await_view(&b, "g", 2, Duration::from_secs(15)));

    // Submit, then immediately shut down gracefully: the drain must let
    // the message complete its trip around the ring and reach the local
    // client before the terminal event.
    a.multicast(
        &["g"],
        Bytes::from_static(b"parting words"),
        Service::Agreed,
    )
    .expect("submit");
    let d0 = daemons.remove(0);
    d0.shutdown_graceful(Duration::from_secs(5));

    // After shutdown_graceful returns, a's queue holds the self-delivery
    // and then Disconnected, in that order.
    let mut saw_delivery = false;
    let mut saw_disconnect = false;
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(5) && !saw_disconnect {
        match a.events().recv_timeout(Duration::from_millis(50)) {
            Ok(ClientEvent::Message { payload, .. }) => {
                assert!(!saw_disconnect);
                saw_delivery = saw_delivery || &payload[..] == b"parting words";
            }
            Ok(ClientEvent::Disconnected { .. }) => saw_disconnect = true,
            Ok(_) => {}
            Err(_) => {}
        }
    }
    assert!(saw_delivery, "drain must flush the pending delivery");
    assert!(saw_disconnect, "terminal event must follow the drain");

    // The peer also got the message, and its view prunes the departed
    // client (disconnects travel the ordered stream during shutdown).
    let got = collect_payloads(&b, 1, Duration::from_secs(15));
    assert_eq!(got, vec![Bytes::from_static(b"parting words")]);
    assert!(
        await_view(&b, "g", 1, Duration::from_secs(15)),
        "survivor's view prunes the departed daemon's client"
    );
}
