//! # accelring-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the evaluation section of "Fast Total Ordering for Modern Data Centers"
//! on the deterministic simulator, plus ablation studies of the design
//! choices called out in DESIGN.md.
//!
//! One binary per figure (`fig02` … `fig13`, `max_throughput`,
//! `multiring_scaling`, and the `ablate_*` studies) prints the figure's
//! series as an aligned table; `all_figures` runs everything and emits
//! the markdown embedded in EXPERIMENTS.md. The chaos soaks
//! (`chaos_soak`, `multiring_soak`) sweep seeded fault schedules and
//! exit non-zero on any invariant violation.
//!
//! Set `ACCELRING_BENCH_QUALITY=full` for publication-length measurement
//! windows (the default `quick` keeps every binary under a minute).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use accelring_core::{PriorityMethod, ProtocolConfig, RtrPolicy, Service, Variant};
use accelring_multiring::{run_scaling, ScalingSpec};
use accelring_sim::{
    Curve, CurvePoint, ExperimentSpec, ImplProfile, LossSpec, NetworkProfile, SimDuration, Workload,
};

/// How long to measure: `quick` for interactive runs, `full` for the
/// numbers recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Short windows, coarse rate grids.
    Quick,
    /// Long windows, the paper's rate grids.
    Full,
}

impl Quality {
    /// Reads `ACCELRING_BENCH_QUALITY` (`quick`/`full`), defaulting to
    /// quick.
    pub fn from_env() -> Quality {
        match std::env::var("ACCELRING_BENCH_QUALITY").as_deref() {
            Ok("full") => Quality::Full,
            _ => Quality::Quick,
        }
    }

    fn warmup(self) -> SimDuration {
        match self {
            Quality::Quick => SimDuration::from_millis(20),
            Quality::Full => SimDuration::from_millis(50),
        }
    }

    fn measure(self) -> SimDuration {
        match self {
            Quality::Quick => SimDuration::from_millis(60),
            Quality::Full => SimDuration::from_millis(200),
        }
    }

    fn grid(self, full: &[u64], quick: &[u64]) -> Vec<u64> {
        match self {
            Quality::Quick => quick.to_vec(),
            Quality::Full => full.to_vec(),
        }
    }
}

/// The paper's two protocol configurations, at the windows the evaluation
/// used ("personal windows of a few tens ... accelerated windows of half to
/// all of the personal window").
pub fn protocols() -> [(&'static str, ProtocolConfig); 2] {
    [
        ("original", ProtocolConfig::original(20)),
        ("accelerated", ProtocolConfig::accelerated(20, 15)),
    ]
}

fn base_spec(q: Quality, network: NetworkProfile, profile: ImplProfile) -> ExperimentSpec {
    let mut spec = ExperimentSpec::baseline();
    spec.network = network;
    spec.impl_profile = profile;
    spec.warmup = q.warmup();
    spec.measure = q.measure();
    spec
}

/// Latency-vs-throughput sweep for one figure: both protocols across all
/// three implementation profiles.
fn latency_profile_figure(
    q: Quality,
    network: NetworkProfile,
    service: Service,
    rates: &[u64],
) -> Vec<Curve> {
    let mut curves = Vec::new();
    for profile in ImplProfile::all() {
        for (label, cfg) in protocols() {
            let mut spec = base_spec(q, network, profile);
            spec.service = service;
            spec.protocol = cfg;
            curves.push(Curve::sweep_rates(
                &format!("{} {}", profile.name, label),
                &spec,
                rates,
            ));
        }
    }
    curves
}

/// Figure 2: Agreed delivery latency vs throughput on the 1 Gb network.
pub fn figure_02(q: Quality) -> Vec<Curve> {
    let rates = q.grid(
        &[100, 200, 300, 400, 500, 600, 700, 800, 900],
        &[100, 300, 500, 700, 900],
    );
    latency_profile_figure(q, NetworkProfile::gigabit(), Service::Agreed, &rates)
}

/// Figure 3: Safe delivery latency vs throughput on the 1 Gb network.
pub fn figure_03(q: Quality) -> Vec<Curve> {
    let rates = q.grid(
        &[100, 200, 300, 400, 500, 600, 700, 800, 900],
        &[100, 300, 500, 700, 900],
    );
    latency_profile_figure(q, NetworkProfile::gigabit(), Service::Safe, &rates)
}

/// Figure 4: Agreed delivery latency vs throughput on the 10 Gb network.
pub fn figure_04(q: Quality) -> Vec<Curve> {
    let rates = q.grid(
        &[250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500],
        &[500, 1500, 2500, 3500],
    );
    latency_profile_figure(q, NetworkProfile::ten_gigabit(), Service::Agreed, &rates)
}

/// Figure 6: Safe delivery latency vs throughput on the 10 Gb network.
pub fn figure_06(q: Quality) -> Vec<Curve> {
    let rates = q.grid(
        &[250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500],
        &[500, 1500, 2500, 3500],
    );
    latency_profile_figure(q, NetworkProfile::ten_gigabit(), Service::Safe, &rates)
}

/// Figures 5 and 7: the accelerated protocol with 1350-byte vs 8850-byte
/// payloads on the 10 Gb network (`service` selects Agreed = Fig. 5 or
/// Safe = Fig. 7).
pub fn figure_payload_sizes(q: Quality, service: Service) -> Vec<Curve> {
    let mut curves = Vec::new();
    for profile in ImplProfile::all() {
        for (payload, rates_full, rates_quick) in [
            (
                1350usize,
                &[500u64, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500][..],
                &[1000u64, 2500, 4000][..],
            ),
            (
                8850,
                &[1000, 2000, 3000, 4000, 5000, 6000, 7000][..],
                &[2000, 4000, 6000][..],
            ),
        ] {
            let mut spec = base_spec(q, NetworkProfile::ten_gigabit(), profile);
            spec.service = service;
            spec.protocol = ProtocolConfig::accelerated(20, 15);
            spec.payload_len = payload;
            let rates = q.grid(rates_full, rates_quick);
            curves.push(Curve::sweep_rates(
                &format!("{} {}B", profile.name, payload),
                &spec,
                &rates,
            ));
        }
    }
    curves
}

/// Figure 8: Safe delivery latency at *low* throughputs on the 10 Gb
/// network — the one regime where the original protocol wins (the aru
/// needs up to an extra round under acceleration, and at low utilization
/// rounds are already fast).
pub fn figure_08(q: Quality) -> Vec<Curve> {
    let rates = q.grid(
        &[100, 200, 300, 400, 500, 600, 800, 1000],
        &[100, 300, 500, 1000],
    );
    let mut curves = Vec::new();
    for (label, cfg) in protocols() {
        let mut spec = base_spec(q, NetworkProfile::ten_gigabit(), ImplProfile::spread());
        spec.service = Service::Safe;
        spec.protocol = cfg;
        curves.push(Curve::sweep_rates(
            &format!("spread {label}"),
            &spec,
            &rates,
        ));
    }
    curves
}

/// The loss experiments of Figures 9-12: latency (mean and worst-5 %) as a
/// function of the per-daemon loss rate, at a fixed goodput, for Agreed and
/// Safe delivery under both protocols. The x axis is the loss percentage.
pub fn figure_loss(q: Quality, network: NetworkProfile, goodput_mbps: u64) -> Vec<Curve> {
    let losses = q.grid(&[0, 1, 5, 10, 15, 20, 25], &[0, 5, 15, 25]);
    let mut curves = Vec::new();
    for service in [Service::Agreed, Service::Safe] {
        for (label, cfg) in protocols() {
            let mut points = Vec::new();
            for &pct in &losses {
                let mut spec = base_spec(q, network, ImplProfile::daemon());
                spec.service = service;
                spec.protocol = cfg;
                spec.loss = LossSpec::bernoulli(pct as f64 / 100.0);
                let spec = spec.at_rate_mbps(goodput_mbps);
                points.push(CurvePoint {
                    x: pct as f64,
                    result: spec.run(),
                });
            }
            curves.push(Curve {
                label: format!("{service} {label}"),
                points,
            });
        }
    }
    curves
}

/// Figure 13: the effect of the ring distance between a daemon losing
/// messages and the daemon it loses from. Each daemon drops 20 % of the
/// messages sent by the daemon `distance` positions before it.
pub fn figure_13(q: Quality) -> Vec<Curve> {
    let mut curves = Vec::new();
    for (label, cfg) in protocols() {
        let mut points = Vec::new();
        for distance in 1..=7usize {
            let mut spec = base_spec(q, NetworkProfile::ten_gigabit(), ImplProfile::daemon());
            spec.protocol = cfg;
            spec.loss = LossSpec::FromDistance {
                distance,
                rate: 0.2,
            };
            let spec = spec.at_rate_mbps(480);
            points.push(CurvePoint {
                x: distance as f64,
                result: spec.run(),
            });
        }
        curves.push(Curve {
            label: label.to_string(),
            points,
        });
    }
    curves
}

/// One maximum-throughput measurement.
#[derive(Debug, Clone)]
pub struct MaxThroughputRow {
    /// Network name.
    pub network: &'static str,
    /// Implementation profile name.
    pub profile: &'static str,
    /// Protocol label.
    pub protocol: &'static str,
    /// Payload size in bytes.
    pub payload: usize,
    /// Measured maximum goodput in Mbps.
    pub goodput_mbps: f64,
}

/// The headline maximum-throughput numbers of Section IV (saturating
/// workload, both networks, all profiles, both protocols, both payload
/// sizes on 10 Gb).
pub fn max_throughput_table(q: Quality) -> Vec<MaxThroughputRow> {
    let mut rows = Vec::new();
    let networks = [
        ("1Gb", NetworkProfile::gigabit()),
        ("10Gb", NetworkProfile::ten_gigabit()),
    ];
    for (net_name, network) in networks {
        for profile in ImplProfile::all() {
            for (proto_name, cfg) in [
                ("original", ProtocolConfig::original(30)),
                ("accelerated", ProtocolConfig::accelerated(30, 30)),
            ] {
                for payload in [1350usize, 8850] {
                    if payload == 8850 && net_name == "1Gb" {
                        continue; // the paper only reports 8850B on 10Gb
                    }
                    let mut spec = base_spec(q, network, profile);
                    spec.protocol = cfg;
                    spec.payload_len = payload;
                    spec.workload = Workload::Saturating;
                    let result = spec.run();
                    rows.push(MaxThroughputRow {
                        network: net_name,
                        profile: profile.name,
                        protocol: proto_name,
                        payload,
                        goodput_mbps: result.goodput_mbps(),
                    });
                }
            }
        }
    }
    rows
}

/// Formats the max-throughput table.
pub fn format_max_throughput(rows: &[MaxThroughputRow]) -> String {
    let mut out = String::from(
        "# Maximum throughput (saturating senders)\n\
         network profile      protocol     payload   goodput\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>7} {:>12} {:>12} {:>7}B {:>8.2} Gbps\n",
            r.network,
            r.profile,
            r.protocol,
            r.payload,
            r.goodput_mbps / 1000.0
        ));
    }
    out
}

/// Ablation: sweep the accelerated window from 0 (original behaviour) to
/// the full personal window, at a fixed 1 Gb rate.
pub fn ablate_accelerated_window(q: Quality) -> Vec<Curve> {
    let windows = [0u32, 5, 10, 15, 20];
    let mut points = Vec::new();
    for &w in &windows {
        let mut spec = base_spec(q, NetworkProfile::gigabit(), ImplProfile::daemon());
        spec.protocol = ProtocolConfig::builder()
            .variant(Variant::Accelerated)
            .personal_window(20)
            .accelerated_window(w)
            .global_window(160)
            .priority(PriorityMethod::Aggressive)
            .build()
            .expect("valid windows");
        let spec = spec.at_rate_mbps(700);
        points.push(CurvePoint {
            x: f64::from(w),
            result: spec.run(),
        });
    }
    vec![Curve {
        label: "accel window @700Mbps 1Gb".into(),
        points,
    }]
}

/// Ablation: the token-priority policies of Section III-D on the
/// CPU-bound 10 Gb network, where the data socket actually backlogs.
/// Method 1 (aggressive) and method 2 (conservative) coincide under
/// well-tuned flow control — which is exactly why the paper picked the
/// conservative one for Spread (robustness, not speed) — while never
/// prioritizing the token (the original protocol's policy) collapses
/// once data processing saturates the core.
pub fn ablate_priority_method(q: Quality) -> Vec<Curve> {
    let rates = q.grid(&[1000, 1500, 2000, 2200], &[1500, 2200]);
    let mut curves = Vec::new();
    for (label, method) in [
        ("method-1 aggressive", PriorityMethod::Aggressive),
        ("method-2 conservative", PriorityMethod::Conservative),
        ("never (original rule)", PriorityMethod::Original),
    ] {
        let mut spec = base_spec(q, NetworkProfile::ten_gigabit(), ImplProfile::spread());
        spec.protocol = ProtocolConfig::builder()
            .personal_window(20)
            .accelerated_window(4)
            .global_window(160)
            .priority(method)
            .build()
            .expect("valid config");
        curves.push(Curve::sweep_rates(label, &spec, &rates));
    }
    curves
}

/// Ablation: the accelerated protocol's one-round retransmission-request
/// delay vs requesting immediately, under loss. Requesting immediately
/// asks for messages that are merely still in flight, multiplying
/// retransmissions.
pub fn ablate_rtr_delay(q: Quality) -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for (label, policy) in [
        ("delayed (paper)", RtrPolicy::VariantDefault),
        ("immediate", RtrPolicy::Immediate),
    ] {
        for loss_pct in [0u64, 5, 15] {
            let mut spec = base_spec(q, NetworkProfile::gigabit(), ImplProfile::daemon());
            spec.protocol = ProtocolConfig::builder()
                .personal_window(20)
                .accelerated_window(15)
                .global_window(160)
                .rtr_policy(policy)
                .build()
                .expect("valid config");
            spec.loss = LossSpec::bernoulli(loss_pct as f64 / 100.0);
            let result = spec.at_rate_mbps(350).run();
            rows.push((
                format!("{label} loss={loss_pct}%"),
                result.retransmission_rate,
                result.latency.mean.as_micros_f64(),
            ));
        }
    }
    rows
}

/// Ablation: switch egress buffer depth under saturating senders. The
/// accelerated protocol depends on switch buffering to absorb overlapping
/// senders; too-shallow buffers drop frames, forcing retransmissions and
/// costing goodput. (Notably, the protocol's window flow control keeps
/// the required depth to a few windows' worth of frames.)
pub fn ablate_switch_buffer(q: Quality) -> Vec<(u64, f64, f64, u64)> {
    let mut rows = Vec::new();
    for buffer_kib in [2u64, 4, 8, 16, 64, 768] {
        let mut network = NetworkProfile::gigabit();
        network.switch_buffer_bytes = buffer_kib * 1024;
        let mut spec = base_spec(q, network, ImplProfile::daemon());
        spec.protocol = ProtocolConfig::accelerated(30, 30);
        spec.workload = Workload::Saturating;
        let result = spec.run();
        rows.push((
            buffer_kib,
            result.goodput_mbps(),
            result.latency.mean.as_micros_f64(),
            result.switch_drops,
        ));
    }
    rows
}

/// One multi-ring scaling measurement: aggregate ordered throughput at
/// R rings on one network, with the deterministic merge replayed over
/// every ring's delivery stream.
#[derive(Debug, Clone)]
pub struct MultiRingScalingRow {
    /// Network name.
    pub network: &'static str,
    /// Number of independent rings.
    pub rings: u16,
    /// Sum of the rings' ordered goodput in Mbps.
    pub aggregate_mbps: f64,
    /// Aggregate relative to the single-ring baseline on this network.
    pub speedup: f64,
    /// Goodput of the merged observer's released stream in Mbps.
    pub merged_mbps: f64,
    /// Mean extra latency the merge gate adds, microseconds.
    pub mean_merge_lag_us: f64,
    /// Worst merge-gate latency observed, microseconds.
    pub max_merge_lag_us: f64,
}

/// Multi-ring scaling: aggregate ordered throughput at R = 1, 2, 4
/// rings of 8 daemons each, saturating 1350-byte senders, on both
/// network profiles. Each point also replays the merged observer and
/// reports the merge gate's cost (Multi-Ring Paxos' deterministic
/// merge layered over Accelerated Ring shards).
pub fn multiring_scaling_table(q: Quality) -> Vec<MultiRingScalingRow> {
    let mut rows = Vec::new();
    for (net_name, network) in [
        ("1Gb", NetworkProfile::gigabit()),
        ("10Gb", NetworkProfile::ten_gigabit()),
    ] {
        let mut baseline = None;
        for rings in [1u16, 2, 4] {
            let mut spec = ScalingSpec::baseline(rings, network);
            spec.warmup = q.warmup();
            spec.measure = q.measure();
            let point = run_scaling(&spec);
            let aggregate = point.aggregate_goodput_mbps();
            let base = *baseline.get_or_insert(aggregate);
            rows.push(MultiRingScalingRow {
                network: net_name,
                rings,
                aggregate_mbps: aggregate,
                speedup: aggregate / base,
                merged_mbps: point.merged_goodput_mbps(),
                mean_merge_lag_us: point.mean_merge_lag_us,
                max_merge_lag_us: point.max_merge_lag_us,
            });
        }
    }
    rows
}

/// Formats the multi-ring scaling table.
pub fn format_multiring_scaling(rows: &[MultiRingScalingRow]) -> String {
    let mut out = String::from(
        "# Multi-ring scaling (aggregate ordered throughput, saturating senders)\n\
         network  rings  aggregate Mbps   speedup  merged Mbps  merge lag mean/max us\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>7} {:>6} {:>15.1} {:>8.2}x {:>12.1} {:>12.1} / {:<10.1}\n",
            r.network,
            r.rings,
            r.aggregate_mbps,
            r.speedup,
            r.merged_mbps,
            r.mean_merge_lag_us,
            r.max_merge_lag_us
        ));
    }
    out
}

/// The per-seed outcome of one KV divergence/dedup chaos case (see
/// [`kv_divergence_case`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvDivergenceReport {
    /// `kv-divergence` beacon disagreements at equal positions.
    pub divergence: usize,
    /// Ops lost, doubled, or left pending by some interleaving.
    pub dedup: usize,
}

impl KvDivergenceReport {
    /// Whether the seed passed cleanly.
    pub fn ok(&self) -> bool {
        self.divergence == 0 && self.dedup == 0
    }
}

/// One seeded KV state-machine chaos case: a mixed workload (including
/// cross-ring transactions) is split into per-ring fragment streams, a
/// random legal merge interleaving is fed to a straight-through replica
/// and to a replica recovering through a snapshot cut with overlapping
/// replay, and their per-position state-hash beacons run through the
/// chaos crate's `kv-divergence` checker; a second interleaving of the
/// same workload checks exactly-once commit (nothing lost, nothing
/// doubled, nothing left pending). Used by the `kv` bench's seed sweep
/// and `multiring_soak`.
pub fn kv_divergence_case(seed: u64) -> KvDivergenceReport {
    use accelring_chaos::check_state_beacons;
    use accelring_kv::workload::{gen_workload, interleave};
    use accelring_kv::KvMachine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    const PARTS: u16 = 4;
    const RINGS: u16 = 2;
    let (streams, ids) = gen_workload(seed, PARTS, RINGS, 60);
    let merged = interleave(&streams, seed ^ 0xbeac0);
    let mut report = KvDivergenceReport::default();

    // Straight-through replica, beacon at every position.
    let mut straight = KvMachine::new(PARTS);
    let mut straight_beacons = Vec::with_capacity(merged.len());
    let mut commits: Vec<(String, u64)> = Vec::new();
    for f in &merged {
        if let Some(a) = straight.ingest(&f.client, f.seq, &f.groups, &f.payload) {
            commits.push((a.client, a.seq));
        }
        straight_beacons.push((straight.position(), straight.state_hash()));
    }

    // Recovering replica: snapshot cut at a seeded position, replay
    // with seeded overlap — its beacons must agree wherever positions
    // align.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let cut = rng.random_range(0..=merged.len());
    let overlap = rng.random_range(0..=cut.min(7));
    let mut source = KvMachine::new(PARTS);
    for f in &merged[..cut] {
        let _ = source.ingest(&f.client, f.seq, &f.groups, &f.payload);
    }
    let mut recovered = match KvMachine::from_snapshot(&source.snapshot()) {
        Some(m) => m,
        None => {
            report.divergence += 1;
            return report;
        }
    };
    let mut recovered_beacons = Vec::new();
    for f in &merged[cut - overlap..] {
        recovered.ingest(&f.client, f.seq, &f.groups, &f.payload);
        recovered_beacons.push((recovered.position(), recovered.state_hash()));
    }
    report.divergence +=
        check_state_beacons(&[(0, straight_beacons), (1, recovered_beacons)]).len();
    if recovered != straight {
        report.divergence += 1;
    }

    // Exactly-once over a second interleaving of the same workload.
    let merged2 = interleave(&streams, seed ^ 0x0ded);
    let mut m2 = KvMachine::new(PARTS);
    let mut commits2: Vec<(String, u64)> = Vec::new();
    for f in &merged2 {
        if let Some(a) = m2.ingest(&f.client, f.seq, &f.groups, &f.payload) {
            commits2.push((a.client, a.seq));
        }
    }
    for c in [&commits, &commits2] {
        let set: BTreeSet<&(String, u64)> = c.iter().collect();
        if c.len() != set.len() || set.len() != ids.len() {
            report.dedup += 1;
        }
    }
    if m2.pending_len() != 0 || m2.stats().txns_expired != 0 {
        report.dedup += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_from_env_defaults_quick() {
        // Do not set the variable; default must be quick.
        assert_eq!(Quality::from_env(), Quality::Quick);
    }

    #[test]
    fn quick_grids_are_smaller() {
        let q = Quality::Quick;
        assert_eq!(q.grid(&[1, 2, 3], &[1]), vec![1]);
        assert_eq!(Quality::Full.grid(&[1, 2, 3], &[1]), vec![1, 2, 3]);
    }

    #[test]
    fn protocols_are_the_papers_pair() {
        let [orig, accel] = protocols();
        assert_eq!(orig.1.variant(), Variant::Original);
        assert_eq!(accel.1.variant(), Variant::Accelerated);
        assert_eq!(accel.1.accelerated_window(), 15);
    }

    #[test]
    fn figure_08_has_two_curves() {
        // Smoke-run the cheapest figure at quick quality.
        let curves = figure_08(Quality::Quick);
        assert_eq!(curves.len(), 2);
        assert!(curves.iter().all(|c| !c.points.is_empty()));
    }

    #[test]
    fn ablate_rtr_delay_shows_more_retransmissions_when_immediate() {
        let rows = ablate_rtr_delay(Quality::Quick);
        let delayed_lossless = rows
            .iter()
            .find(|(l, _, _)| l.starts_with("delayed") && l.ends_with("loss=0%"))
            .expect("row present");
        let immediate_lossless = rows
            .iter()
            .find(|(l, _, _)| l.starts_with("immediate") && l.ends_with("loss=0%"))
            .expect("row present");
        // The paper's one-round delay avoids requesting in-flight messages:
        // with no real loss the delayed policy must request ~nothing, while
        // the immediate policy produces spurious retransmissions.
        assert!(
            delayed_lossless.1 < 0.01,
            "delayed rate {}",
            delayed_lossless.1
        );
        assert!(
            immediate_lossless.1 >= delayed_lossless.1,
            "immediate {} vs delayed {}",
            immediate_lossless.1,
            delayed_lossless.1
        );
    }
}
