//! Figure 2: Agreed delivery latency vs throughput, 1 Gb network,
//! 1350-byte payloads, both protocols, all three implementations.
use accelring_bench::{figure_02, Quality};
use accelring_sim::harness::format_table;

fn main() {
    let curves = figure_02(Quality::from_env());
    print!(
        "{}",
        format_table(
            "Figure 2: Agreed latency vs throughput, 1Gb",
            "offered Mbps",
            &curves
        )
    );
}
