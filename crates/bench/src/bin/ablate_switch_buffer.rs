//! Ablation: switch egress-buffer depth sensitivity at 850 Mbps on 1 Gb.
use accelring_bench::{ablate_switch_buffer, Quality};

fn main() {
    println!("# Ablation: switch buffer depth (accelerated, saturating, 1Gb)");
    println!(
        "{:>12} {:>14} {:>12} {:>14}",
        "buffer KiB", "goodput Mbps", "mean us", "switch drops"
    );
    for (kib, goodput, latency, drops) in ablate_switch_buffer(Quality::from_env()) {
        println!("{kib:>12} {goodput:>14.1} {latency:>12.1} {drops:>14}");
    }
}
