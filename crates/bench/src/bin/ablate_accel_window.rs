//! Ablation: the effect of the Accelerated-window size (0 = original
//! behaviour .. personal window) on latency at 700 Mbps, 1 Gb.
use accelring_bench::{ablate_accelerated_window, Quality};
use accelring_sim::harness::format_table;

fn main() {
    let curves = ablate_accelerated_window(Quality::from_env());
    print!(
        "{}",
        format_table("Ablation: accelerated window size", "accel window", &curves)
    );
}
