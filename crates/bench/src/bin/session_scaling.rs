//! Session-frontend scaling benchmark: one reactor daemon serving
//! thousands of remote UDP sessions through the framed session protocol,
//! measured open-loop.
//!
//! ```text
//! cargo run --release --bin session_scaling
//! cargo run --release --bin session_scaling -- --sessions 1000 --secs 2
//! ```
//!
//! For each point of the session-count grid (default 1k/10k/100k) the
//! bench stands up a single-node ring with the session socket enabled,
//! opens N sessions multiplexed over a fixed fleet of client sockets
//! (sessions are routed by id, not source address — that is what makes
//! 100k sessions over 64 sockets possible), subscribes a small set of
//! watcher sessions to one group, and drives submits from the remaining
//! sessions at a fixed aggregate rate regardless of completions
//! (open-loop, so queueing delay is not hidden by back-pressure).
//! Reports submit→delivery p50/p99, delivered events/sec, shed rate,
//! reactor syscalls/wakeup, peak sessions, and process RSS; writes the
//! whole run as `BENCH_sessions.json`.
//!
//! Honors `ACCELRING_BENCH_QUALITY` (`quick`/`full`) for the measurement
//! window and rate. `--max-p99-ms` / `--max-shed-rate` turn the run into
//! a CI gate that exits non-zero on regression; pooled-buffer leaks after
//! teardown always fail.

use std::net::{SocketAddr, UdpSocket};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use accelring_bench::Quality;
use accelring_core::{ParticipantId, ProtocolConfig, Service};
use accelring_daemon::proto::{decode_event_body, decode_session_frame, encode_session_frame};
use accelring_daemon::{
    ClientEvent, DaemonOptions, FrontendOptions, GroupAction, GroupDaemon, SessionFrame,
};
use accelring_membership::MembershipConfig;
use accelring_transport::{bind_with_retry, AddressBook, NodeAddr};
use bytes::Bytes;

/// Client sockets the sessions multiplex over (watchers get one each,
/// senders share the rest).
const SOCKETS: usize = 64;
/// Sessions subscribed to the bench group; every delivery fans out to
/// all of them, so delivered events/sec = WATCHERS × submit rate.
const WATCHERS: usize = 8;
/// The group all traffic targets. Senders are *not* members: open-group
/// semantics keep the fan-out fixed while the session count scales.
const GROUP: &str = "bench";
/// Credits granted back per CREDIT frame, matching the client refresh
/// cadence in `accelring_daemon::frontend`.
const CREDIT_CHUNK: u32 = 64;
/// How long to wait for the ring, handshakes, and views to settle.
const SETTLE_TIMEOUT: Duration = Duration::from_secs(30);

struct Args {
    grid: Vec<usize>,
    secs: f64,
    rate: u64,
    max_p99_ms: Option<f64>,
    max_shed_rate: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let (secs, rate) = match Quality::from_env() {
        Quality::Quick => (2.0, 1_000),
        Quality::Full => (5.0, 2_000),
    };
    let mut args = Args {
        grid: vec![1_000, 10_000, 100_000],
        secs,
        rate,
        max_p99_ms: None,
        max_shed_rate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--sessions" => {
                let n: usize = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?;
                args.grid = vec![n];
            }
            "--secs" => {
                args.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?;
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--max-p99-ms" => {
                args.max_p99_ms = Some(
                    value("--max-p99-ms")?
                        .parse()
                        .map_err(|e| format!("--max-p99-ms: {e}"))?,
                );
            }
            "--max-shed-rate" => {
                args.max_shed_rate = Some(
                    value("--max-shed-rate")?
                        .parse()
                        .map_err(|e| format!("--max-shed-rate: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.grid.iter().any(|&n| n < 2 * WATCHERS) {
        return Err(format!("--sessions: need at least {}", 2 * WATCHERS));
    }
    Ok(args)
}

/// Resident set size of this process in MiB, from `/proc/self/status`
/// (0.0 where unavailable).
fn rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// One handshaken session: its id and the socket index it lives on.
struct SessionSlot {
    id: u64,
    socket: usize,
}

/// Sends HELLO and waits for the matching WELCOME (by nonce), retrying
/// on timeout. The socket may not carry any other inbound traffic yet.
fn handshake(
    socket: &UdpSocket,
    daemon: SocketAddr,
    name: &str,
    nonce: u64,
) -> Result<u64, String> {
    let hello = encode_session_frame(&SessionFrame::Hello {
        name: name.to_string(),
        resume_seq: 0,
        nonce,
    });
    let mut buf = [0u8; 2048];
    for _ in 0..10 {
        socket
            .send_to(&hello, daemon)
            .map_err(|e| format!("hello send: {e}"))?;
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline {
            match socket.recv_from(&mut buf) {
                Ok((len, _)) => {
                    let mut bytes = Bytes::copy_from_slice(&buf[..len]);
                    match decode_session_frame(&mut bytes) {
                        Ok(SessionFrame::Welcome {
                            session, nonce: n, ..
                        }) if n == nonce => return Ok(session),
                        Ok(SessionFrame::Error { reason, .. }) => {
                            return Err(format!("daemon refused {name}: {reason}"))
                        }
                        _ => {}
                    }
                }
                Err(_) => break,
            }
        }
    }
    Err(format!("no WELCOME for {name}"))
}

fn submit(socket: &UdpSocket, daemon: SocketAddr, session: u64, action: GroupAction) {
    let frame = encode_session_frame(&SessionFrame::Submit {
        session,
        seq: 0,
        service: Service::Agreed,
        action,
    });
    let _ = socket.send_to(&frame, daemon);
}

/// One grid point's measured numbers.
struct PointResult {
    sessions: usize,
    connect_secs: f64,
    p50_us: f64,
    p99_us: f64,
    events_per_sec: f64,
    submits_sent: u64,
    events_delivered: u64,
    shed_rate: f64,
    shed_slow: u64,
    shed_budget: u64,
    shed_race: u64,
    syscalls_per_wakeup: f64,
    sessions_peak: u64,
    rss_mib: f64,
    pool_outstanding: u64,
}

impl PointResult {
    fn json(&self) -> String {
        format!(
            "{{\"sessions\": {}, \"connect_secs\": {:.3}, \"submit_p50_us\": {:.1}, \
             \"submit_p99_us\": {:.1}, \"events_per_sec\": {:.1}, \"submits_sent\": {}, \
             \"events_delivered\": {}, \"shed_rate\": {:.6}, \"shed_slow\": {}, \
             \"shed_budget\": {}, \"shed_race\": {}, \"syscalls_per_wakeup\": {:.3}, \
             \"sessions_peak\": {}, \"rss_mib\": {:.1}, \"pool_outstanding\": {}}}",
            self.sessions,
            self.connect_secs,
            self.p50_us,
            self.p99_us,
            self.events_per_sec,
            self.submits_sent,
            self.events_delivered,
            self.shed_rate,
            self.shed_slow,
            self.shed_budget,
            self.shed_race,
            self.syscalls_per_wakeup,
            self.sessions_peak,
            self.rss_mib,
            self.pool_outstanding,
        )
    }
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64
}

fn run_point(n: usize, args: &Args) -> Result<PointResult, String> {
    // A single-node ring is all the ordering machinery the frontend
    // needs; the bench isolates the session layer, not the token path.
    let bound =
        bind_with_retry(ParticipantId::new(0), "127.0.0.1").map_err(|e| format!("bind: {e}"))?;
    let addrs: Vec<NodeAddr> = vec![bound.addr().map_err(|e| format!("addr: {e}"))?];
    let handle = bound
        .start(
            AddressBook::new(addrs),
            ProtocolConfig::accelerated(20, 15),
            MembershipConfig::for_wall_clock(),
        )
        .map_err(|e| format!("start node: {e}"))?;
    let daemon = GroupDaemon::start_with(
        handle,
        DaemonOptions {
            frontend: FrontendOptions::enabled(),
            ..DaemonOptions::default()
        },
    );
    let probe = daemon.transport_probe();
    let daemon_addr = daemon.session_addr().expect("session socket");

    let sockets: Vec<UdpSocket> = (0..SOCKETS)
        .map(|_| {
            let s = UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("client bind: {e}"))?;
            s.set_read_timeout(Some(Duration::from_millis(50)))
                .map_err(|e| format!("timeout: {e}"))?;
            Ok(s)
        })
        .collect::<Result<_, String>>()?;

    // Handshake every session, SOCKETS-way parallel. Watchers take
    // sockets [0, WATCHERS); senders round-robin over the rest.
    let connect_start = Instant::now();
    let slots: Vec<SessionSlot> = std::thread::scope(|s| {
        let mut tasks = Vec::new();
        for (k, socket) in sockets.iter().enumerate() {
            tasks.push(s.spawn(move || -> Result<Vec<SessionSlot>, String> {
                let mut out = Vec::new();
                let mut i = k;
                while i < n {
                    // Watcher sessions live 1:1 on the first sockets;
                    // every other session hashes onto the sender pool.
                    let on_this_socket = if i < WATCHERS {
                        i == k
                    } else {
                        k >= WATCHERS && (i - WATCHERS) % (SOCKETS - WATCHERS) == k - WATCHERS
                    };
                    if on_this_socket {
                        let name = format!("s{i}");
                        let nonce = 0x5e55_0000_0000 + i as u64;
                        let id = handshake(socket, daemon_addr, &name, nonce)?;
                        out.push(SessionSlot { id, socket: k });
                    }
                    i += 1;
                }
                Ok(out)
            }));
        }
        let mut all: Vec<SessionSlot> = Vec::with_capacity(n);
        for t in tasks {
            all.extend(t.join().expect("handshake thread")?);
        }
        Ok::<_, String>(all)
    })?;
    let connect_secs = connect_start.elapsed().as_secs_f64();
    if slots.len() != n {
        return Err(format!("handshook {} of {n} sessions", slots.len()));
    }
    // Watchers are the sessions on the dedicated sockets.
    let watchers: Vec<&SessionSlot> = slots.iter().filter(|s| s.socket < WATCHERS).collect();
    let senders: Vec<&SessionSlot> = slots.iter().filter(|s| s.socket >= WATCHERS).collect();

    // Subscribe the watchers and wait until each sees the full view.
    for w in &watchers {
        submit(
            &sockets[w.socket],
            daemon_addr,
            w.id,
            GroupAction::Join {
                group: GROUP.to_string(),
            },
        );
    }
    for w in &watchers {
        let socket = &sockets[w.socket];
        let deadline = Instant::now() + SETTLE_TIMEOUT;
        let mut buf = [0u8; 65_536];
        let mut seen = false;
        while !seen {
            if Instant::now() > deadline {
                return Err("watcher never saw the full view".to_string());
            }
            let Ok((len, _)) = socket.recv_from(&mut buf) else {
                continue;
            };
            let mut bytes = Bytes::copy_from_slice(&buf[..len]);
            if let Ok(SessionFrame::Event { mut body, .. }) = decode_session_frame(&mut bytes) {
                if let Ok(ClientEvent::View { group, members }) = decode_event_body(&mut body) {
                    seen = group == GROUP && members.len() == watchers.len();
                }
            }
        }
    }

    // Measurement: senders submit open-loop at the aggregate rate;
    // watcher threads drain EVENT frames, timestamp latency, and grant
    // credits back. Timestamps ride in the payload as nanoseconds since
    // a shared epoch, so one clock covers both ends.
    let epoch = Instant::now();
    let stop = AtomicBool::new(false);
    let submits_sent = AtomicU64::new(0);
    let events_delivered = AtomicU64::new(0);
    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let stats_start = daemon.frontend_stats();
    let measure = Duration::from_secs_f64(args.secs);

    std::thread::scope(|s| {
        let sender_threads = SOCKETS - WATCHERS;
        for t in 0..sender_threads {
            let my: Vec<&SessionSlot> = senders
                .iter()
                .filter(|sl| sl.socket == WATCHERS + t)
                .copied()
                .collect();
            if my.is_empty() {
                continue;
            }
            let socket = &sockets[WATCHERS + t];
            let stop = &stop;
            let submits_sent = &submits_sent;
            let rate = args.rate as f64 / sender_threads as f64;
            s.spawn(move || {
                let interval = Duration::from_secs_f64(1.0 / rate);
                let start = Instant::now();
                let mut i: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    let due = start + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    let slot = my[(i as usize) % my.len()];
                    let nanos = epoch.elapsed().as_nanos() as u64;
                    submit(
                        socket,
                        daemon_addr,
                        slot.id,
                        GroupAction::Data {
                            groups: vec![GROUP.to_string()],
                            payload: Bytes::from(nanos.to_le_bytes().to_vec()),
                        },
                    );
                    submits_sent.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        for w in &watchers {
            let socket = &sockets[w.socket];
            let id = w.id;
            let stop = &stop;
            let events_delivered = &events_delivered;
            let samples = &samples;
            let epoch = &epoch;
            s.spawn(move || {
                let mut buf = [0u8; 65_536];
                let mut local: Vec<u64> = Vec::new();
                let mut since_credit: u32 = 0;
                loop {
                    match socket.recv_from(&mut buf) {
                        Ok((len, _)) => {
                            let mut bytes = Bytes::copy_from_slice(&buf[..len]);
                            if let Ok(SessionFrame::Event { mut body, .. }) =
                                decode_session_frame(&mut bytes)
                            {
                                if let Ok(ClientEvent::Message { payload, .. }) =
                                    decode_event_body(&mut body)
                                {
                                    if payload.len() == 8 {
                                        let sent =
                                            u64::from_le_bytes(payload[..8].try_into().unwrap());
                                        let now = epoch.elapsed().as_nanos() as u64;
                                        local.push(now.saturating_sub(sent));
                                    }
                                    events_delivered.fetch_add(1, Ordering::Relaxed);
                                }
                                since_credit += 1;
                                if since_credit >= CREDIT_CHUNK {
                                    since_credit = 0;
                                    let frame = encode_session_frame(&SessionFrame::Credit {
                                        session: id,
                                        credits: CREDIT_CHUNK,
                                    });
                                    let _ = socket.send_to(&frame, daemon_addr);
                                }
                            }
                        }
                        Err(_) => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                    }
                }
                samples.lock().expect("samples").extend(local);
            });
        }

        std::thread::sleep(measure);
        stop.store(true, Ordering::Relaxed);
    });
    // Let in-flight deliveries land before reading the counters.
    std::thread::sleep(Duration::from_millis(300));

    let stats_end = daemon.frontend_stats();
    let rss = rss_mib();
    let mut lat: Vec<u64> = samples.into_inner().expect("samples");
    lat.sort_unstable();

    let enqueued = stats_end.events_enqueued - stats_start.events_enqueued;
    let shed = stats_end.events_shed() - stats_start.events_shed();
    let shed_rate = if enqueued + shed > 0 {
        shed as f64 / (enqueued + shed) as f64
    } else {
        0.0
    };
    let d_wakeups = stats_end.wakeups - stats_start.wakeups;
    let d_syscalls = stats_end.syscalls - stats_start.syscalls;

    drop(daemon);
    // Every pooled transport buffer must come home after teardown.
    let leak_deadline = Instant::now() + Duration::from_secs(2);
    let mut outstanding = probe.pool_outstanding();
    while outstanding > 0 && Instant::now() < leak_deadline {
        std::thread::sleep(Duration::from_millis(10));
        outstanding = probe.pool_outstanding();
    }

    Ok(PointResult {
        sessions: n,
        connect_secs,
        p50_us: percentile(&lat, 0.50) / 1_000.0,
        p99_us: percentile(&lat, 0.99) / 1_000.0,
        events_per_sec: events_delivered.load(Ordering::Relaxed) as f64 / args.secs,
        submits_sent: submits_sent.load(Ordering::Relaxed),
        events_delivered: events_delivered.load(Ordering::Relaxed),
        shed_rate,
        shed_slow: stats_end.shed_slow_session - stats_start.shed_slow_session,
        shed_budget: stats_end.shed_global_budget - stats_start.shed_global_budget,
        shed_race: stats_end.shed_disconnect_race - stats_start.shed_disconnect_race,
        syscalls_per_wakeup: if d_wakeups > 0 {
            d_syscalls as f64 / d_wakeups as f64
        } else {
            0.0
        },
        sessions_peak: stats_end.sessions_peak,
        rss_mib: rss,
        pool_outstanding: outstanding,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("session_scaling: {e}");
            eprintln!(
                "usage: session_scaling [--sessions N] [--secs S] [--rate R] \
                 [--max-p99-ms F] [--max-shed-rate F]"
            );
            return ExitCode::from(2);
        }
    };
    println!(
        "# session_scaling: grid {:?}, {} watchers over {} sockets, {}/s open-loop, {:.1}s per point",
        args.grid, WATCHERS, SOCKETS, args.rate, args.secs
    );

    let mut points = Vec::new();
    for &n in &args.grid {
        match run_point(n, &args) {
            Ok(r) => {
                println!(
                    "{:>7} sessions  connect {:>6.2}s  p50 {:>8.0}us  p99 {:>8.0}us  \
                     {:>8.0} events/s  shed {:>6.4}  {:>6.2} syscalls/wakeup  rss {:>6.1} MiB",
                    r.sessions,
                    r.connect_secs,
                    r.p50_us,
                    r.p99_us,
                    r.events_per_sec,
                    r.shed_rate,
                    r.syscalls_per_wakeup,
                    r.rss_mib,
                );
                points.push(r);
            }
            Err(e) => {
                eprintln!("session_scaling: {n} sessions: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"session_scaling\",\n  \"watchers\": {},\n  \"sockets\": {},\n  \
         \"rate_per_sec\": {},\n  \"measure_secs\": {:.1},\n  \"points\": [\n    {}\n  ]\n}}\n",
        WATCHERS,
        SOCKETS,
        args.rate,
        args.secs,
        points
            .iter()
            .map(PointResult::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    if let Err(e) = std::fs::write("BENCH_sessions.json", &json) {
        eprintln!("session_scaling: writing BENCH_sessions.json: {e}");
        return ExitCode::FAILURE;
    }

    // CI gates: regression thresholds are opt-in, leak checks are not.
    let mut failed = false;
    for r in &points {
        if let Some(max) = args.max_p99_ms {
            if r.p99_us / 1_000.0 > max {
                eprintln!(
                    "session_scaling: {} sessions p99 {:.1}ms exceeds gate {max:.1}ms",
                    r.sessions,
                    r.p99_us / 1_000.0
                );
                failed = true;
            }
        }
        if let Some(max) = args.max_shed_rate {
            if r.shed_rate > max {
                eprintln!(
                    "session_scaling: {} sessions shed rate {:.4} exceeds gate {max:.4}",
                    r.sessions, r.shed_rate
                );
                failed = true;
            }
        }
        if r.pool_outstanding > 0 {
            eprintln!(
                "session_scaling: {} sessions leaked {} pooled buffers",
                r.sessions, r.pool_outstanding
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("session_scaling: clean");
    ExitCode::SUCCESS
}
