//! Figure 4: Agreed delivery latency vs throughput, 10 Gb network.
use accelring_bench::{figure_04, Quality};
use accelring_sim::harness::format_table;

fn main() {
    let curves = figure_04(Quality::from_env());
    print!(
        "{}",
        format_table(
            "Figure 4: Agreed latency vs throughput, 10Gb",
            "offered Mbps",
            &curves
        )
    );
}
