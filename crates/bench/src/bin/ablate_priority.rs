//! Ablation: token-priority method 1 (aggressive, used by the prototypes)
//! vs method 2 (conservative, used by Spread) — Section III-D/III-E.
use accelring_bench::{ablate_priority_method, Quality};
use accelring_sim::harness::format_table;

fn main() {
    let curves = ablate_priority_method(Quality::from_env());
    print!(
        "{}",
        format_table(
            "Ablation: token priority policies (10Gb, spread profile, accel window 4)",
            "offered Mbps",
            &curves
        )
    );
}
