//! Chaos soak: long seeded fault schedules against the full membership
//! stack, every EVS invariant checked per seed.
//!
//! ```text
//! cargo run --release --bin chaos_soak -- --seed 7
//! cargo run --release --bin chaos_soak -- --seeds 0..32 --nodes 8 --events 5000
//! ```
//!
//! Exits non-zero if any seed violates an invariant; the report carries
//! the seed and the fault trace, so `--seed N` replays the run exactly.
use std::process::ExitCode;

use accelring_chaos::{run_chaos, ChaosConfig};

struct Args {
    seeds: std::ops::Range<u64>,
    nodes: u16,
    events: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 0..8,
        nodes: 8,
        events: 5000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                let s: u64 = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                args.seeds = s..s + 1;
            }
            "--seeds" => {
                let v = value("--seeds")?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds wants A..B, got {v}"))?;
                let a: u64 = a.parse().map_err(|e| format!("--seeds: {e}"))?;
                let b: u64 = b.parse().map_err(|e| format!("--seeds: {e}"))?;
                if a >= b {
                    return Err(format!("--seeds: empty range {a}..{b}"));
                }
                args.seeds = a..b;
            }
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.nodes < 2 {
        return Err(format!("--nodes: need at least 2, got {}", args.nodes));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos_soak: {e}");
            eprintln!("usage: chaos_soak [--seed N | --seeds A..B] [--nodes N] [--events N]");
            return ExitCode::from(2);
        }
    };
    let mut failures = 0u32;
    let total = args.seeds.end - args.seeds.start;
    for seed in args.seeds.clone() {
        let report = run_chaos(ChaosConfig::soak(seed, args.nodes, args.events));
        println!("{}", report.render());
        if !report.ok() {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("chaos_soak: {failures}/{total} seed(s) violated EVS invariants");
        return ExitCode::FAILURE;
    }
    println!(
        "chaos_soak: {total} seed(s) clean ({} nodes, {} events each)",
        args.nodes, args.events
    );
    ExitCode::SUCCESS
}
