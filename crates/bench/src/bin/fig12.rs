//! Figure 12: latency vs per-daemon loss rate at 350 Mbps goodput, 1 Gb.
use accelring_bench::{figure_loss, Quality};
use accelring_sim::harness::format_table;
use accelring_sim::NetworkProfile;

fn main() {
    let curves = figure_loss(Quality::from_env(), NetworkProfile::gigabit(), 350);
    print!(
        "{}",
        format_table(
            "Figure 12: latency vs loss, 350 Mbps goodput, 1Gb",
            "loss %",
            &curves
        )
    );
}
