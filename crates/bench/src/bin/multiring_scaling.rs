//! Multi-ring scaling: aggregate ordered throughput at R = 1, 2, 4
//! rings on the 1 Gb and 10 Gb profiles, with the deterministic merge
//! replayed over every ring's delivery stream. Honors
//! ACCELRING_BENCH_QUALITY.
use accelring_bench::{format_multiring_scaling, multiring_scaling_table, Quality};

fn main() {
    print!(
        "{}",
        format_multiring_scaling(&multiring_scaling_table(Quality::from_env()))
    );
}
