//! Runs every figure and table of the paper and prints the full report —
//! the source of EXPERIMENTS.md. Honors ACCELRING_BENCH_QUALITY.
use accelring_bench::*;
use accelring_core::Service;
use accelring_sim::harness::format_table;
use accelring_sim::NetworkProfile;

fn main() {
    let q = Quality::from_env();
    println!("{}", format_max_throughput(&max_throughput_table(q)));
    println!("{}", format_multiring_scaling(&multiring_scaling_table(q)));
    let kv_seeds = match q {
        Quality::Quick => 25,
        Quality::Full => 100,
    };
    let (mut kv_div, mut kv_dedup) = (0usize, 0usize);
    for seed in 0..kv_seeds {
        let r = kv_divergence_case(seed);
        kv_div += r.divergence;
        kv_dedup += r.dedup;
    }
    println!("# Replicated KV: replica determinism sweep, {kv_seeds} seeds");
    println!(
        "  divergence violations: {kv_div}, exactly-once violations: {kv_dedup} \
         (live latency percentiles: BENCH_kv.json, `--bin kv`)"
    );
    println!();
    println!(
        "{}",
        format_table(
            "Figure 2: Agreed latency vs throughput, 1Gb",
            "offered Mbps",
            &figure_02(q)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 3: Safe latency vs throughput, 1Gb",
            "offered Mbps",
            &figure_03(q)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 4: Agreed latency vs throughput, 10Gb",
            "offered Mbps",
            &figure_04(q)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 5: Agreed, 1350B vs 8850B payloads, 10Gb",
            "offered Mbps",
            &figure_payload_sizes(q, Service::Agreed)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 6: Safe latency vs throughput, 10Gb",
            "offered Mbps",
            &figure_06(q)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 7: Safe, 1350B vs 8850B payloads, 10Gb",
            "offered Mbps",
            &figure_payload_sizes(q, Service::Safe)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 8: Safe latency at low throughput, 10Gb (crossover)",
            "offered Mbps",
            &figure_08(q)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 9: latency vs loss, 480 Mbps goodput, 10Gb",
            "loss %",
            &figure_loss(q, NetworkProfile::ten_gigabit(), 480)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 10: latency vs loss, 1200 Mbps goodput, 10Gb",
            "loss %",
            &figure_loss(q, NetworkProfile::ten_gigabit(), 1200)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 11: latency vs loss, 140 Mbps goodput, 1Gb",
            "loss %",
            &figure_loss(q, NetworkProfile::gigabit(), 140)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 12: latency vs loss, 350 Mbps goodput, 1Gb",
            "loss %",
            &figure_loss(q, NetworkProfile::gigabit(), 350)
        )
    );
    println!(
        "{}",
        format_table(
            "Figure 13: latency vs ring distance of the lossy pair",
            "distance",
            &figure_13(q)
        )
    );
    println!(
        "{}",
        format_table(
            "Ablation: accelerated window size",
            "accel window",
            &ablate_accelerated_window(q)
        )
    );
    println!(
        "{}",
        format_table(
            "Ablation: token priority policies (10Gb, spread profile)",
            "offered Mbps",
            &ablate_priority_method(q)
        )
    );
    println!("# Ablation: retransmission request delay (accelerated, 350 Mbps, 1Gb)");
    println!("{:>28} {:>16} {:>12}", "policy", "retrans/msg", "mean us");
    for (label, rate, latency) in ablate_rtr_delay(q) {
        println!("{label:>28} {rate:>16.4} {latency:>12.1}");
    }
    println!();
    println!("# Ablation: switch buffer depth (accelerated, saturating, 1Gb)");
    println!(
        "{:>12} {:>14} {:>12} {:>14}",
        "buffer KiB", "goodput Mbps", "mean us", "switch drops"
    );
    for (kib, goodput, latency, drops) in ablate_switch_buffer(q) {
        println!("{kib:>12} {goodput:>14.1} {latency:>12.1} {drops:>14}");
    }
}
