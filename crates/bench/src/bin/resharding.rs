//! Elastic resharding benchmark: steady client traffic into a hot group
//! on a live localhost UDP multi-ring deployment, with an online
//! migration of the group to another ring fired mid-run. Measures the
//! delivery-rate dip the handoff fence causes, in 100 ms buckets, and
//! reports the migration lifecycle counters (including total fence wait
//! time) from the transport probe.
//!
//! ```text
//! cargo run --release --bin resharding
//! cargo run --release --bin resharding -- --secs 10 --gap-us 2000
//! ```
//!
//! Writes the run as `BENCH_resharding.json`. Exits non-zero if the
//! migration never commits, if any sent message is lost or duplicated,
//! or if a phantom message appears — the CI smoke gate. Honors
//! `ACCELRING_BENCH_QUALITY` (`quick`/`full`) for the default run
//! length.

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use accelring_bench::Quality;
use accelring_chaos::churn::check_churn_handoff;
use accelring_chaos::MsgId;
use accelring_core::{Backoff, RingIdx, Service};
use accelring_daemon::ClientEvent;
use accelring_multiring::{ChurnCluster, MultiRingClient, MultiRingOptions, ShardMap};
use bytes::Bytes;

const RINGS: u16 = 2;
const NODES: u16 = 3;
const HOT_SENDER: u16 = 7;
const BUCKET: Duration = Duration::from_millis(100);

struct Args {
    secs: f64,
    gap_us: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        secs: match Quality::from_env() {
            Quality::Quick => 4.0,
            Quality::Full => 12.0,
        },
        gap_us: 4000,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--secs" => {
                args.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?;
            }
            "--gap-us" => {
                args.gap_us = value("--gap-us")?
                    .parse()
                    .map_err(|e| format!("--gap-us: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.secs < 1.0 {
        return Err("--secs: need at least 1".to_string());
    }
    if args.gap_us < 100 {
        return Err("--gap-us: need at least 100".to_string());
    }
    Ok(args)
}

/// "hot" starts on ring 0 (where all clients live) and migrates to ring
/// 1, which carries a second group so the target is not idle state.
fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS);
    map.assign("hot", RingIdx::new(0));
    map.assign("cold", RingIdx::new(1));
    map
}

fn await_view(client: &MultiRingClient, group: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if let Ok(ClientEvent::View { group: g, .. }) =
            client.events().recv_timeout(Duration::from_millis(200))
        {
            if g == group {
                return;
            }
        }
    }
    panic!("client {} never saw a view for {group}", client.name());
}

fn send_id(sender: &MultiRingClient, id: MsgId) -> Result<(), String> {
    let mut backoff = Backoff::new(
        Duration::from_millis(5),
        Duration::from_millis(100),
        id.counter,
    );
    loop {
        match sender.multicast_sequenced(&["hot"], Bytes::from(id.payload()), Service::Agreed) {
            Ok(_) => return Ok(()),
            Err(e) if backoff.attempts() >= 20 => return Err(format!("send {id}: {e}")),
            Err(_) => std::thread::sleep(backoff.next_delay()),
        }
    }
}

/// Mean delivery rate (messages/sec) over the bucket indices `[a, b)`.
fn rate(buckets: &[u64], a: usize, b: usize) -> f64 {
    let b = b.min(buckets.len());
    if a >= b {
        return 0.0;
    }
    let total: u64 = buckets[a..b].iter().sum();
    total as f64 / ((b - a) as f64 * BUCKET.as_secs_f64())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("resharding: {e}");
            eprintln!("usage: resharding [--secs S] [--gap-us N] [--seed N]");
            return ExitCode::from(2);
        }
    };

    let cluster = match ChurnCluster::start(
        RINGS,
        NODES,
        args.seed,
        shards(),
        MultiRingOptions::default(),
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("resharding: cluster failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let observer = cluster.daemon(0).connect("obs").expect("connect");
    let sender = cluster.daemon(0).connect("src").expect("connect");
    observer.join("hot").expect("join hot");
    await_view(&observer, "hot");

    // The collector thread timestamps every delivery live, so the
    // buckets reflect when the merged order released each message, not
    // when this thread got around to draining the channel.
    let stop = Arc::new(AtomicBool::new(false));
    let collector = {
        let stop = Arc::clone(&stop);
        let t0 = Instant::now();
        std::thread::spawn(move || {
            let mut got: Vec<(Duration, MsgId)> = Vec::new();
            let mut last = Instant::now();
            loop {
                match observer.events().recv_timeout(Duration::from_millis(100)) {
                    Ok(ClientEvent::Message { payload, .. }) => {
                        if let Some(id) = MsgId::parse(&payload) {
                            got.push((t0.elapsed(), id));
                            last = Instant::now();
                        }
                    }
                    Ok(_) => {}
                    Err(_) => {
                        if stop.load(Ordering::Relaxed) && last.elapsed() > Duration::from_secs(2) {
                            return got;
                        }
                    }
                }
            }
        })
    };

    let run = Duration::from_secs_f64(args.secs);
    let migrate_at = run / 2;
    let gap = Duration::from_micros(args.gap_us);
    let start = Instant::now();
    let mut sent: BTreeSet<MsgId> = BTreeSet::new();
    let mut counter = 0u64;
    let mut migrated = false;
    while start.elapsed() < run {
        let id = MsgId {
            sender: HOT_SENDER,
            counter,
        };
        if let Err(e) = send_id(&sender, id) {
            eprintln!("resharding: {e}");
            return ExitCode::FAILURE;
        }
        sent.insert(id);
        counter += 1;
        if !migrated && start.elapsed() >= migrate_at {
            migrated = true;
            if let Err(e) = cluster.daemon(0).migrate("hot", RingIdx::new(1)) {
                eprintln!("resharding: migrate rejected: {e}");
                return ExitCode::FAILURE;
            }
        }
        std::thread::sleep(gap);
    }

    // Wait out the commit, then release the collector.
    let commit_deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < commit_deadline {
        if cluster.daemon(0).transport_stats()[0].migrations_committed >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::Relaxed);
    let got = collector.join().expect("collector thread");
    let stats = cluster.daemon(0).transport_stats()[0];

    let ids: Vec<MsgId> = got.iter().map(|(_, id)| *id).collect();
    let violations = check_churn_handoff(&sent, &[(0, ids)]);
    let committed = stats.migrations_committed;

    let nbuckets = (got
        .iter()
        .map(|(at, _)| at.as_millis() / BUCKET.as_millis())
        .max()
        .unwrap_or(0) as usize)
        + 1;
    let mut buckets = vec![0u64; nbuckets];
    for (at, _) in &got {
        buckets[(at.as_millis() / BUCKET.as_millis()) as usize] += 1;
    }
    let mig_bucket = (migrate_at.as_millis() / BUCKET.as_millis()) as usize;
    // "during" is the second right after the fence goes up; the dip is
    // its rate against the pre-fence baseline.
    let during_end =
        mig_bucket + (Duration::from_secs(1).as_millis() / BUCKET.as_millis()) as usize;
    let before = rate(&buckets, 0, mig_bucket);
    let during = rate(&buckets, mig_bucket, during_end);
    let after = rate(&buckets, during_end, nbuckets);
    let dip = if before > 0.0 { during / before } else { 0.0 };

    let bucket_list = buckets
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"resharding\",\n  \"rings\": {RINGS},\n  \"nodes\": {NODES},\n  \
         \"seed\": {},\n  \"secs\": {:.1},\n  \"send_gap_us\": {},\n  \"sent\": {},\n  \
         \"delivered\": {},\n  \"migrate_at_ms\": {},\n  \"bucket_ms\": {},\n  \
         \"buckets\": [{bucket_list}],\n  \"rate_before_fence\": {before:.1},\n  \
         \"rate_during_handoff\": {during:.1},\n  \"rate_after_handoff\": {after:.1},\n  \
         \"dip_ratio\": {dip:.3},\n  \"migrations_started\": {},\n  \
         \"migrations_committed\": {committed},\n  \"migrations_aborted\": {},\n  \
         \"submissions_redirected\": {},\n  \"fence_wait_ms\": {:.1},\n  \"violations\": {}\n}}\n",
        args.seed,
        args.secs,
        args.gap_us,
        sent.len(),
        got.len(),
        migrate_at.as_millis(),
        BUCKET.as_millis(),
        stats.migrations_started,
        stats.migrations_aborted,
        stats.submissions_redirected,
        stats.fence_wait_ns as f64 / 1e6,
        violations.len(),
    );
    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_resharding.json", &json) {
        eprintln!("resharding: writing BENCH_resharding.json: {e}");
        return ExitCode::FAILURE;
    }

    cluster.shutdown();

    // CI smoke gate: the handoff must have happened and cost nothing.
    let mut failed = false;
    if committed < 1 {
        eprintln!("resharding: the migration never committed");
        failed = true;
    }
    for v in &violations {
        eprintln!("resharding: {v}");
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "resharding: clean ({} sent, {} delivered, dip {:.0}% of baseline)",
        sent.len(),
        got.len(),
        dip * 100.0
    );
    ExitCode::SUCCESS
}
