//! Extension experiment: bursty (Gilbert-Elliott) loss vs independent
//! Bernoulli loss at the same average rate. Correlated drops hit
//! contiguous sequence ranges, which the rtr mechanism repairs in bulk.
use accelring_bench::Quality;
use accelring_core::{ProtocolConfig, Service};
use accelring_sim::{ExperimentSpec, ImplProfile, LossSpec, NetworkProfile, SimDuration};

fn main() {
    let q = Quality::from_env();
    let (warmup, measure) = match q {
        Quality::Quick => (SimDuration::from_millis(20), SimDuration::from_millis(60)),
        Quality::Full => (SimDuration::from_millis(50), SimDuration::from_millis(200)),
    };
    println!("# Extension: bursty vs independent loss (accelerated, 480 Mbps, 10Gb)");
    println!(
        "{:>36} {:>10} {:>10} {:>12}",
        "loss model", "mean us", "w5% us", "retrans/msg"
    );
    let models: [(&str, LossSpec); 3] = [
        ("none", LossSpec::None),
        ("bernoulli 9%", LossSpec::bernoulli(0.09)),
        (
            "burst (GE, ~9% avg, bad=60%)",
            LossSpec::Burst {
                good_rate: 0.01,
                bad_rate: 0.6,
                good_to_bad: 0.03,
                bad_to_good: 0.18,
            },
        ),
    ];
    for service in [Service::Agreed, Service::Safe] {
        for (label, loss) in models.iter() {
            let mut spec = ExperimentSpec::baseline();
            spec.network = NetworkProfile::ten_gigabit();
            spec.impl_profile = ImplProfile::daemon();
            spec.protocol = ProtocolConfig::accelerated(20, 15);
            spec.service = service;
            spec.loss = *loss;
            spec.warmup = warmup;
            spec.measure = measure;
            let r = spec.at_rate_mbps(480).run();
            println!(
                "{:>29} {:>6} {:>10.1} {:>10.1} {:>12.3}",
                label,
                format!("{service}"),
                r.latency.mean.as_micros_f64(),
                r.latency.worst5_mean.as_micros_f64(),
                r.retransmission_rate
            );
        }
    }
}
