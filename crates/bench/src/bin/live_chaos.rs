//! Live chaos soak: seeded fault schedules replayed against a real
//! localhost UDP ring — actual sockets, threads, and wall-clock timers —
//! with every EVS invariant checked per seed.
//!
//! ```text
//! cargo run --release --bin live_chaos -- --seed 7
//! cargo run --release --bin live_chaos -- --seeds 0..8 --nodes 4 --events 60
//! ```
//!
//! Exits non-zero if any seed violates an invariant. Unlike `chaos_soak`
//! the execution is not bit-reproducible (real threads race), but the
//! fault schedule is: `--seed N` replays the same fault sequence at the
//! same offsets against the same seeded loss plane.
use std::process::ExitCode;

use accelring_chaos::{run_live_chaos, LiveChaosConfig};

struct Args {
    seeds: std::ops::Range<u64>,
    nodes: u16,
    events: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 0..4,
        nodes: 3,
        events: 40,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                let s: u64 = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                args.seeds = s..s + 1;
            }
            "--seeds" => {
                let v = value("--seeds")?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds wants A..B, got {v}"))?;
                let a: u64 = a.parse().map_err(|e| format!("--seeds: {e}"))?;
                let b: u64 = b.parse().map_err(|e| format!("--seeds: {e}"))?;
                if a >= b {
                    return Err(format!("--seeds: empty range {a}..{b}"));
                }
                args.seeds = a..b;
            }
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.nodes < 2 {
        return Err(format!("--nodes: need at least 2, got {}", args.nodes));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("live_chaos: {e}");
            eprintln!("usage: live_chaos [--seed N | --seeds A..B] [--nodes N] [--events N]");
            return ExitCode::from(2);
        }
    };
    let mut failures = 0u32;
    let total = args.seeds.end - args.seeds.start;
    for seed in args.seeds.clone() {
        let report = match run_live_chaos(LiveChaosConfig::soak(seed, args.nodes, args.events)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("live_chaos: seed {seed}: failed to stand up the ring: {e}");
                failures += 1;
                continue;
            }
        };
        println!("{}", report.render());
        if !report.ok() {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("live_chaos: {failures}/{total} seed(s) violated EVS invariants");
        return ExitCode::FAILURE;
    }
    println!(
        "live_chaos: {total} seed(s) clean ({} nodes, {} events each, real UDP)",
        args.nodes, args.events
    );
    ExitCode::SUCCESS
}
