//! Hot-datapath microbenchmark: three packet paths on a real localhost
//! ring under saturating senders —
//!
//! - `per_datagram`: legacy one-syscall-per-datagram UDP,
//! - `batched`: `recvmmsg`/`sendmmsg`, pooled, encode-once UDP,
//! - `shm`: the shared-memory SPSC ring backend (zero syscalls on the
//!   datagram path; the doorbell eventfd only fires on sleep edges).
//!
//! ```text
//! cargo run --release --bin packet_path
//! cargo run --release --bin packet_path -- --nodes 4 --secs 3
//! ```
//!
//! Reports datagrams/sec, syscalls/datagram, average batch size, and pool
//! hit rate per path (plus ring/doorbell counters for the shm path),
//! prints the speedups, and writes the whole run as
//! `BENCH_packet_path.json`. Exits non-zero if any path saw wire
//! decode errors or leaked pooled buffers — the CI smoke gate.
//! Honors `ACCELRING_BENCH_QUALITY` (`quick`/`full`) for the default
//! measurement window.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use accelring_bench::Quality;
use accelring_core::{ParticipantId, ProtocolConfig, Service, ShmPathStats};
use accelring_membership::{MembershipConfig, StateKind};
use accelring_transport::{
    bind_with_retry_on, AddressBook, AppEvent, BoundNode, Datapath, NodeAddr, NodeHandle,
    NodeOptions, SubmitError, Transport, TransportError,
};
use bytes::Bytes;

/// Payload size, the paper's standard 1350-byte datagram.
const PAYLOAD_LEN: usize = 1350;

/// How long to wait for the ring to form before giving up.
const FORM_TIMEOUT: Duration = Duration::from_secs(10);

struct Args {
    nodes: u16,
    secs: f64,
    window: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 4,
        secs: match Quality::from_env() {
            Quality::Quick => 2.0,
            Quality::Full => 8.0,
        },
        window: 30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--secs" => {
                args.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?;
            }
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.nodes < 2 {
        return Err(format!("--nodes: need at least 2, got {}", args.nodes));
    }
    if args.window < 1 {
        return Err("--window: need at least 1".to_string());
    }
    Ok(args)
}

/// One path's measured numbers.
struct PathResult {
    label: &'static str,
    elapsed_secs: f64,
    datagrams: u64,
    syscalls: u64,
    delivered: u64,
    decode_failures: u64,
    send_errors: u64,
    pool_hits: u64,
    pool_misses: u64,
    pool_outstanding: u64,
    token_retransmits: u64,
    rings_reformed: u64,
    submissions_shed: u64,
    /// Shared-memory ring counter deltas; all-zero on the UDP paths.
    shm: ShmPathStats,
}

impl PathResult {
    fn datagrams_per_sec(&self) -> f64 {
        self.datagrams as f64 / self.elapsed_secs
    }

    fn syscalls_per_datagram(&self) -> f64 {
        if self.datagrams == 0 {
            return 0.0;
        }
        self.syscalls as f64 / self.datagrams as f64
    }

    fn avg_batch(&self) -> f64 {
        if self.syscalls == 0 {
            return 0.0;
        }
        self.datagrams as f64 / self.syscalls as f64
    }

    fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            return 0.0;
        }
        self.pool_hits as f64 / total as f64
    }

    fn json(&self) -> String {
        let mut out = format!(
            "{{\"datagrams\": {}, \"syscalls\": {}, \"elapsed_secs\": {:.3}, \
             \"datagrams_per_sec\": {:.1}, \"syscalls_per_datagram\": {:.4}, \
             \"avg_batch\": {:.2}, \"delivered\": {}, \"decode_failures\": {}, \
             \"send_errors\": {}, \"pool_hits\": {}, \"pool_misses\": {}, \
             \"pool_hit_rate\": {:.4}, \"pool_outstanding\": {}, \
             \"token_retransmits\": {}, \"rings_reformed\": {}, \
             \"submissions_shed\": {}",
            self.datagrams,
            self.syscalls,
            self.elapsed_secs,
            self.datagrams_per_sec(),
            self.syscalls_per_datagram(),
            self.avg_batch(),
            self.delivered,
            self.decode_failures,
            self.send_errors,
            self.pool_hits,
            self.pool_misses,
            self.pool_hit_rate(),
            self.pool_outstanding,
            self.token_retransmits,
            self.rings_reformed,
            self.submissions_shed,
        );
        if self.shm.active() {
            out.push_str(&format!(
                ", \"shm_slots_published\": {}, \"shm_slots_consumed\": {}, \
                 \"shm_datagrams_published\": {}, \"shm_datagrams_consumed\": {}, \
                 \"shm_doorbell_rings\": {}, \"shm_doorbell_wakeups\": {}, \
                 \"shm_datagrams_per_wakeup\": {:.1}, \"shm_ring_full_drops\": {}",
                self.shm.slots_published,
                self.shm.slots_consumed,
                self.shm.datagrams_published,
                self.shm.datagrams_consumed,
                self.shm.doorbell_rings,
                self.shm.doorbell_wakeups,
                self.shm.datagrams_per_wakeup(),
                self.shm.ring_full_drops,
            ));
        }
        out.push('}');
        out
    }
}

/// How the link-level flood moves datagrams.
#[derive(Clone, Copy)]
enum LinkMode {
    UdpPerDatagram,
    UdpBatched,
    Shm,
}

/// Raw link-level numbers for one backend: a single thread ping-pongs
/// fixed-size batches between two endpoints with no protocol on top,
/// measuring the packet path in isolation. The full-ring runs above are
/// CPU-bound on ordering work on small machines, which caps how much a
/// transport swap can show there; this is the transport itself.
struct LinkResult {
    label: &'static str,
    datagrams: u64,
    syscalls: u64,
    elapsed_secs: f64,
}

impl LinkResult {
    fn datagrams_per_sec(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            return 0.0;
        }
        self.datagrams as f64 / self.elapsed_secs
    }

    fn syscalls_per_datagram(&self) -> f64 {
        if self.datagrams == 0 {
            return 0.0;
        }
        self.syscalls as f64 / self.datagrams as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"datagrams\": {}, \"syscalls\": {}, \"elapsed_secs\": {:.3}, \
             \"datagrams_per_sec\": {:.1}, \"syscalls_per_datagram\": {:.4}}}",
            self.datagrams,
            self.syscalls,
            self.elapsed_secs,
            self.datagrams_per_sec(),
            self.syscalls_per_datagram(),
        )
    }
}

/// Datagrams per link-flood batch; matches the event loop's receive batch.
const LINK_BATCH: usize = 32;

/// Floods `PAYLOAD_LEN`-byte datagrams from one endpoint to another for
/// `secs`, draining after every batch so nothing is lost to full socket
/// buffers, and returns the datagram and syscall counts.
fn run_link(label: &'static str, mode: LinkMode, secs: f64) -> Result<LinkResult, String> {
    use accelring_transport::{DatagramSocket, RecvSlot, ShmCounters, ShmSocket};

    let err = |e: std::io::Error| format!("link {label}: {e}");
    let (a, b, dest): (Box<dyn DatagramSocket>, Box<dyn DatagramSocket>, _) = match mode {
        LinkMode::UdpPerDatagram | LinkMode::UdpBatched => {
            let a = std::net::UdpSocket::bind("127.0.0.1:0").map_err(err)?;
            let b = std::net::UdpSocket::bind("127.0.0.1:0").map_err(err)?;
            a.set_nonblocking(true).map_err(err)?;
            b.set_nonblocking(true).map_err(err)?;
            let dest = b.local_addr().map_err(err)?;
            (Box::new(a), Box::new(b), dest)
        }
        LinkMode::Shm => {
            let counters = ShmCounters::new();
            let a = ShmSocket::bind_ephemeral(counters.clone()).map_err(err)?;
            let b = ShmSocket::bind_ephemeral(counters).map_err(err)?;
            let dest = b.local_addr();
            (Box::new(a), Box::new(b), dest)
        }
    };

    let payload = Bytes::from(vec![0x5au8; PAYLOAD_LEN]);
    let batch: Vec<(Bytes, std::net::SocketAddr)> =
        (0..LINK_BATCH).map(|_| (payload.clone(), dest)).collect();
    let mut bufs = vec![[0u8; 2048]; LINK_BATCH];

    let mut datagrams = 0u64;
    let mut syscalls = 0u64;
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(secs);
    while Instant::now() < deadline {
        match mode {
            LinkMode::UdpPerDatagram => {
                for (buf, addr) in &batch {
                    syscalls += 1;
                    let _ = a.send_to(buf, *addr);
                }
                let mut buf = [0u8; 2048];
                loop {
                    syscalls += 1;
                    match b.recv_from(&mut buf) {
                        Ok(_) => datagrams += 1,
                        Err(_) => break,
                    }
                }
            }
            LinkMode::UdpBatched | LinkMode::Shm => {
                let out = a.send_batch(&batch);
                syscalls += out.syscalls;
                loop {
                    let mut slots: Vec<RecvSlot<'_>> =
                        bufs.iter_mut().map(|b| RecvSlot::new(b)).collect();
                    let out = b.recv_batch(&mut slots).map_err(err)?;
                    syscalls += out.syscalls;
                    datagrams += out.received as u64;
                    if out.received == 0 {
                        break;
                    }
                }
            }
        }
    }

    Ok(LinkResult {
        label,
        datagrams,
        syscalls,
        elapsed_secs: start.elapsed().as_secs_f64(),
    })
}

/// Spawns a fully meshed localhost ring running the given datapath over
/// the given transport.
fn spawn_ring(
    n: u16,
    window: u32,
    datapath: Datapath,
    transport: Transport,
) -> Result<Vec<NodeHandle>, TransportError> {
    let bound: Vec<BoundNode> = (0..n)
        .map(|i| bind_with_retry_on(transport, ParticipantId::new(i), "127.0.0.1"))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<NodeAddr> = bound
        .iter()
        .map(BoundNode::addr)
        .collect::<Result<_, _>>()?;
    let book = AddressBook::new(addrs);
    bound
        .into_iter()
        .map(|b| {
            b.start_with(
                book.clone(),
                ProtocolConfig::accelerated(window, window),
                MembershipConfig::for_wall_clock(),
                NodeOptions {
                    datapath,
                    ..NodeOptions::default()
                },
            )
        })
        .collect()
}

fn await_operational(handles: &[NodeHandle]) -> Result<(), String> {
    let deadline = Instant::now() + FORM_TIMEOUT;
    while Instant::now() < deadline {
        if handles
            .iter()
            .all(|h| h.membership_state() == StateKind::Operational)
        {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Err("ring did not reach Operational in time".to_string())
}

/// Runs one path: forms a ring, saturates it from every node for `secs`
/// of wall clock while draining deliveries, and returns the hot-path
/// counter deltas over the measurement window.
fn run_path(
    label: &'static str,
    args: &Args,
    datapath: Datapath,
    transport: Transport,
) -> Result<PathResult, String> {
    let handles = spawn_ring(args.nodes, args.window, datapath, transport)
        .map_err(|e| format!("spawn: {e}"))?;
    await_operational(&handles)?;
    let probes: Vec<_> = handles.iter().map(NodeHandle::probe).collect();

    let stop = AtomicBool::new(false);
    let delivered = AtomicU64::new(0);
    let payload = Bytes::from(vec![0x5au8; PAYLOAD_LEN]);

    // Warm up briefly so ring formation traffic and pool cold misses are
    // outside the measured window.
    let warmup = Duration::from_millis(250);
    let measure = Duration::from_secs_f64(args.secs);

    let (start_stats, rings_before): (Vec<_>, u64) = std::thread::scope(|s| {
        // Saturating submitter per node. The command queue holds 4096
        // entries, so sleeping (rather than spinning) on backpressure
        // keeps it full without stealing timeslices from the event loops
        // — essential on small machines where everything shares cores.
        for h in &handles {
            let stop = &stop;
            let payload = payload.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match h.submit(payload.clone(), Service::Agreed) {
                        Ok(()) => {}
                        Err(SubmitError::Backlogged) => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(SubmitError::Stopped) => break,
                    }
                }
            });
        }
        // Drainer per node: deliveries must be consumed (and their pooled
        // payload slices dropped) or daemon memory grows without bound.
        // One blocking wait, then an exhaustive drain, per wakeup.
        for h in &handles {
            let stop = &stop;
            let delivered = &delivered;
            s.spawn(move || loop {
                match h.events().recv_timeout(Duration::from_millis(50)) {
                    Ok(ev) => {
                        let mut n = matches!(ev, AppEvent::Delivered(_)) as u64;
                        while let Ok(ev) = h.events().try_recv() {
                            n += matches!(ev, AppEvent::Delivered(_)) as u64;
                        }
                        delivered.fetch_add(n, Ordering::Relaxed);
                    }
                    Err(_) => {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                }
            });
        }

        std::thread::sleep(warmup);
        let start_stats: Vec<_> = probes.iter().map(|p| p.stats()).collect();
        let rings_before = handles.iter().map(NodeHandle::rings_formed).sum::<u64>();
        delivered.store(0, Ordering::Relaxed);
        std::thread::sleep(measure);
        stop.store(true, Ordering::Relaxed);
        (start_stats, rings_before)
    });
    let end_stats: Vec<_> = probes.iter().map(|p| p.stats()).collect();

    let mut datagrams = 0u64;
    let mut syscalls = 0u64;
    let mut decode_failures = 0u64;
    let mut send_errors = 0u64;
    let mut pool_hits = 0u64;
    let mut pool_misses = 0u64;
    let mut submissions_shed = 0u64;
    let mut shm = ShmPathStats::default();
    for (a, b) in start_stats.iter().zip(&end_stats) {
        submissions_shed += b.submissions_shed - a.submissions_shed;
        datagrams +=
            (b.hot.datagrams_rx - a.hot.datagrams_rx) + (b.hot.datagrams_tx - a.hot.datagrams_tx);
        syscalls +=
            (b.hot.syscalls_rx - a.hot.syscalls_rx) + (b.hot.syscalls_tx - a.hot.syscalls_tx);
        decode_failures += b.decode_failures - a.decode_failures;
        send_errors += b.send_errors - a.send_errors;
        pool_hits += b.hot.pool_hits - a.hot.pool_hits;
        pool_misses += b.hot.pool_misses - a.hot.pool_misses;
        shm.absorb(&ShmPathStats {
            slots_published: b.shm.slots_published - a.shm.slots_published,
            slots_consumed: b.shm.slots_consumed - a.shm.slots_consumed,
            datagrams_published: b.shm.datagrams_published - a.shm.datagrams_published,
            datagrams_consumed: b.shm.datagrams_consumed - a.shm.datagrams_consumed,
            doorbell_rings: b.shm.doorbell_rings - a.shm.doorbell_rings,
            doorbell_wakeups: b.shm.doorbell_wakeups - a.shm.doorbell_wakeups,
            ring_full_drops: b.shm.ring_full_drops - a.shm.ring_full_drops,
        });
    }
    let delivered_count = delivered.load(Ordering::Relaxed);
    let token_retransmits = handles
        .iter()
        .map(NodeHandle::tokens_retransmitted)
        .sum::<u64>();
    let rings_reformed = handles
        .iter()
        .map(NodeHandle::rings_formed)
        .sum::<u64>()
        .saturating_sub(rings_before);

    // Tear the ring down and verify every pooled buffer came home: the
    // event channels die with the handles, dropping any payload slices
    // still pinning pool leases.
    for h in handles {
        h.shutdown();
    }
    let leak_deadline = Instant::now() + Duration::from_secs(2);
    let mut outstanding = probes.iter().map(|p| p.pool_outstanding()).sum::<u64>();
    while outstanding > 0 && Instant::now() < leak_deadline {
        std::thread::sleep(Duration::from_millis(10));
        outstanding = probes.iter().map(|p| p.pool_outstanding()).sum();
    }

    Ok(PathResult {
        label,
        elapsed_secs: measure.as_secs_f64(),
        datagrams,
        syscalls,
        delivered: delivered_count,
        decode_failures,
        send_errors,
        pool_hits,
        pool_misses,
        pool_outstanding: outstanding,
        token_retransmits,
        rings_reformed,
        submissions_shed,
        shm,
    })
}

fn print_row(r: &PathResult) {
    println!(
        "{:>13}  {:>12.0} dgrams/s  {:>7.4} syscalls/dgram  {:>6.2} avg batch  \
         {:>9} delivered  {:>5.1}% pool hits  {:>5} token rexmt  {:>3} reforms",
        r.label,
        r.datagrams_per_sec(),
        r.syscalls_per_datagram(),
        r.avg_batch(),
        r.delivered,
        r.pool_hit_rate() * 100.0,
        r.token_retransmits,
        r.rings_reformed,
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("packet_path: {e}");
            eprintln!("usage: packet_path [--nodes N] [--secs S] [--window W]");
            return ExitCode::from(2);
        }
    };

    println!(
        "# packet_path: {} nodes, window {}, {}B payloads, {:.1}s per path, saturating senders",
        args.nodes, args.window, PAYLOAD_LEN, args.secs
    );

    let old = match run_path("per_datagram", &args, Datapath::PerDatagram, Transport::Udp) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("packet_path: per-datagram path: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_row(&old);
    let new = match run_path("batched", &args, Datapath::Batched, Transport::Udp) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("packet_path: batched path: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_row(&new);
    let shm = match run_path("shm", &args, Datapath::Batched, Transport::Shm) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("packet_path: shm path: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_row(&shm);

    // Transport-isolated link floods: same payload, no protocol on top.
    let link_secs = args.secs.min(2.0);
    let link_old = match run_link("link_per_datagram", LinkMode::UdpPerDatagram, link_secs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("packet_path: {e}");
            return ExitCode::FAILURE;
        }
    };
    let link_new = match run_link("link_batched", LinkMode::UdpBatched, link_secs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("packet_path: {e}");
            return ExitCode::FAILURE;
        }
    };
    let link_shm = match run_link("link_shm", LinkMode::Shm, link_secs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("packet_path: {e}");
            return ExitCode::FAILURE;
        }
    };
    for r in [&link_old, &link_new, &link_shm] {
        println!(
            "{:>17}  {:>12.0} dgrams/s  {:>7.4} syscalls/dgram",
            r.label,
            r.datagrams_per_sec(),
            r.syscalls_per_datagram(),
        );
    }

    let speedup = if old.datagrams_per_sec() > 0.0 {
        new.datagrams_per_sec() / old.datagrams_per_sec()
    } else {
        0.0
    };
    let shm_speedup = if new.datagrams_per_sec() > 0.0 {
        shm.datagrams_per_sec() / new.datagrams_per_sec()
    } else {
        0.0
    };
    let link_shm_speedup = if link_new.datagrams_per_sec() > 0.0 {
        link_shm.datagrams_per_sec() / link_new.datagrams_per_sec()
    } else {
        0.0
    };
    println!(
        "speedup: {speedup:.2}x datagrams/sec ({:.4} -> {:.4} syscalls/datagram)",
        old.syscalls_per_datagram(),
        new.syscalls_per_datagram(),
    );
    println!(
        "shm speedup: {shm_speedup:.2}x datagrams/sec over batched udp \
         ({:.4} -> {:.4} syscalls/datagram, {:.0} datagrams/doorbell wakeup, \
         {} ring-full drops)",
        new.syscalls_per_datagram(),
        shm.syscalls_per_datagram(),
        shm.shm.datagrams_per_wakeup(),
        shm.shm.ring_full_drops,
    );
    println!(
        "link shm speedup: {link_shm_speedup:.2}x datagrams/sec over batched udp \
         ({:.4} -> {:.4} syscalls/datagram, transport isolated)",
        link_new.syscalls_per_datagram(),
        link_shm.syscalls_per_datagram(),
    );

    let json = format!(
        "{{\n  \"bench\": \"packet_path\",\n  \"nodes\": {},\n  \"window\": {},\n  \
         \"payload_len\": {},\n  \
         \"measure_secs\": {:.1},\n  \"per_datagram\": {},\n  \"batched\": {},\n  \
         \"shm\": {},\n  \
         \"link_per_datagram\": {},\n  \"link_batched\": {},\n  \"link_shm\": {},\n  \
         \"speedup_datagrams_per_sec\": {:.3},\n  \
         \"speedup_shm_vs_batched\": {:.3},\n  \
         \"link_speedup_shm_vs_batched\": {:.3}\n}}\n",
        args.nodes,
        args.window,
        PAYLOAD_LEN,
        args.secs,
        old.json(),
        new.json(),
        shm.json(),
        link_old.json(),
        link_new.json(),
        link_shm.json(),
        speedup,
        shm_speedup,
        link_shm_speedup,
    );
    if let Err(e) = std::fs::write("BENCH_packet_path.json", &json) {
        eprintln!("packet_path: writing BENCH_packet_path.json: {e}");
        return ExitCode::FAILURE;
    }

    // CI smoke gate: a decode error means the zero-copy parse corrupted
    // the wire; a leaked lease means a pooled buffer never came home.
    let mut failed = false;
    for r in [&old, &new, &shm] {
        if r.decode_failures > 0 {
            eprintln!(
                "packet_path: {} path saw {} wire decode errors",
                r.label, r.decode_failures
            );
            failed = true;
        }
        if r.pool_outstanding > 0 {
            eprintln!(
                "packet_path: {} path leaked {} pooled buffers",
                r.label, r.pool_outstanding
            );
            failed = true;
        }
    }
    // The shm packet path must be syscall-free: the link flood never
    // sleeps, so a single syscall means the ring fell back to the kernel.
    if link_shm.syscalls != 0 {
        eprintln!(
            "packet_path: shm link flood issued {} syscalls (expected 0)",
            link_shm.syscalls
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("packet_path: clean (no decode errors, no pool leaks, syscall-free shm path)");
    ExitCode::SUCCESS
}
