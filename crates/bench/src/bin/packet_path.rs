//! Hot-datapath microbenchmark: the batched (`recvmmsg`/`sendmmsg`,
//! pooled, encode-once) packet path against the legacy one-syscall-per-
//! datagram path, on a real localhost UDP ring under saturating senders.
//!
//! ```text
//! cargo run --release --bin packet_path
//! cargo run --release --bin packet_path -- --nodes 4 --secs 3
//! ```
//!
//! Reports datagrams/sec, syscalls/datagram, average batch size, and pool
//! hit rate per path, prints the speedup, and writes the whole run as
//! `BENCH_packet_path.json`. Exits non-zero if either path saw wire
//! decode errors or leaked pooled buffers — the CI smoke gate.
//! Honors `ACCELRING_BENCH_QUALITY` (`quick`/`full`) for the default
//! measurement window.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use accelring_bench::Quality;
use accelring_core::{ParticipantId, ProtocolConfig, Service};
use accelring_membership::{MembershipConfig, StateKind};
use accelring_transport::{
    bind_with_retry, AddressBook, AppEvent, BoundNode, Datapath, NodeAddr, NodeHandle, NodeOptions,
    SubmitError, TransportError,
};
use bytes::Bytes;

/// Payload size, the paper's standard 1350-byte datagram.
const PAYLOAD_LEN: usize = 1350;

/// How long to wait for the ring to form before giving up.
const FORM_TIMEOUT: Duration = Duration::from_secs(10);

struct Args {
    nodes: u16,
    secs: f64,
    window: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 4,
        secs: match Quality::from_env() {
            Quality::Quick => 2.0,
            Quality::Full => 8.0,
        },
        window: 30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--secs" => {
                args.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?;
            }
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.nodes < 2 {
        return Err(format!("--nodes: need at least 2, got {}", args.nodes));
    }
    if args.window < 1 {
        return Err("--window: need at least 1".to_string());
    }
    Ok(args)
}

/// One path's measured numbers.
struct PathResult {
    label: &'static str,
    elapsed_secs: f64,
    datagrams: u64,
    syscalls: u64,
    delivered: u64,
    decode_failures: u64,
    send_errors: u64,
    pool_hits: u64,
    pool_misses: u64,
    pool_outstanding: u64,
    token_retransmits: u64,
    rings_reformed: u64,
    submissions_shed: u64,
}

impl PathResult {
    fn datagrams_per_sec(&self) -> f64 {
        self.datagrams as f64 / self.elapsed_secs
    }

    fn syscalls_per_datagram(&self) -> f64 {
        if self.datagrams == 0 {
            return 0.0;
        }
        self.syscalls as f64 / self.datagrams as f64
    }

    fn avg_batch(&self) -> f64 {
        if self.syscalls == 0 {
            return 0.0;
        }
        self.datagrams as f64 / self.syscalls as f64
    }

    fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            return 0.0;
        }
        self.pool_hits as f64 / total as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"datagrams\": {}, \"syscalls\": {}, \"elapsed_secs\": {:.3}, \
             \"datagrams_per_sec\": {:.1}, \"syscalls_per_datagram\": {:.4}, \
             \"avg_batch\": {:.2}, \"delivered\": {}, \"decode_failures\": {}, \
             \"send_errors\": {}, \"pool_hits\": {}, \"pool_misses\": {}, \
             \"pool_hit_rate\": {:.4}, \"pool_outstanding\": {}, \
             \"token_retransmits\": {}, \"rings_reformed\": {}, \
             \"submissions_shed\": {}}}",
            self.datagrams,
            self.syscalls,
            self.elapsed_secs,
            self.datagrams_per_sec(),
            self.syscalls_per_datagram(),
            self.avg_batch(),
            self.delivered,
            self.decode_failures,
            self.send_errors,
            self.pool_hits,
            self.pool_misses,
            self.pool_hit_rate(),
            self.pool_outstanding,
            self.token_retransmits,
            self.rings_reformed,
            self.submissions_shed,
        )
    }
}

/// Spawns a fully meshed localhost ring running the given datapath.
fn spawn_ring(n: u16, window: u32, datapath: Datapath) -> Result<Vec<NodeHandle>, TransportError> {
    let bound: Vec<BoundNode> = (0..n)
        .map(|i| bind_with_retry(ParticipantId::new(i), "127.0.0.1"))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<NodeAddr> = bound
        .iter()
        .map(BoundNode::addr)
        .collect::<Result<_, _>>()?;
    let book = AddressBook::new(addrs);
    bound
        .into_iter()
        .map(|b| {
            b.start_with(
                book.clone(),
                ProtocolConfig::accelerated(window, window),
                MembershipConfig::for_wall_clock(),
                NodeOptions {
                    datapath,
                    ..NodeOptions::default()
                },
            )
        })
        .collect()
}

fn await_operational(handles: &[NodeHandle]) -> Result<(), String> {
    let deadline = Instant::now() + FORM_TIMEOUT;
    while Instant::now() < deadline {
        if handles
            .iter()
            .all(|h| h.membership_state() == StateKind::Operational)
        {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Err("ring did not reach Operational in time".to_string())
}

/// Runs one path: forms a ring, saturates it from every node for `secs`
/// of wall clock while draining deliveries, and returns the hot-path
/// counter deltas over the measurement window.
fn run_path(label: &'static str, args: &Args, datapath: Datapath) -> Result<PathResult, String> {
    let handles =
        spawn_ring(args.nodes, args.window, datapath).map_err(|e| format!("spawn: {e}"))?;
    await_operational(&handles)?;
    let probes: Vec<_> = handles.iter().map(NodeHandle::probe).collect();

    let stop = AtomicBool::new(false);
    let delivered = AtomicU64::new(0);
    let payload = Bytes::from(vec![0x5au8; PAYLOAD_LEN]);

    // Warm up briefly so ring formation traffic and pool cold misses are
    // outside the measured window.
    let warmup = Duration::from_millis(250);
    let measure = Duration::from_secs_f64(args.secs);

    let (start_stats, rings_before): (Vec<_>, u64) = std::thread::scope(|s| {
        // Saturating submitter per node. The command queue holds 4096
        // entries, so sleeping (rather than spinning) on backpressure
        // keeps it full without stealing timeslices from the event loops
        // — essential on small machines where everything shares cores.
        for h in &handles {
            let stop = &stop;
            let payload = payload.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match h.submit(payload.clone(), Service::Agreed) {
                        Ok(()) => {}
                        Err(SubmitError::Backlogged) => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(SubmitError::Stopped) => break,
                    }
                }
            });
        }
        // Drainer per node: deliveries must be consumed (and their pooled
        // payload slices dropped) or daemon memory grows without bound.
        // One blocking wait, then an exhaustive drain, per wakeup.
        for h in &handles {
            let stop = &stop;
            let delivered = &delivered;
            s.spawn(move || loop {
                match h.events().recv_timeout(Duration::from_millis(50)) {
                    Ok(ev) => {
                        let mut n = matches!(ev, AppEvent::Delivered(_)) as u64;
                        while let Ok(ev) = h.events().try_recv() {
                            n += matches!(ev, AppEvent::Delivered(_)) as u64;
                        }
                        delivered.fetch_add(n, Ordering::Relaxed);
                    }
                    Err(_) => {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                }
            });
        }

        std::thread::sleep(warmup);
        let start_stats: Vec<_> = probes.iter().map(|p| p.stats()).collect();
        let rings_before = handles.iter().map(NodeHandle::rings_formed).sum::<u64>();
        delivered.store(0, Ordering::Relaxed);
        std::thread::sleep(measure);
        stop.store(true, Ordering::Relaxed);
        (start_stats, rings_before)
    });
    let end_stats: Vec<_> = probes.iter().map(|p| p.stats()).collect();

    let mut datagrams = 0u64;
    let mut syscalls = 0u64;
    let mut decode_failures = 0u64;
    let mut send_errors = 0u64;
    let mut pool_hits = 0u64;
    let mut pool_misses = 0u64;
    let mut submissions_shed = 0u64;
    for (a, b) in start_stats.iter().zip(&end_stats) {
        submissions_shed += b.submissions_shed - a.submissions_shed;
        datagrams +=
            (b.hot.datagrams_rx - a.hot.datagrams_rx) + (b.hot.datagrams_tx - a.hot.datagrams_tx);
        syscalls +=
            (b.hot.syscalls_rx - a.hot.syscalls_rx) + (b.hot.syscalls_tx - a.hot.syscalls_tx);
        decode_failures += b.decode_failures - a.decode_failures;
        send_errors += b.send_errors - a.send_errors;
        pool_hits += b.hot.pool_hits - a.hot.pool_hits;
        pool_misses += b.hot.pool_misses - a.hot.pool_misses;
    }
    let delivered_count = delivered.load(Ordering::Relaxed);
    let token_retransmits = handles
        .iter()
        .map(NodeHandle::tokens_retransmitted)
        .sum::<u64>();
    let rings_reformed = handles
        .iter()
        .map(NodeHandle::rings_formed)
        .sum::<u64>()
        .saturating_sub(rings_before);

    // Tear the ring down and verify every pooled buffer came home: the
    // event channels die with the handles, dropping any payload slices
    // still pinning pool leases.
    for h in handles {
        h.shutdown();
    }
    let leak_deadline = Instant::now() + Duration::from_secs(2);
    let mut outstanding = probes.iter().map(|p| p.pool_outstanding()).sum::<u64>();
    while outstanding > 0 && Instant::now() < leak_deadline {
        std::thread::sleep(Duration::from_millis(10));
        outstanding = probes.iter().map(|p| p.pool_outstanding()).sum();
    }

    Ok(PathResult {
        label,
        elapsed_secs: measure.as_secs_f64(),
        datagrams,
        syscalls,
        delivered: delivered_count,
        decode_failures,
        send_errors,
        pool_hits,
        pool_misses,
        pool_outstanding: outstanding,
        token_retransmits,
        rings_reformed,
        submissions_shed,
    })
}

fn print_row(r: &PathResult) {
    println!(
        "{:>13}  {:>12.0} dgrams/s  {:>7.4} syscalls/dgram  {:>6.2} avg batch  \
         {:>9} delivered  {:>5.1}% pool hits  {:>5} token rexmt  {:>3} reforms",
        r.label,
        r.datagrams_per_sec(),
        r.syscalls_per_datagram(),
        r.avg_batch(),
        r.delivered,
        r.pool_hit_rate() * 100.0,
        r.token_retransmits,
        r.rings_reformed,
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("packet_path: {e}");
            eprintln!("usage: packet_path [--nodes N] [--secs S] [--window W]");
            return ExitCode::from(2);
        }
    };

    println!(
        "# packet_path: {} nodes, window {}, {}B payloads, {:.1}s per path, saturating senders",
        args.nodes, args.window, PAYLOAD_LEN, args.secs
    );

    let old = match run_path("per_datagram", &args, Datapath::PerDatagram) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("packet_path: per-datagram path: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_row(&old);
    let new = match run_path("batched", &args, Datapath::Batched) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("packet_path: batched path: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_row(&new);

    let speedup = if old.datagrams_per_sec() > 0.0 {
        new.datagrams_per_sec() / old.datagrams_per_sec()
    } else {
        0.0
    };
    println!(
        "speedup: {speedup:.2}x datagrams/sec ({:.4} -> {:.4} syscalls/datagram)",
        old.syscalls_per_datagram(),
        new.syscalls_per_datagram(),
    );

    let json = format!(
        "{{\n  \"bench\": \"packet_path\",\n  \"nodes\": {},\n  \"window\": {},\n  \
         \"payload_len\": {},\n  \
         \"measure_secs\": {:.1},\n  \"per_datagram\": {},\n  \"batched\": {},\n  \
         \"speedup_datagrams_per_sec\": {:.3}\n}}\n",
        args.nodes,
        args.window,
        PAYLOAD_LEN,
        args.secs,
        old.json(),
        new.json(),
        speedup,
    );
    if let Err(e) = std::fs::write("BENCH_packet_path.json", &json) {
        eprintln!("packet_path: writing BENCH_packet_path.json: {e}");
        return ExitCode::FAILURE;
    }

    // CI smoke gate: a decode error means the zero-copy parse corrupted
    // the wire; a leaked lease means a pooled buffer never came home.
    let mut failed = false;
    for r in [&old, &new] {
        if r.decode_failures > 0 {
            eprintln!(
                "packet_path: {} path saw {} wire decode errors",
                r.label, r.decode_failures
            );
            failed = true;
        }
        if r.pool_outstanding > 0 {
            eprintln!(
                "packet_path: {} path leaked {} pooled buffers",
                r.label, r.pool_outstanding
            );
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("packet_path: clean (no decode errors, no pool leaks)");
    ExitCode::SUCCESS
}
