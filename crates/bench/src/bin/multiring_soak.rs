//! Multi-ring chaos soak: seeded fault schedules against R independent
//! rings, the full per-ring EVS check plus the cross-ring
//! order-agreement invariant per seed. Every schedule includes a
//! ring-targeted partition on ring 0 and a daemon kill on the last
//! ring, alongside the generated faults. Each seed also runs the KV
//! replica divergence case: a mixed cross-ring workload consumed
//! straight-through versus through a random snapshot cut with
//! overlapping replay, with state-hash beacons compared at equal
//! order positions.
//!
//! ```text
//! cargo run --release --bin multiring_soak -- --seed 7
//! cargo run --release --bin multiring_soak -- --seeds 0..100 --rings 2 --events 90
//! ```
//!
//! Exits non-zero if any seed violates an invariant; `--seed N` replays
//! the run exactly.
use std::process::ExitCode;

use accelring_bench::kv_divergence_case;
use accelring_multiring::{run_multiring_chaos, MultiRingChaosConfig};

struct Args {
    seeds: std::ops::Range<u64>,
    rings: u16,
    nodes: u16,
    events: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 0..100,
        rings: 2,
        nodes: 5,
        events: 90,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                let s: u64 = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                args.seeds = s..s + 1;
            }
            "--seeds" => {
                let v = value("--seeds")?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds wants A..B, got {v}"))?;
                let a: u64 = a.parse().map_err(|e| format!("--seeds: {e}"))?;
                let b: u64 = b.parse().map_err(|e| format!("--seeds: {e}"))?;
                if a >= b {
                    return Err(format!("--seeds: empty range {a}..{b}"));
                }
                args.seeds = a..b;
            }
            "--rings" => {
                args.rings = value("--rings")?
                    .parse()
                    .map_err(|e| format!("--rings: {e}"))?;
            }
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.rings < 1 {
        return Err("--rings: need at least 1".into());
    }
    if args.nodes < 3 {
        return Err(format!("--nodes: need at least 3, got {}", args.nodes));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("multiring_soak: {e}");
            eprintln!(
                "usage: multiring_soak [--seed N | --seeds A..B] [--rings N] [--nodes N] [--events N]"
            );
            return ExitCode::from(2);
        }
    };
    let mut failures = 0u32;
    let total = args.seeds.end - args.seeds.start;
    for seed in args.seeds.clone() {
        let report = run_multiring_chaos(MultiRingChaosConfig {
            rings: args.rings,
            nodes_per_ring: args.nodes,
            seed,
            events: args.events,
            lambda: 1,
        });
        println!("{}", report.render());
        if !report.ok() {
            failures += 1;
        }
        let kv = kv_divergence_case(seed);
        if kv.ok() {
            println!("seed {seed}: kv replicas agree (no divergence, exactly-once commits)");
        } else {
            println!(
                "seed {seed}: KV VIOLATIONS: {} divergence, {} dedup",
                kv.divergence, kv.dedup
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("multiring_soak: {failures}/{total} seed(s) violated invariants");
        return ExitCode::FAILURE;
    }
    println!(
        "multiring_soak: {total} seed(s) clean ({} rings x {} nodes, {} events each)",
        args.rings, args.nodes, args.events
    );
    ExitCode::SUCCESS
}
