//! Figure 11: latency vs per-daemon loss rate at 140 Mbps goodput, 1 Gb.
use accelring_bench::{figure_loss, Quality};
use accelring_sim::harness::format_table;
use accelring_sim::NetworkProfile;

fn main() {
    let curves = figure_loss(Quality::from_env(), NetworkProfile::gigabit(), 140);
    print!(
        "{}",
        format_table(
            "Figure 11: latency vs loss, 140 Mbps goodput, 1Gb",
            "loss %",
            &curves
        )
    );
}
