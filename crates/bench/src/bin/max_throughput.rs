//! The headline maximum-throughput numbers of Section IV: saturating
//! senders, both networks, all three implementations, both protocols.
use accelring_bench::{format_max_throughput, max_throughput_table, Quality};

fn main() {
    let rows = max_throughput_table(Quality::from_env());
    print!("{}", format_max_throughput(&rows));
}
