//! Figure 9: latency vs per-daemon loss rate at 480 Mbps goodput on the
//! 10 Gb network (mean and worst-5% columns).
use accelring_bench::{figure_loss, Quality};
use accelring_sim::harness::format_table;
use accelring_sim::NetworkProfile;

fn main() {
    let curves = figure_loss(Quality::from_env(), NetworkProfile::ten_gigabit(), 480);
    print!(
        "{}",
        format_table(
            "Figure 9: latency vs loss, 480 Mbps goodput, 10Gb",
            "loss %",
            &curves
        )
    );
}
