//! Replicated-KV end-to-end benchmark: an open-loop client drives a
//! mixed single-key/transaction workload into a live localhost
//! multi-ring deployment (2 rings × 3 daemons, 4 partitions, replicas
//! on every daemon) and measures submit→apply latency at a replica —
//! the first user-visible number the ordering stack produces. A second
//! phase sweeps ≥100 seeded in-process chaos cases through the KV
//! divergence/dedup checker (random merge interleavings, snapshot cuts
//! with overlapping replay).
//!
//! ```text
//! cargo run --release --bin kv
//! cargo run --release --bin kv -- --secs 10 --gap-us 2000 --sweep 200
//! ```
//!
//! Writes the run as `BENCH_kv.json`. Exits non-zero if any op is lost
//! or doubled, if the replicas' final states diverge, or if any sweep
//! seed reports a violation — the CI smoke gate. Honors
//! `ACCELRING_BENCH_QUALITY` (`quick`/`full`).

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use accelring_bench::{kv_divergence_case, Quality};
use accelring_core::{ProtocolConfig, RingIdx, Service};
use accelring_daemon::{FrontendOptions, SessionClient};
use accelring_kv::{
    encode_op, involved_partitions, partition_of, KvConfig, KvOp, KvShared, KvStore, KvWrite,
};
use accelring_membership::MembershipConfig;
use accelring_multiring::{MultiRingDaemon, MultiRingOptions, ShardMap};
use accelring_transport::spawn_local_multiring;
use bytes::Bytes;
use crossbeam::channel::unbounded;

const RINGS: u16 = 2;
const NODES: u16 = 3;
const PARTS: u16 = 4;

struct Args {
    secs: f64,
    gap_us: u64,
    seed: u64,
    sweep: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        secs: match Quality::from_env() {
            Quality::Quick => 4.0,
            Quality::Full => 10.0,
        },
        gap_us: 3000,
        seed: 42,
        sweep: match Quality::from_env() {
            Quality::Quick => 120,
            Quality::Full => 200,
        },
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--secs" => {
                args.secs = value("--secs")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?;
            }
            "--gap-us" => {
                args.gap_us = value("--gap-us")?
                    .parse()
                    .map_err(|e| format!("--gap-us: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--sweep" => {
                args.sweep = value("--sweep")?
                    .parse()
                    .map_err(|e| format!("--sweep: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.secs < 1.0 {
        return Err("--secs: need at least 1".to_string());
    }
    if args.gap_us < 100 {
        return Err("--gap-us: need at least 100".to_string());
    }
    Ok(args)
}

fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS);
    for p in 0..PARTS {
        map.assign(&format!("kv.{p}"), RingIdx::new(p % RINGS));
    }
    map
}

/// Brute-forces a key that hashes into `part`.
fn key_in(tag: &str, part: &str) -> String {
    for i in 0..10_000u32 {
        let k = format!("{tag}-{i}");
        if partition_of(&k, PARTS) == part {
            return k;
        }
    }
    panic!("no key for partition {part}")
}

/// The percentile (`q` in `[0, 1]`) of an already-sorted sample, in
/// microseconds.
fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e6
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("kv: {e}");
            eprintln!("usage: kv [--secs S] [--gap-us N] [--seed N] [--sweep N]");
            return ExitCode::from(2);
        }
    };

    // --- Live phase: 2 rings × 3 daemons, a replica on each. ---
    let shareds: Vec<Arc<KvShared>> = (0..NODES).map(|_| KvShared::new(PARTS)).collect();
    let handles = match spawn_local_multiring(
        RINGS,
        NODES,
        ProtocolConfig::default(),
        MembershipConfig::for_wall_clock(),
        &[],
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("kv: rings failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut columns: Vec<Vec<_>> = (0..NODES).map(|_| Vec::new()).collect();
    for ring in handles {
        for (i, node) in ring.into_iter().enumerate() {
            columns[i].push(node);
        }
    }
    let daemons: Vec<MultiRingDaemon> = columns
        .into_iter()
        .zip(&shareds)
        .map(|(nodes, shared)| {
            MultiRingDaemon::start_with(
                nodes,
                shards(),
                MultiRingOptions {
                    frontend: FrontendOptions::enabled(),
                    app_state: Some(shared.clone()),
                    ..MultiRingOptions::default()
                },
            )
        })
        .collect();
    let (applied_tx, applied_rx) = unbounded();
    let stores: Vec<KvStore> = (0..NODES as usize)
        .map(|i| {
            KvStore::start(
                &daemons[i],
                shareds[i].clone(),
                KvConfig {
                    partitions: PARTS,
                    name: format!("replica-{i}"),
                    applied: (i == 0).then(|| applied_tx.clone()),
                    ..KvConfig::default()
                },
            )
            .expect("replica starts")
        })
        .collect();
    drop(applied_tx);
    let up = Instant::now() + Duration::from_secs(30);
    while !shareds.iter().all(|s| s.serving()) {
        if Instant::now() >= up {
            eprintln!("kv: replicas never all started serving");
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Applied records are timestamped live on their own thread, so
    // latency reflects when replica 0 committed each op, not when this
    // thread drained the channel.
    let stop = Arc::new(AtomicBool::new(false));
    let collector = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut got: Vec<(Instant, u64)> = Vec::new();
            loop {
                match applied_rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(rec) if rec.client == "load" => got.push((Instant::now(), rec.seq)),
                    Ok(_) => {}
                    Err(_) => {
                        if stop.load(Ordering::Relaxed) {
                            while let Ok(rec) = applied_rx.try_recv() {
                                if rec.client == "load" {
                                    got.push((Instant::now(), rec.seq));
                                }
                            }
                            return got;
                        }
                    }
                }
            }
        })
    };

    let addr0 = daemons[0].session_addr().expect("session socket");
    let mut session = match SessionClient::connect(addr0, "load") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("kv: session connect: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Open-loop mixed workload: every fourth op is a transaction over
    // two keys pinned to different rings; the rest are single-key puts
    // round-robining the key space.
    let txn_a = key_in("txa", "kv.0");
    let txn_b = key_in("txb", "kv.1");
    let run = Duration::from_secs_f64(args.secs);
    let gap = Duration::from_micros(args.gap_us);
    // seq → (submit time, is_txn, groups, payload), kept for in-doubt
    // resubmission during reconciliation.
    let mut submitted: BTreeMap<u64, (Instant, bool, Vec<String>, Bytes)> = BTreeMap::new();
    let start = Instant::now();
    let mut counter = 0u64;
    while start.elapsed() < run {
        let is_txn = counter % 4 == 3;
        let op = if is_txn {
            KvOp::Write {
                writes: vec![
                    KvWrite::Put {
                        key: txn_a.clone(),
                        value: Bytes::from(format!("t{counter}")),
                    },
                    KvWrite::Put {
                        key: txn_b.clone(),
                        value: Bytes::from(format!("t{counter}")),
                    },
                ],
            }
        } else {
            KvOp::Write {
                writes: vec![KvWrite::Put {
                    key: format!("bench-{}", counter % 16),
                    value: Bytes::from(format!("v{counter}")),
                }],
            }
        };
        let payload = encode_op(&op);
        let groups: Vec<String> = involved_partitions(&op, PARTS).into_iter().collect();
        let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
        match session.multicast_sequenced(&refs, payload.clone(), Service::Agreed) {
            Ok(seq) => {
                submitted.insert(seq, (Instant::now(), is_txn, groups, payload));
            }
            Err(e) => {
                eprintln!("kv: submit: {e}");
                return ExitCode::FAILURE;
            }
        }
        counter += 1;
        std::thread::sleep(gap);
    }

    // Reconcile: every submitted seq must commit exactly once at the
    // replica; in-doubt seqs are resubmitted (exactly-once means the
    // retries cost nothing when the original landed).
    let mut resubmitted = 0u64;
    let reconcile = Instant::now() + Duration::from_secs(20);
    loop {
        std::thread::sleep(Duration::from_millis(300));
        let seen: std::collections::BTreeSet<u64> = shareds[0].with_machine(|m| {
            submitted
                .keys()
                .filter(|&&s| submitted[&s].2.iter().all(|g| m.mark(g, "load") >= s))
                .copied()
                .collect()
        });
        let missing: Vec<u64> = submitted
            .keys()
            .filter(|s| !seen.contains(s))
            .copied()
            .collect();
        if missing.is_empty() || Instant::now() >= reconcile {
            break;
        }
        for seq in missing {
            let (_, _, groups, payload) = &submitted[&seq];
            let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
            if session
                .resubmit(seq, &refs, payload.clone(), Service::Agreed)
                .is_ok()
            {
                resubmitted += 1;
            }
        }
    }

    // Convergence across all three replicas.
    let mut converged = false;
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let p: Vec<u64> = shareds.iter().map(|s| s.position()).collect();
        if p.iter().all(|&x| x == p[0]) {
            std::thread::sleep(Duration::from_millis(400));
            let q: Vec<u64> = shareds.iter().map(|s| s.position()).collect();
            if q == p {
                converged = true;
                break;
            }
        } else {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    stop.store(true, Ordering::Relaxed);
    let applied = collector.join().expect("collector thread");

    // Exactly-once accounting at replica 0.
    let mut seen_count: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, seq) in &applied {
        *seen_count.entry(*seq).or_default() += 1;
    }
    let lost = submitted
        .keys()
        .filter(|s| !seen_count.contains_key(s))
        .count();
    let doubled = seen_count.values().filter(|&&n| n > 1).count();

    let mut single: Vec<Duration> = Vec::new();
    let mut txn: Vec<Duration> = Vec::new();
    for (at, seq) in &applied {
        if let Some((sent, is_txn, _, _)) = submitted.get(seq) {
            let lat = at.saturating_duration_since(*sent);
            if *is_txn {
                txn.push(lat);
            } else {
                single.push(lat);
            }
        }
    }
    single.sort_unstable();
    txn.sort_unstable();

    let hashes: Vec<u64> = shareds.iter().map(|s| s.state_hash()).collect();
    let hashes_equal = hashes.iter().all(|&h| h == hashes[0]);
    let position = shareds[0].position();

    session.bye();
    for s in stores {
        s.shutdown();
    }
    for d in daemons {
        d.shutdown();
    }

    // --- Sweep phase: seeded divergence/dedup chaos cases. ---
    let mut divergence = 0usize;
    let mut dedup = 0usize;
    for s in 0..args.sweep {
        let r = kv_divergence_case(args.seed.wrapping_mul(1_000_003).wrapping_add(s));
        divergence += r.divergence;
        dedup += r.dedup;
    }

    let json = format!(
        "{{\n  \"bench\": \"kv\",\n  \"rings\": {RINGS},\n  \"nodes\": {NODES},\n  \
         \"partitions\": {PARTS},\n  \"seed\": {},\n  \"secs\": {:.1},\n  \
         \"send_gap_us\": {},\n  \"ops_submitted\": {},\n  \"single_ops\": {},\n  \
         \"txn_ops\": {},\n  \"applied_at_replica\": {},\n  \"resubmitted\": {resubmitted},\n  \
         \"single_p50_us\": {:.1},\n  \"single_p99_us\": {:.1},\n  \"single_p999_us\": {:.1},\n  \
         \"txn_p50_us\": {:.1},\n  \"txn_p99_us\": {:.1},\n  \"txn_p999_us\": {:.1},\n  \
         \"final_position\": {position},\n  \"replicas_converged\": {converged},\n  \
         \"state_hashes_equal\": {hashes_equal},\n  \"lost_ops\": {lost},\n  \
         \"doubled_ops\": {doubled},\n  \"divergence_seeds\": {},\n  \
         \"divergence_violations\": {divergence},\n  \"dedup_violations\": {dedup}\n}}\n",
        args.seed,
        args.secs,
        args.gap_us,
        submitted.len(),
        single.len(),
        txn.len(),
        applied.len(),
        percentile(&single, 0.50),
        percentile(&single, 0.99),
        percentile(&single, 0.999),
        percentile(&txn, 0.50),
        percentile(&txn, 0.99),
        percentile(&txn, 0.999),
        args.sweep,
    );
    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_kv.json", &json) {
        eprintln!("kv: writing BENCH_kv.json: {e}");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    if lost > 0 {
        eprintln!("kv: {lost} ops lost");
        failed = true;
    }
    if doubled > 0 {
        eprintln!("kv: {doubled} ops applied more than once");
        failed = true;
    }
    if !converged || !hashes_equal {
        eprintln!("kv: replicas diverged (converged={converged}, hashes {hashes:x?})");
        failed = true;
    }
    if divergence > 0 || dedup > 0 {
        eprintln!("kv: sweep violations: {divergence} divergence, {dedup} dedup");
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "kv: clean ({} ops, single p50/p99 {:.0}/{:.0} us, txn p50/p99 {:.0}/{:.0} us, {} sweep seeds)",
        submitted.len(),
        percentile(&single, 0.50),
        percentile(&single, 0.99),
        percentile(&txn, 0.50),
        percentile(&txn, 0.99),
        args.sweep,
    );
    ExitCode::SUCCESS
}
