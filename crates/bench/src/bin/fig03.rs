//! Figure 3: Safe delivery latency vs throughput, 1 Gb network.
use accelring_bench::{figure_03, Quality};
use accelring_sim::harness::format_table;

fn main() {
    let curves = figure_03(Quality::from_env());
    print!(
        "{}",
        format_table(
            "Figure 3: Safe latency vs throughput, 1Gb",
            "offered Mbps",
            &curves
        )
    );
}
