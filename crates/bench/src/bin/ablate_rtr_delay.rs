//! Ablation: the one-round retransmission-request delay vs requesting
//! immediately under the accelerated protocol.
use accelring_bench::{ablate_rtr_delay, Quality};

fn main() {
    println!("# Ablation: retransmission request delay (accelerated, 350 Mbps, 1Gb)");
    println!("{:>28} {:>16} {:>12}", "policy", "retrans/msg", "mean us");
    for (label, rate, latency) in ablate_rtr_delay(Quality::from_env()) {
        println!("{label:>28} {rate:>16.4} {latency:>12.1}");
    }
}
