//! Figure 13: the effect of the ring distance between a daemon losing
//! messages and the daemon it loses from (20% loss from the daemon k
//! positions before).
use accelring_bench::{figure_13, Quality};
use accelring_sim::harness::format_table;

fn main() {
    let curves = figure_13(Quality::from_env());
    print!(
        "{}",
        format_table(
            "Figure 13: latency vs ring distance of the lossy pair",
            "distance",
            &curves
        )
    );
}
