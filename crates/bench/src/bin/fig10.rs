//! Figure 10: latency vs per-daemon loss rate at 1200 Mbps goodput, 10 Gb.
use accelring_bench::{figure_loss, Quality};
use accelring_sim::harness::format_table;
use accelring_sim::NetworkProfile;

fn main() {
    let curves = figure_loss(Quality::from_env(), NetworkProfile::ten_gigabit(), 1200);
    print!(
        "{}",
        format_table(
            "Figure 10: latency vs loss, 1200 Mbps goodput, 10Gb",
            "loss %",
            &curves
        )
    );
}
