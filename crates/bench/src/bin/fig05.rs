//! Figure 5: Agreed latency vs throughput for 1350-byte vs 8850-byte
//! payloads, 10 Gb network, accelerated protocol.
use accelring_bench::{figure_payload_sizes, Quality};
use accelring_core::Service;
use accelring_sim::harness::format_table;

fn main() {
    let curves = figure_payload_sizes(Quality::from_env(), Service::Agreed);
    print!(
        "{}",
        format_table(
            "Figure 5: Agreed, 1350B vs 8850B payloads, 10Gb",
            "offered Mbps",
            &curves
        )
    );
}
