//! Crash-recovery benchmark: a restart storm per seed on a live
//! localhost UDP multi-ring deployment, measuring rejoin-to-serving
//! latency — from the moment a cycled daemon's ports are rebound to
//! the moment its serving gate opens on a shard map at least as new as
//! the survivors' — and checking the recovery invariants on every run:
//! no stale-map serving, no dedup-watermark regression, and a gap-free
//! exactly-once workload stream across the storm.
//!
//! ```text
//! cargo run --release --bin recovery
//! cargo run --release --bin recovery -- --seeds 100
//! ```
//!
//! Writes the run as `BENCH_recovery.json`. Exits non-zero on any
//! invariant violation, a daemon that never converges, or a leaked
//! buffer lease. Honors `ACCELRING_BENCH_QUALITY` (`quick`/`full`) for
//! the default seed count.

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use accelring_bench::Quality;
use accelring_chaos::churn::{check_churn_handoff, check_recovery, RecoveryReport};
use accelring_chaos::MsgId;
use accelring_core::{Backoff, RingIdx, Service};
use accelring_daemon::{ClientEvent, FrontendOptions};
use accelring_multiring::{ChurnCluster, MultiRingClient, MultiRingOptions, ShardMap};
use bytes::Bytes;

const RINGS: u16 = 2;
const NODES: u16 = 3;
const HOT_SENDER: u16 = 7;
/// Daemons cycled together each seed (everyone but the tick leader).
const VICTIMS: [u16; 2] = [1, 2];
const DOWNTIME: Duration = Duration::from_millis(300);
const CONVERGE_DEADLINE: Duration = Duration::from_secs(20);

struct Args {
    seeds: u64,
    seed_base: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: match Quality::from_env() {
            Quality::Quick => 3,
            Quality::Full => 100,
        },
        seed_base: 1000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--seed-base" => {
                args.seed_base = value("--seed-base")?
                    .parse()
                    .map_err(|e| format!("--seed-base: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.seeds < 1 {
        return Err("--seeds: need at least 1".to_string());
    }
    Ok(args)
}

fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS);
    map.assign("hot", RingIdx::new(0));
    map.assign("cold", RingIdx::new(1));
    map
}

fn send_id(sender: &MultiRingClient, id: MsgId) -> Result<(), String> {
    let mut backoff = Backoff::new(
        Duration::from_millis(5),
        Duration::from_millis(100),
        id.counter,
    );
    loop {
        match sender.multicast_sequenced(&["hot"], Bytes::from(id.payload()), Service::Agreed) {
            Ok(_) => return Ok(()),
            Err(e) if backoff.attempts() >= 20 => return Err(format!("send {id}: {e}")),
            Err(_) => std::thread::sleep(backoff.next_delay()),
        }
    }
}

fn collect_ids(client: &MultiRingClient, want: usize, deadline: Duration) -> Vec<MsgId> {
    let start = Instant::now();
    let mut got = Vec::new();
    while got.len() < want && start.elapsed() < deadline {
        if let Ok(ClientEvent::Message { payload, .. }) =
            client.events().recv_timeout(Duration::from_millis(100))
        {
            if let Some(id) = MsgId::parse(&payload) {
                got.push(id);
            }
        }
    }
    got
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct SeedOutcome {
    rejoin_ms: Vec<f64>,
    violations: Vec<String>,
    pulls: u64,
    snapshots: u64,
}

fn run_seed(seed: u64) -> Result<SeedOutcome, String> {
    let options = MultiRingOptions {
        frontend: FrontendOptions::enabled(),
        ..MultiRingOptions::default()
    };
    let mut cluster = ChurnCluster::start(RINGS, NODES, seed, shards(), options)
        .map_err(|e| format!("seed {seed}: cluster failed to start: {e}"))?;

    let observer = cluster.daemon(0).connect("obs").expect("connect");
    let post_sender = cluster.daemon(0).connect("src-after").expect("connect");
    let pre_sender = cluster.daemon(1).connect("src").expect("connect");
    observer.join("hot").expect("join hot");
    let view_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(ClientEvent::View { group, .. }) =
            observer.events().recv_timeout(Duration::from_millis(200))
        {
            if group == "hot" {
                break;
            }
        }
        if Instant::now() > view_deadline {
            return Err(format!("seed {seed}: observer never saw the hot view"));
        }
    }

    // Pre-storm traffic through a victim sets its dedup watermarks.
    let mut sent: BTreeSet<MsgId> = BTreeSet::new();
    for counter in 0..10 {
        let id = MsgId {
            sender: HOT_SENDER,
            counter,
        };
        send_id(&pre_sender, id)?;
        sent.insert(id);
    }
    let mut stream = collect_ids(&observer, 10, Duration::from_secs(30));
    if stream.len() < 10 {
        return Err(format!("seed {seed}: pre-storm workload never landed"));
    }

    // Map churn: the rejoiners are reborn with the initial map and must
    // catch up past this migration's version.
    cluster
        .daemon(0)
        .migrate("hot", RingIdx::new(1))
        .map_err(|e| format!("seed {seed}: migrate rejected: {e}"))?;
    let commit_deadline = Instant::now() + Duration::from_secs(20);
    while cluster.daemon(0).transport_stats()[0].migrations_committed < 1 {
        if Instant::now() > commit_deadline {
            return Err(format!("seed {seed}: migration never committed"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // The storm: both non-leader daemons crash together.
    let seqs_before: Vec<(u16, _)> = VICTIMS
        .iter()
        .map(|d| (*d, cluster.daemon(*d).export_seqs().expect("daemon up")))
        .collect();
    for d in VICTIMS {
        cluster.stop_daemon(d);
    }
    std::thread::sleep(DOWNTIME);
    let mut rebound_at = Vec::new();
    for d in VICTIMS {
        cluster
            .restart_daemon(d)
            .map_err(|e| format!("seed {seed}: daemon {d} failed to rebind: {e}"))?;
        rebound_at.push(Instant::now());
    }
    let map_before = cluster.daemon(0).inspect().expect("daemon up").map_version;

    // Rejoin-to-serving: gate open AND map at least the survivors'.
    let mut rejoin_ms = Vec::new();
    let mut reports = Vec::new();
    for (k, (d, before)) in seqs_before.into_iter().enumerate() {
        let t0 = rebound_at[k];
        let ins = loop {
            let ins = cluster.daemon(d).inspect().expect("daemon up");
            if !ins.catching_up && ins.map_version >= map_before {
                break ins;
            }
            if t0.elapsed() > CONVERGE_DEADLINE {
                break ins;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        rejoin_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        reports.push(RecoveryReport {
            daemon: d,
            map_before,
            map_after: ins.map_version,
            seqs_before: before,
            seqs_after: cluster.daemon(d).export_seqs().expect("daemon up"),
        });
    }
    let mut violations: Vec<String> = check_recovery(&reports)
        .iter()
        .map(ToString::to_string)
        .collect();

    // Post-storm traffic: the merged stream must stay gap-free and
    // exactly-once through the storm.
    for counter in 10..20 {
        let id = MsgId {
            sender: HOT_SENDER,
            counter,
        };
        send_id(&post_sender, id)?;
        sent.insert(id);
    }
    stream.extend(collect_ids(
        &observer,
        sent.len() - stream.len(),
        Duration::from_secs(30),
    ));
    violations.extend(
        check_churn_handoff(&sent, &[(0, stream)])
            .iter()
            .map(ToString::to_string),
    );

    let mut pulls = 0;
    let mut snapshots = 0;
    for d in VICTIMS {
        let stats = cluster.daemon(d).transport_stats()[0];
        pulls += stats.recovery_pulls_sent;
        snapshots += stats.recovery_snapshots_applied;
    }
    let probes: Vec<_> = (0..NODES)
        .flat_map(|d| cluster.daemon(d).transport_probes())
        .collect();
    cluster.shutdown();
    for p in &probes {
        if p.pool_outstanding() != 0 {
            violations.push(format!(
                "seed {seed}: {} buffer leases leaked",
                p.pool_outstanding()
            ));
        }
    }

    Ok(SeedOutcome {
        rejoin_ms,
        violations,
        pulls,
        snapshots,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("recovery: {e}");
            eprintln!("usage: recovery [--seeds N] [--seed-base N]");
            return ExitCode::from(2);
        }
    };

    let mut samples: Vec<f64> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut pulls = 0;
    let mut snapshots = 0;
    let started = Instant::now();
    for k in 0..args.seeds {
        let seed = args.seed_base + k;
        match run_seed(seed) {
            Ok(out) => {
                samples.extend(out.rejoin_ms);
                for v in &out.violations {
                    eprintln!("recovery: seed {seed}: {v}");
                }
                violations.extend(out.violations);
                pulls += out.pulls;
                snapshots += out.snapshots;
            }
            Err(e) => {
                eprintln!("recovery: {e}");
                violations.push(e);
            }
        }
        if (k + 1) % 10 == 0 {
            eprintln!(
                "recovery: {}/{} seeds, {} samples, {} violations, {:.0}s",
                k + 1,
                args.seeds,
                samples.len(),
                violations.len(),
                started.elapsed().as_secs_f64()
            );
        }
    }

    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let p50 = percentile(&sorted, 50.0);
    let p99 = percentile(&sorted, 99.0);
    let max = sorted.last().copied().unwrap_or(0.0);
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };

    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"rings\": {RINGS},\n  \"nodes\": {NODES},\n  \
         \"storm_size\": {},\n  \"downtime_ms\": {},\n  \"seeds\": {},\n  \
         \"seed_base\": {},\n  \"rejoin_samples\": {},\n  \"rejoin_p50_ms\": {p50:.1},\n  \
         \"rejoin_p99_ms\": {p99:.1},\n  \"rejoin_mean_ms\": {mean:.1},\n  \
         \"rejoin_max_ms\": {max:.1},\n  \"recovery_pulls_sent\": {pulls},\n  \
         \"recovery_snapshots_applied\": {snapshots},\n  \"violations\": {}\n}}\n",
        VICTIMS.len(),
        DOWNTIME.as_millis(),
        args.seeds,
        args.seed_base,
        sorted.len(),
        violations.len(),
    );
    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_recovery.json", &json) {
        eprintln!("recovery: writing BENCH_recovery.json: {e}");
        return ExitCode::FAILURE;
    }

    if !violations.is_empty() {
        eprintln!("recovery: {} violations", violations.len());
        return ExitCode::FAILURE;
    }
    println!(
        "recovery: clean ({} seeds, rejoin p50 {p50:.0} ms / p99 {p99:.0} ms)",
        args.seeds
    );
    ExitCode::SUCCESS
}
