//! Figure 8: Safe delivery latency at low throughputs, 10 Gb network — the
//! regime where the original protocol beats the accelerated protocol.
use accelring_bench::{figure_08, Quality};
use accelring_sim::harness::format_table;

fn main() {
    let curves = figure_08(Quality::from_env());
    print!(
        "{}",
        format_table(
            "Figure 8: Safe latency at low throughput, 10Gb (crossover)",
            "offered Mbps",
            &curves
        )
    );
}
