//! Figure 6: Safe delivery latency vs throughput, 10 Gb network.
use accelring_bench::{figure_06, Quality};
use accelring_sim::harness::format_table;

fn main() {
    let curves = figure_06(Quality::from_env());
    print!(
        "{}",
        format_table(
            "Figure 6: Safe latency vs throughput, 10Gb",
            "offered Mbps",
            &curves
        )
    );
}
