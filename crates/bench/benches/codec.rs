//! Criterion micro-benchmarks of the wire codec: per-datagram encode and
//! decode cost for data messages (small and jumbo) and tokens with various
//! rtr-list sizes.

use accelring_core::{wire, DataMessage, ParticipantId, RingId, Round, Seq, Service, Token};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn data_msg(payload_len: usize) -> DataMessage {
    DataMessage {
        ring_id: RingId::new(ParticipantId::new(0), 3),
        seq: Seq::new(123_456),
        pid: ParticipantId::new(5),
        round: Round::new(42),
        service: Service::Safe,
        post_token: true,
        retransmission: false,
        payload: Bytes::from(vec![9u8; payload_len]),
    }
}

fn token_with_rtr(n: usize) -> Token {
    Token {
        ring_id: RingId::new(ParticipantId::new(0), 3),
        token_id: 999,
        round: Round::new(40),
        seq: Seq::new(5000),
        aru: Seq::new(4000),
        aru_id: Some(ParticipantId::new(2)),
        fcc: 120,
        rtr: (0..n as u64).map(|i| Seq::new(4000 + i)).collect(),
    }
}

fn bench_data_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_data");
    for len in [1350usize, 8850] {
        let msg = data_msg(len);
        group.throughput(Throughput::Bytes(msg.wire_len() as u64));
        group.bench_function(format!("encode_{len}B"), |b| {
            b.iter(|| wire::encode_data(std::hint::black_box(&msg)));
        });
        let encoded = wire::encode_data(&msg);
        group.bench_function(format!("decode_{len}B"), |b| {
            b.iter_batched(
                || encoded.clone(),
                |mut buf| wire::decode_data(&mut buf).unwrap(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_token_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_token");
    for rtr in [0usize, 16, 256] {
        let token = token_with_rtr(rtr);
        group.bench_function(format!("encode_rtr{rtr}"), |b| {
            b.iter(|| wire::encode_token(std::hint::black_box(&token)));
        });
        let encoded = wire::encode_token(&token);
        group.bench_function(format!("decode_rtr{rtr}"), |b| {
            b.iter_batched(
                || encoded.clone(),
                |mut buf| wire::decode_token(&mut buf).unwrap(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_data_codec, bench_token_codec
}
criterion_main!(benches);
