//! Criterion micro-benchmarks of the protocol state machine: token
//! handling (the per-round cost every participant pays) and data handling
//! (the per-message cost), for both protocol variants.

use accelring_core::testing::TestNet;
use accelring_core::{
    DataMessage, Participant, ParticipantId, ProtocolConfig, Ring, Round, Seq, Service, Token,
};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn payload(len: usize) -> Bytes {
    Bytes::from(vec![7u8; len])
}

/// Builds a participant mid-stream: ring of 8, a full window queued.
fn loaded_participant(cfg: ProtocolConfig) -> (Participant, Token) {
    let ring = Ring::of_size(8);
    let mut p = Participant::new(ParticipantId::new(0), ring.clone(), cfg).unwrap();
    for _ in 0..cfg.personal_window() {
        p.submit(payload(1350), Service::Agreed).unwrap();
    }
    let token = Token::initial(ring.id());
    (p, token)
}

fn bench_token_handling(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_handling");
    for (name, cfg) in [
        ("original_w20", ProtocolConfig::original(20)),
        ("accelerated_w20_a15", ProtocolConfig::accelerated(20, 15)),
    ] {
        group.throughput(Throughput::Elements(u64::from(cfg.personal_window())));
        group.bench_function(name, |b| {
            b.iter_batched(
                || loaded_participant(cfg),
                |(mut p, token)| {
                    let mut out = Vec::with_capacity(64);
                    p.handle_token(token, &mut out);
                    out
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_data_handling(c: &mut Criterion) {
    let ring = Ring::of_size(8);
    let mut group = c.benchmark_group("data_handling");
    group.throughput(Throughput::Elements(1));
    group.bench_function("in_order_agreed", |b| {
        b.iter_batched(
            || {
                let p = Participant::new(
                    ParticipantId::new(0),
                    ring.clone(),
                    ProtocolConfig::accelerated(20, 15),
                )
                .unwrap();
                let msg = DataMessage {
                    ring_id: ring.id(),
                    seq: Seq::new(1),
                    pid: ParticipantId::new(1),
                    round: Round::new(1),
                    service: Service::Agreed,
                    post_token: false,
                    retransmission: false,
                    payload: payload(1350),
                };
                (p, msg)
            },
            |(mut p, msg)| {
                let mut out = Vec::with_capacity(4);
                p.handle_data(msg, &mut out);
                out
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_full_rounds(c: &mut Criterion) {
    // A complete 8-participant rotation in the in-memory net: 8 token
    // handlings plus all data handlings and deliveries.
    let mut group = c.benchmark_group("full_rotation_8_nodes");
    for (name, cfg) in [
        ("original", ProtocolConfig::original(20)),
        ("accelerated", ProtocolConfig::accelerated(20, 15)),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut net = TestNet::new(8, cfg);
                    for i in 0..8 {
                        for _ in 0..20 {
                            net.submit(i, payload(1350), Service::Agreed);
                        }
                    }
                    net
                },
                |mut net| {
                    net.run_tokens(8);
                    net
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_token_handling, bench_data_handling, bench_full_rounds
}
criterion_main!(benches);
