//! Criterion benchmark of the simulator itself: how much wall time one
//! simulated millisecond of a busy 8-node ring costs. Useful to keep the
//! figure harness fast as the simulator evolves.

use accelring_core::{ProtocolConfig, Service};
use accelring_sim::{ImplProfile, LossSpec, NetworkProfile, SimDuration, Simulator, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

fn run_short_sim(rate_mbps: u64, loss: LossSpec) -> u64 {
    let outcome = Simulator::new(
        8,
        ProtocolConfig::accelerated(20, 15),
        NetworkProfile::gigabit(),
        ImplProfile::daemon(),
        loss,
        Workload::FixedRate {
            aggregate_bps: rate_mbps * 1_000_000,
        },
        1350,
        Service::Agreed,
        SimDuration::from_millis(2),
        SimDuration::from_millis(8),
        7,
    )
    .run();
    outcome.counters.delivered_total
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_10ms_window");
    group.sample_size(10);
    group.bench_function("idle_ring", |b| {
        b.iter(|| run_short_sim(std::hint::black_box(1), LossSpec::None));
    });
    group.bench_function("busy_500mbps", |b| {
        b.iter(|| run_short_sim(std::hint::black_box(500), LossSpec::None));
    });
    group.bench_function("busy_500mbps_10pct_loss", |b| {
        b.iter(|| run_short_sim(std::hint::black_box(500), LossSpec::bernoulli(0.10)));
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
