//! Seeded KV workload generation for tests, soaks, and benches: a
//! deterministic mixed op stream (puts, deletes, CAS, multi-key
//! transactions, fences) pre-split into per-ring fragment streams, and
//! random-but-legal merge interleavings of those streams — exactly the
//! freedom the λ-clock merger has. Feeding any interleaving to a
//! [`KvMachine`](crate::KvMachine) must commit every op exactly once;
//! feeding the *same* interleaving to two machines must produce equal
//! state hashes at every position. The proptest suite, the divergence
//! soak, and the `kv` bench all draw from here so a failing seed
//! reproduces across all three.

use std::collections::{BTreeSet, VecDeque};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::op::{encode_op, involved_partitions, KvOp, KvWrite};

/// One per-ring slice of an ordered op: what a replica's merged event
/// stream carries for it on that ring.
#[derive(Debug, Clone)]
pub struct Frag {
    /// Submitting client's session name.
    pub client: String,
    /// The client's session sequence (shared by all fragments of one op).
    pub seq: u64,
    /// The involved partition groups that order on this fragment's ring.
    pub groups: Vec<String>,
    /// The encoded [`KvOp`].
    pub payload: Bytes,
}

/// The generator's shard pinning: partition `kv.N` orders on ring
/// `N % rings` — even partitions and odd partitions land on different
/// rings, so multi-key transactions routinely span rings.
///
/// # Panics
///
/// Panics on a partition name not of the `kv.N` form.
pub fn ring_of(part: &str, rings: u16) -> usize {
    part.strip_prefix("kv.")
        .and_then(|n| n.parse::<usize>().ok())
        .expect("partition name of the kv.N form")
        % rings.max(1) as usize
}

/// Generates a seeded workload of three clients over `partitions`
/// partitions spread across `rings` rings, returning the per-ring
/// fragment streams and the set of `(client, seq)` ids submitted.
pub fn gen_workload(
    seed: u64,
    partitions: u16,
    rings: u16,
    ops: u32,
) -> (Vec<Vec<Frag>>, BTreeSet<(String, u64)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<String> = (0..12).map(|i| format!("k{i}")).collect();
    let clients = ["ann", "bob", "cyd"];
    let mut seqs = [0u64; 3];
    let mut streams: Vec<Vec<Frag>> = (0..rings.max(1)).map(|_| Vec::new()).collect();
    let mut ids = BTreeSet::new();
    for _ in 0..ops {
        let ci = rng.random_range(0..clients.len());
        seqs[ci] += 1;
        let key = |rng: &mut StdRng| keys[rng.random_range(0..keys.len())].clone();
        let value = |rng: &mut StdRng| Bytes::from(format!("v{}", rng.random_range(0..1000u32)));
        let op = match rng.random_range(0..10u32) {
            0..=4 => KvOp::Write {
                writes: vec![KvWrite::Put {
                    key: key(&mut rng),
                    value: value(&mut rng),
                }],
            },
            5 => KvOp::Write {
                writes: vec![KvWrite::Del { key: key(&mut rng) }],
            },
            6 => KvOp::Write {
                writes: vec![KvWrite::Cas {
                    key: key(&mut rng),
                    expect: if rng.random_range(0..2u32) == 0 {
                        None
                    } else {
                        Some(value(&mut rng))
                    },
                    value: value(&mut rng),
                }],
            },
            7 | 8 => {
                let mut picked = BTreeSet::new();
                while picked.len() < 2 + rng.random_range(0..2usize) {
                    picked.insert(key(&mut rng));
                }
                KvOp::Write {
                    writes: picked
                        .into_iter()
                        .map(|k| KvWrite::Put {
                            key: k,
                            value: value(&mut rng),
                        })
                        .collect(),
                }
            }
            _ => KvOp::Fence {
                parts: vec![format!("kv.{}", rng.random_range(0..partitions.max(1)))],
            },
        };
        let payload = encode_op(&op);
        let involved = involved_partitions(&op, partitions);
        ids.insert((clients[ci].to_string(), seqs[ci]));
        for (r, stream) in streams.iter_mut().enumerate() {
            let groups: Vec<String> = involved
                .iter()
                .filter(|p| ring_of(p, rings) == r)
                .cloned()
                .collect();
            if !groups.is_empty() {
                stream.push(Frag {
                    client: clients[ci].to_string(),
                    seq: seqs[ci],
                    groups,
                    payload: payload.clone(),
                });
            }
        }
    }
    (streams, ids)
}

/// One legal merge of the per-ring streams: a seeded random
/// interleaving that preserves each ring's internal order.
pub fn interleave(streams: &[Vec<Frag>], seed: u64) -> Vec<Frag> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queues: Vec<VecDeque<Frag>> = streams
        .iter()
        .map(|r| r.iter().cloned().collect())
        .collect();
    let mut merged = Vec::new();
    loop {
        let live: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if live.is_empty() {
            return merged;
        }
        let pick = live[rng.random_range(0..live.len())];
        merged.push(queues[pick].pop_front().expect("non-empty queue"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible_and_cover_both_rings() {
        let (a, ids_a) = gen_workload(9, 4, 2, 50);
        let (b, ids_b) = gen_workload(9, 4, 2, 50);
        assert_eq!(ids_a, ids_b);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|s| !s.is_empty()), "a ring got no traffic");
        let ma = interleave(&a, 77);
        let mb = interleave(&b, 77);
        assert_eq!(ma.len(), mb.len());
        assert!(ma
            .iter()
            .zip(&mb)
            .all(|(x, y)| x.client == y.client && x.seq == y.seq && x.payload == y.payload));
    }

    #[test]
    fn interleavings_preserve_per_ring_order() {
        let (streams, _) = gen_workload(3, 4, 2, 60);
        let merged = interleave(&streams, 123);
        for (r, stream) in streams.iter().enumerate() {
            let filtered: Vec<(String, u64)> = merged
                .iter()
                .filter(|f| f.groups.iter().all(|g| ring_of(g, 2) == r))
                .filter(|f| {
                    stream
                        .iter()
                        .any(|s| s.client == f.client && s.seq == f.seq)
                })
                .map(|f| (f.client.clone(), f.seq))
                .collect();
            let original: Vec<(String, u64)> =
                stream.iter().map(|f| (f.client.clone(), f.seq)).collect();
            assert_eq!(filtered, original, "ring {r} order was not preserved");
        }
    }
}
