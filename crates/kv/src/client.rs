//! The KV client: ordered writes over a
//! [`SessionClient`](accelring_daemon::SessionClient) session, local
//! reads over [`SessionFrame::SvcQuery`] — with exactly-once write
//! semantics and three read-consistency modes.
//!
//! ## Exactly-once writes
//!
//! Every write is stamped with the session's sequence number. A client
//! unsure whether a write landed (UDP, daemon restart, anything)
//! resubmits the *same* sequence — the per-ring engines dedup by
//! `(client name, seq)` high-watermark, so the op applies exactly once
//! no matter how many copies arrive, even through a different daemon
//! after a reconnect. [`KvClient::confirm`] packages the loop: poll the
//! read gate, resubmit while in doubt, return once the op committed.
//!
//! ## Read consistency
//!
//! * [`ReadMode::Local`] — whatever the queried replica has applied.
//!   Cheapest, may be stale.
//! * [`ReadMode::ReadYourWrites`] — gated on the client's own last
//!   write to the key's partition: the replica answers only once its
//!   consumption watermark for `(partition, client)` covers that
//!   sequence and no earlier op of the client is still pending.
//! * [`ReadMode::Linearizable`] — the client orders a [`KvOp::Fence`]
//!   through the key's partition and gates the read on the fence's
//!   sequence: the answer reflects every write ordered before the
//!   fence, whoever wrote it.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use accelring_core::Service;
use accelring_daemon::proto::{decode_session_frame, encode_session_frame};
use accelring_daemon::{SessionClient, SessionFrame};
use bytes::Bytes;

use crate::machine::{decode_reply, encode_query, KvQuery, KvReply};
use crate::op::{encode_op, involved_partitions, partition_of, KvOp, KvWrite};

/// Consistency level of a [`KvClient::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// The replica's current state, no gate.
    Local,
    /// Gated on this client's last write to the key's partition.
    ReadYourWrites,
    /// Gated on a fresh fence ordered through the key's partition.
    Linearizable,
}

/// The value side of a successful read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvValue {
    /// The bound value, or `None` for an absent key.
    pub value: Option<Bytes>,
    /// The answering replica's position clock at the read.
    pub position: u64,
}

/// A client of the replicated KV service.
#[derive(Debug)]
pub struct KvClient {
    session: SessionClient,
    daemon: SocketAddr,
    sock: UdpSocket,
    partitions: u16,
    nonce: u64,
    /// `partition → seq` of this session's last write there, for
    /// read-your-writes gates and in-doubt resubmission.
    last_write: BTreeMap<String, (u64, Bytes)>,
    /// How long an in-doubt op may go unconfirmed before it is
    /// resubmitted.
    resubmit_after: Duration,
}

impl KvClient {
    /// Opens a session named `name` against the daemon at `daemon`,
    /// agreeing on a `partitions`-way key split.
    ///
    /// # Errors
    ///
    /// Propagates socket and session-handshake failures.
    pub fn connect(daemon: SocketAddr, name: &str, partitions: u16) -> io::Result<KvClient> {
        let session = SessionClient::connect(daemon, name)?;
        let sock = UdpSocket::bind(("127.0.0.1", 0))?;
        sock.set_read_timeout(Some(Duration::from_millis(40)))?;
        Ok(KvClient {
            session,
            daemon,
            sock,
            partitions: partitions.max(1),
            nonce: 0,
            last_write: BTreeMap::new(),
            resubmit_after: Duration::from_millis(250),
        })
    }

    /// This client's session name.
    pub fn name(&self) -> &str {
        self.session.name()
    }

    /// The highest sequence this session has stamped.
    pub fn last_seq(&self) -> u64 {
        self.session.last_seq()
    }

    /// Blocks until the daemon's replica answers local-service queries —
    /// its serving gate opens only once it has joined every partition
    /// (and recovered, when rejoining), so writes submitted after this
    /// returns cannot be consumed member-less and lost.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] when the replica never comes up.
    pub fn wait_serving(&mut self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        let probe = KvQuery::Get {
            key: String::new(),
            client: self.name().to_string(),
            min_seq: 0,
        };
        while Instant::now() < deadline {
            if self.query_once(&probe).is_some() {
                return Ok(());
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "replica never started serving",
        ))
    }

    /// Submits one op into the total order and returns its sequence.
    /// Fire-and-forget: pair with [`KvClient::confirm`] for an
    /// exactly-once acknowledged write.
    ///
    /// # Errors
    ///
    /// Propagates socket failures; the op itself may still land (UDP) —
    /// resubmitting the returned sequence is always safe.
    pub fn submit(&mut self, op: &KvOp) -> io::Result<u64> {
        let groups: Vec<String> = involved_partitions(op, self.partitions)
            .into_iter()
            .collect();
        if groups.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "op involves no partitions",
            ));
        }
        let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
        let payload = encode_op(op);
        let seq = self
            .session
            .multicast_sequenced(&refs, payload.clone(), Service::Agreed)?;
        for g in groups {
            self.last_write.insert(g, (seq, payload.clone()));
        }
        Ok(seq)
    }

    /// `PUT key = value`, unconfirmed. Returns the sequence.
    ///
    /// # Errors
    ///
    /// As [`KvClient::submit`].
    pub fn put(&mut self, key: &str, value: impl Into<Bytes>) -> io::Result<u64> {
        self.submit(&KvOp::Write {
            writes: vec![KvWrite::Put {
                key: key.to_string(),
                value: value.into(),
            }],
        })
    }

    /// `DEL key`, unconfirmed. Returns the sequence.
    ///
    /// # Errors
    ///
    /// As [`KvClient::submit`].
    pub fn del(&mut self, key: &str) -> io::Result<u64> {
        self.submit(&KvOp::Write {
            writes: vec![KvWrite::Del {
                key: key.to_string(),
            }],
        })
    }

    /// Compare-and-swap, unconfirmed: bind `key` to `value` iff its
    /// current value is `expect` (`None` = absent). Whether the guard
    /// held is observable via a subsequent read. Returns the sequence.
    ///
    /// # Errors
    ///
    /// As [`KvClient::submit`].
    pub fn cas(
        &mut self,
        key: &str,
        expect: Option<Bytes>,
        value: impl Into<Bytes>,
    ) -> io::Result<u64> {
        self.submit(&KvOp::Write {
            writes: vec![KvWrite::Cas {
                key: key.to_string(),
                expect,
                value: value.into(),
            }],
        })
    }

    /// An atomic multi-key transaction, unconfirmed. Keys may span
    /// partitions — and rings: the daemon splits the op into per-ring
    /// fragments and every replica commits it at the same merged
    /// position. Returns the sequence.
    ///
    /// # Errors
    ///
    /// As [`KvClient::submit`].
    pub fn txn(&mut self, writes: Vec<KvWrite>) -> io::Result<u64> {
        self.submit(&KvOp::Write { writes })
    }

    /// Blocks until the write stamped `seq` touching `key`'s partition
    /// has committed at the queried daemon, resubmitting the in-doubt
    /// op whenever progress stalls — the exactly-once acknowledgement
    /// loop.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] when the deadline passes first.
    pub fn confirm(&mut self, key: &str, seq: u64, timeout: Duration) -> io::Result<()> {
        let part = partition_of(key, self.partitions);
        let deadline = Instant::now() + timeout;
        let mut last_submit = Instant::now();
        loop {
            let q = KvQuery::Get {
                key: key.to_string(),
                client: self.name().to_string(),
                min_seq: seq,
            };
            if let Some(KvReply::Value { .. }) = self.query_once(&q) {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("write seq {seq} unconfirmed"),
                ));
            }
            if last_submit.elapsed() >= self.resubmit_after {
                if let Some((s, payload)) = self.last_write.get(&part).cloned() {
                    if s == seq {
                        let op = crate::op::decode_op(&payload).expect("own payload decodes");
                        let groups: Vec<String> = involved_partitions(&op, self.partitions)
                            .into_iter()
                            .collect();
                        let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                        self.session
                            .resubmit(seq, &refs, payload, Service::Agreed)?;
                    }
                }
                last_submit = Instant::now();
            }
        }
    }

    /// Reads `key` at the given consistency, retrying the local query
    /// until the replica's gate opens or `timeout` passes.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] when the gate never opens in time;
    /// socket errors propagate.
    pub fn get(&mut self, key: &str, mode: ReadMode, timeout: Duration) -> io::Result<KvValue> {
        let part = partition_of(key, self.partitions);
        let min_seq = match mode {
            ReadMode::Local => 0,
            ReadMode::ReadYourWrites => self.last_write.get(&part).map(|(s, _)| *s).unwrap_or(0),
            ReadMode::Linearizable => self.submit(&KvOp::Fence {
                parts: vec![part.clone()],
            })?,
        };
        let deadline = Instant::now() + timeout;
        let mut last_submit = Instant::now();
        loop {
            let q = KvQuery::Get {
                key: key.to_string(),
                client: self.name().to_string(),
                min_seq,
            };
            match self.query_once(&q) {
                Some(KvReply::Value {
                    found,
                    value,
                    position,
                    ..
                }) => {
                    return Ok(KvValue {
                        value: found.then_some(value),
                        position,
                    });
                }
                _ => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("read gate at seq {min_seq} never opened"),
                        ));
                    }
                    // The gate may be waiting on an op the network ate:
                    // resubmit the in-doubt sequence (dedup makes this
                    // free when it did land).
                    if min_seq > 0 && last_submit.elapsed() >= self.resubmit_after {
                        // The fence of a linearizable read is recorded
                        // in `last_write` too, so one resubmit path
                        // covers both modes.
                        if let Some((s, payload)) = self.last_write.get(&part).cloned() {
                            let op = crate::op::decode_op(&payload).expect("own payload decodes");
                            let groups: Vec<String> = involved_partitions(&op, self.partitions)
                                .into_iter()
                                .collect();
                            let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                            self.session.resubmit(s, &refs, payload, Service::Agreed)?;
                        }
                        last_submit = Instant::now();
                    }
                }
            }
        }
    }

    /// One SvcQuery round-trip; `None` on timeout or a non-matching
    /// reply (the caller owns retries).
    fn query_once(&mut self, q: &KvQuery) -> Option<KvReply> {
        self.nonce += 1;
        let frame = SessionFrame::SvcQuery {
            nonce: self.nonce,
            body: encode_query(q),
        };
        self.sock
            .send_to(&encode_session_frame(&frame), self.daemon)
            .ok()?;
        let mut buf = vec![0u8; 64 * 1024];
        let until = Instant::now() + Duration::from_millis(120);
        while Instant::now() < until {
            let Ok((n, _)) = self.sock.recv_from(&mut buf) else {
                continue;
            };
            let mut bytes = Bytes::copy_from_slice(&buf[..n]);
            let Ok(SessionFrame::SvcReply { nonce, body }) = decode_session_frame(&mut bytes)
            else {
                continue;
            };
            if nonce != self.nonce {
                continue;
            }
            return decode_reply(&body);
        }
        None
    }

    /// Closes the session.
    pub fn close(self) {
        self.session.bye();
    }
}
