//! The replica runtime: mounts a [`KvMachine`] on a
//! [`MultiRingDaemon`], joins every partition group, and applies the
//! merged total order — plus the marker-gated snapshot protocol that
//! lets a rejoining replica catch up without losing or doubling ops.
//!
//! ## Ordered state transfer
//!
//! A replica starting with `recovery_peers` set cannot simply copy a
//! peer's state: a snapshot cut *before* the replica's group joins were
//! ordered would miss every op between the cut and the join. The fix is
//! a marker fence ordered through the total order itself:
//!
//! 1. join all partition groups (the joins are ordered on their rings),
//! 2. multicast a [`KvOp::Fence`] *spanning every partition* — per-ring
//!    FIFO puts each fragment after this replica's join on that ring,
//! 3. pull snapshots from peers with [`KvQuery::Snapshot`], whose gate
//!    makes a peer reply only once it has consumed the marker on every
//!    partition — so the snapshot provably covers everything ordered
//!    before the join,
//! 4. install, then replay the deliveries buffered since the join: the
//!    overlap (ops both in the snapshot and the buffer) is skipped by
//!    the machine's consumption watermarks, the rest applies.
//!
//! If no peer answers before the deadline, the replica falls back to
//! the application snapshot piggybacked on the daemon-level recovery
//! pull ([`AppState::install`]), and failing that serves from empty —
//! every peer gone *is* a fresh cluster.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use accelring_daemon::proto::{decode_session_frame, encode_session_frame};
use accelring_daemon::{ClientEvent, SessionFrame};
use accelring_multiring::{AppState, MultiRingDaemon, MultiRingError};
use bytes::Bytes;
use crossbeam::channel::{bounded, Sender, TryRecvError};

use crate::machine::{decode_reply, encode_query, KvApplied, KvMachine, KvQuery, KvReply, KvStats};
use crate::op::{encode_op, partition_groups, KvOp};
use accelring_core::Service;

/// A position/state-hash pair a replica emits every
/// [`KvConfig::beacon_every`] consumed fragments. Beacons from replicas
/// at the *same position* must carry the same hash — the divergence
/// invariant chaos checkers enforce.
pub type KvBeacon = (u64, u64);

/// Settings for one [`KvStore`] replica.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// The key-space split; every replica and client of a deployment
    /// must agree.
    pub partitions: u16,
    /// This replica's client name. Must be unique per incarnation —
    /// the snapshot marker gate keys on it, so a reused name could
    /// satisfy the gate with a previous incarnation's marks.
    pub name: String,
    /// Session addresses of peer daemons to pull a KV snapshot from
    /// before serving. Empty = fresh deployment, serve immediately.
    pub recovery_peers: Vec<SocketAddr>,
    /// How long to retry snapshot pulls before falling back (staged
    /// daemon-level snapshot, then empty state).
    pub recovery_deadline: Duration,
    /// Emit a beacon every this many consumed fragments (`0` = never).
    pub beacon_every: u64,
    /// Where beacons go, if anywhere.
    pub beacons: Option<Sender<KvBeacon>>,
    /// Where commit records go, if anywhere (benches time these).
    pub applied: Option<Sender<KvApplied>>,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            partitions: 4,
            name: "kv-replica".to_string(),
            recovery_peers: Vec::new(),
            recovery_deadline: Duration::from_secs(5),
            beacon_every: 0,
            beacons: None,
            applied: None,
        }
    }
}

/// The state a replica shares with its daemon: the machine behind a
/// lock, the serving gate, and the staging slot for daemon-level
/// recovery snapshots. Mount it on the daemon via
/// [`MultiRingOptions::app_state`](accelring_multiring::MultiRingOptions)
/// so local-service queries (client reads, peer snapshot pulls) are
/// answered, then hand the same `Arc` to [`KvStore::start`].
pub struct KvShared {
    machine: Mutex<KvMachine>,
    serving: AtomicBool,
    staged: Mutex<Option<Bytes>>,
}

impl std::fmt::Debug for KvShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvShared")
            .field("serving", &self.serving.load(Ordering::Relaxed))
            .finish()
    }
}

impl KvShared {
    /// A fresh shared state over a `partitions`-way key split.
    pub fn new(partitions: u16) -> Arc<KvShared> {
        Arc::new(KvShared {
            machine: Mutex::new(KvMachine::new(partitions)),
            serving: AtomicBool::new(false),
            staged: Mutex::new(None),
        })
    }

    /// Whether the replica has finished recovery and serves reads.
    pub fn serving(&self) -> bool {
        self.serving.load(Ordering::Acquire)
    }

    /// Current value of `key` (local read, no consistency gate).
    pub fn read(&self, key: &str) -> Option<Bytes> {
        self.machine.lock().expect("kv lock").get(key).cloned()
    }

    /// The machine's position clock.
    pub fn position(&self) -> u64 {
        self.machine.lock().expect("kv lock").position()
    }

    /// The machine's state hash (see [`KvMachine::state_hash`]).
    pub fn state_hash(&self) -> u64 {
        self.machine.lock().expect("kv lock").state_hash()
    }

    /// The machine's deterministic counters.
    pub fn stats(&self) -> KvStats {
        self.machine.lock().expect("kv lock").stats()
    }

    /// Runs `f` against the locked machine — escape hatch for tests and
    /// tools that need more than the canned accessors.
    pub fn with_machine<R>(&self, f: impl FnOnce(&KvMachine) -> R) -> R {
        f(&self.machine.lock().expect("kv lock"))
    }
}

impl AppState for KvShared {
    fn query(&self, body: &Bytes) -> Option<Bytes> {
        // A recovering replica must not answer: its watermarks are
        // behind, so a Local read would serve stale state and a
        // snapshot pull would hand out an incomplete machine.
        if !self.serving() {
            return None;
        }
        self.machine.lock().expect("kv lock").answer(body)
    }

    fn snapshot(&self) -> Bytes {
        if !self.serving() {
            return Bytes::new();
        }
        self.machine.lock().expect("kv lock").snapshot()
    }

    fn install(&self, body: &Bytes) {
        // Staged, not applied: the daemon-level pull races the marker
        // protocol, and a snapshot must never clobber a live machine.
        // The replica thread promotes the staged bytes only as its
        // deadline fallback.
        *self.staged.lock().expect("kv stage lock") = Some(body.clone());
    }
}

/// A running replica: the thread that feeds the shared machine from the
/// daemon's merged event stream.
#[derive(Debug)]
pub struct KvStore {
    ctrl: Sender<()>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl KvStore {
    /// Connects a replica client to `daemon`, joins every partition
    /// group, and spawns the apply thread (running recovery first when
    /// [`KvConfig::recovery_peers`] is non-empty).
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError`] when the connect or a join is
    /// rejected.
    pub fn start(
        daemon: &MultiRingDaemon,
        shared: Arc<KvShared>,
        cfg: KvConfig,
    ) -> Result<KvStore, MultiRingError> {
        let client = daemon.connect(&cfg.name)?;
        for g in partition_groups(cfg.partitions) {
            client.join(&g)?;
        }
        let (ctrl, ctrl_rx) = bounded::<()>(1);
        let thread = std::thread::Builder::new()
            .name(format!("kv-{}", cfg.name))
            .spawn(move || {
                let mut run = Replica {
                    client,
                    shared,
                    cfg,
                    ctrl: ctrl_rx,
                };
                run.recover();
                run.serve();
            })
            .expect("spawn kv replica thread");
        Ok(KvStore {
            ctrl,
            thread: Some(thread),
        })
    }

    /// Stops the apply thread and disconnects the replica client.
    pub fn shutdown(mut self) {
        let _ = self.ctrl.send(());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for KvStore {
    fn drop(&mut self) {
        let _ = self.ctrl.send(());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

struct Replica {
    client: accelring_multiring::MultiRingClient,
    shared: Arc<KvShared>,
    cfg: KvConfig,
    ctrl: crossbeam::channel::Receiver<()>,
}

/// How long a starting replica waits to see itself in every partition's
/// membership view before serving anyway. Until the views land, ops are
/// consumed by the ring engines but delivered to nobody — a replica
/// that served earlier would silently miss them.
const VIEW_DEADLINE: Duration = Duration::from_secs(20);

impl Replica {
    /// Waits for join views, runs the marker-gated snapshot pull when
    /// peers are configured, then opens the serving gate.
    fn recover(&mut self) {
        let parts = partition_groups(self.cfg.partitions);
        let mut buffered: Vec<ClientEvent> = Vec::new();
        self.await_views(&parts, &mut buffered);
        if self.cfg.recovery_peers.is_empty() {
            self.shared.serving.store(true, Ordering::Release);
            for ev in buffered {
                self.apply_event(ev);
            }
            return;
        }
        let part_refs: Vec<&str> = parts.iter().map(String::as_str).collect();
        let marker = encode_op(&KvOp::Fence {
            parts: parts.clone(),
        });
        let marker_seq = self
            .client
            .multicast_spanning(&part_refs, marker, Service::Agreed)
            .unwrap_or(0);
        let deadline = Instant::now() + self.cfg.recovery_deadline;
        let installed = self.pull_snapshot(marker_seq, deadline, &mut buffered);
        if !installed {
            // Deadline fallback: the daemon-level recovery pull may have
            // staged a peer's machine (MAP_PUSH piggyback). Watermark
            // replay makes installing it safe even though it predates
            // the marker — anything it misses is in the buffer only if
            // it was delivered to us, and anything neither holds was
            // also never ordered for a fresh-empty peer set.
            let staged = self.shared.staged.lock().expect("kv stage lock").take();
            if let Some(body) = staged {
                self.install_snapshot(&body);
            }
        }
        self.shared.serving.store(true, Ordering::Release);
        for ev in buffered {
            self.apply_event(ev);
        }
    }

    /// Blocks until this replica appears in every partition's membership
    /// view (the EVS contract: its joins are effective everywhere once
    /// the installing views deliver), buffering data events meanwhile.
    fn await_views(&self, parts: &[String], buffered: &mut Vec<ClientEvent>) {
        let mut pending: std::collections::BTreeSet<&str> =
            parts.iter().map(String::as_str).collect();
        let deadline = Instant::now() + VIEW_DEADLINE;
        while !pending.is_empty() && Instant::now() < deadline {
            match self.client.events().recv_timeout(Duration::from_millis(25)) {
                Ok(ClientEvent::View { group, members }) => {
                    if members.iter().any(|m| m.name == self.cfg.name) {
                        pending.remove(group.as_str());
                    }
                }
                // Ordered after our join on its ring while the other
                // views are still in flight — keep it for replay.
                Ok(ev @ ClientEvent::Message { .. }) => buffered.push(ev),
                Ok(_) => {}
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Retries [`KvQuery::Snapshot`] against each peer until one's
    /// marker gate opens, buffering our own deliveries meanwhile.
    fn pull_snapshot(
        &mut self,
        marker_seq: u64,
        deadline: Instant,
        buffered: &mut Vec<ClientEvent>,
    ) -> bool {
        let Ok(sock) = UdpSocket::bind(("127.0.0.1", 0)) else {
            return false;
        };
        let _ = sock.set_read_timeout(Some(Duration::from_millis(50)));
        let query = encode_query(&KvQuery::Snapshot {
            client: self.cfg.name.clone(),
            min_seq: marker_seq,
        });
        let mut nonce: u64 = 1;
        let mut buf = vec![0u8; 64 * 1024];
        while Instant::now() < deadline {
            for peer in self.cfg.recovery_peers.clone() {
                nonce += 1;
                let frame = SessionFrame::SvcQuery {
                    nonce,
                    body: query.clone(),
                };
                let _ = sock.send_to(&encode_session_frame(&frame), peer);
                let until = (Instant::now() + Duration::from_millis(120)).min(deadline);
                while Instant::now() < until {
                    self.drain_events(buffered);
                    let Ok((n, _)) = sock.recv_from(&mut buf) else {
                        continue;
                    };
                    let mut bytes = Bytes::copy_from_slice(&buf[..n]);
                    let Ok(SessionFrame::SvcReply { nonce: got, body }) =
                        decode_session_frame(&mut bytes)
                    else {
                        continue;
                    };
                    if got != nonce {
                        continue;
                    }
                    match decode_reply(&body) {
                        Some(KvReply::Snapshot { body }) => {
                            if self.install_snapshot(&body) {
                                return true;
                            }
                        }
                        // NotYet: the peer has not consumed our marker
                        // everywhere yet — back off and retry.
                        _ => break,
                    }
                }
            }
            self.drain_events(buffered);
        }
        false
    }

    fn install_snapshot(&self, body: &Bytes) -> bool {
        let Some(m) = KvMachine::from_snapshot(body) else {
            return false;
        };
        if m.partitions() != self.cfg.partitions {
            return false;
        }
        *self.shared.machine.lock().expect("kv lock") = m;
        true
    }

    fn drain_events(&self, buffered: &mut Vec<ClientEvent>) {
        while let Ok(ev) = self.client.events().try_recv() {
            buffered.push(ev);
        }
    }

    /// The main loop: apply merged events until stopped or disconnected.
    fn serve(&mut self) {
        loop {
            match self.ctrl.try_recv() {
                Ok(()) | Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {}
            }
            match self.client.events().recv_timeout(Duration::from_millis(25)) {
                Ok(ev) => {
                    if !self.apply_event(ev) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    self.shared.serving.store(false, Ordering::Release);
                    return;
                }
            }
        }
        self.shared.serving.store(false, Ordering::Release);
    }

    /// Feeds one event to the machine. Returns `false` on the terminal
    /// disconnect.
    fn apply_event(&self, ev: ClientEvent) -> bool {
        match ev {
            ClientEvent::Message {
                sender,
                seq,
                groups,
                payload,
                ..
            } => {
                let mut m = self.shared.machine.lock().expect("kv lock");
                let before = m.position();
                let applied = m.ingest(&sender.name, seq, &groups, &payload);
                let after = m.position();
                let beacon = self.cfg.beacon_every > 0
                    && after > before
                    && after.is_multiple_of(self.cfg.beacon_every);
                let hash = if beacon { Some(m.state_hash()) } else { None };
                drop(m);
                if let (Some(h), Some(tx)) = (hash, self.cfg.beacons.as_ref()) {
                    let _ = tx.send((after, h));
                }
                if let (Some(rec), Some(tx)) = (applied, self.cfg.applied.as_ref()) {
                    let _ = tx.send(rec);
                }
                true
            }
            ClientEvent::Disconnected { .. } => {
                self.shared.serving.store(false, Ordering::Release);
                false
            }
            _ => true,
        }
    }
}
