//! # accelring-kv
//!
//! A replicated in-memory KV store that finally *consumes* the total
//! order the rest of the stack produces: every daemon mounts a
//! deterministic [`KvMachine`] replica, the key space is statically
//! split into partition groups spread across the rings, and clients
//! get ordered writes, atomic cross-shard transactions, exactly-once
//! retry semantics, and three read-consistency modes — all from the
//! ordering substrate, with no KV-specific consensus.
//!
//! The pieces:
//!
//! * [`op`] — the ordered op ([`KvWrite`] batches and [`KvOp::Fence`]
//!   markers), FNV key partitioning, and the magic-prefixed payload
//!   codec.
//! * [`machine`] — the [`KvMachine`]: applies the merged stream,
//!   reassembles cross-ring transaction fragments and commits them at
//!   the deterministic merged position, tracks per-`(partition,
//!   sender)` consumption watermarks, serializes itself for ordered
//!   state transfer, and answers local-service queries.
//! * [`replica`] — [`KvStore`]/[`KvShared`]: the per-daemon replica
//!   thread and the [`AppState`](accelring_multiring::AppState) mount,
//!   including the marker-gated snapshot pull a rejoining replica runs.
//! * [`client`] — [`KvClient`]: writes over a session, reads over
//!   local-service queries, [`ReadMode`] consistency gates.
//! * [`workload`] — seeded mixed-op workload generation shared by the
//!   proptest suite, the divergence soak, and the `kv` bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod machine;
pub mod op;
pub mod replica;
pub mod workload;

pub use client::{KvClient, KvValue, ReadMode};
pub use machine::{
    decode_query, decode_reply, encode_query, encode_reply, KvApplied, KvMachine, KvOutcome,
    KvQuery, KvReply, KvStats, TXN_PENDING_HORIZON,
};
pub use op::{
    decode_op, encode_op, involved_partitions, partition_groups, partition_of, KvOp, KvWrite,
    MAX_KEY, MAX_VALUE, MAX_WRITES,
};
pub use replica::{KvBeacon, KvConfig, KvShared, KvStore};
