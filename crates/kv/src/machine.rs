//! The deterministic replicated state machine: every daemon feeds its
//! machine the same merged stream of KV fragments, so every machine
//! walks the same state trajectory — that is the whole contract.
//!
//! ## The cross-shard commit rule
//!
//! A multi-key transaction whose partitions live on different rings
//! arrives as one *fragment per ring* (same sender, same sequence, that
//! ring's subset of the involved groups — see
//! [`accelring_multiring::MultiRingEngine::client_multicast_spanning`]).
//! The machine buffers fragments by `(sender, seq)` and commits the op
//! at the merged position of the fragment that completes the involved
//! set. Because the merged order is identical at every observer, so is
//! the commit position — the rule is a pure function of the stream.
//!
//! ## Consumption watermarks and snapshot replay
//!
//! For every `(partition, sender)` pair the machine tracks the highest
//! sequence *consumed* (buffered or applied) on that partition. A
//! sender's sequences are strictly increasing within each partition's
//! ring stream, so the watermark is exact, and it is what makes
//! snapshot transfer safe: a rejoining replica installs a peer's
//! snapshot (state + watermarks + pending buffer) and replays its
//! buffered deliveries — every fragment the snapshot already consumed
//! is skipped by watermark, every fragment past the snapshot applies,
//! and nothing is lost or doubled. The same watermarks back
//! read-your-writes queries.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::op::{decode_op, encode_op, involved_partitions, partition_of, KvOp, KvWrite, MAX_KEY};

/// How many merged positions a pending fragment set may age before it
/// is expired (a fragment lost to a mid-migration dedup edge would
/// otherwise pin its buffer entry forever). Expiry is keyed on the
/// deterministic position clock, so every replica expires the same
/// entry at the same point of the stream.
pub const TXN_PENDING_HORIZON: u64 = 65_536;

/// What became of one committed op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOutcome {
    /// The op's writes were applied (fences count as applied).
    Applied,
    /// A compare-and-swap guard failed; the whole op was dropped.
    CasFailed,
}

/// One committed op, as reported to observers (benches time these,
/// churn checkers replay them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvApplied {
    /// The submitting client's name.
    pub client: String,
    /// The client-session sequence of the op.
    pub seq: u64,
    /// The machine's position clock at commit.
    pub position: u64,
    /// Applied or CAS-aborted.
    pub outcome: KvOutcome,
}

/// A buffered cross-ring op waiting for its remaining fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending {
    op: KvOp,
    involved: BTreeSet<String>,
    covered: BTreeSet<String>,
    /// Position of the first fragment, for deterministic expiry.
    at: u64,
}

/// Counters a machine keeps about itself (all deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Fragments consumed (the position clock).
    pub position: u64,
    /// Ops committed (fences included).
    pub applied_ops: u64,
    /// Ops aborted by a failing CAS guard.
    pub cas_failed: u64,
    /// Fragments skipped as already consumed (snapshot-replay overlap).
    pub replay_skipped: u64,
    /// Payloads that did not decode as KV ops.
    pub foreign_payloads: u64,
    /// Pending entries expired past [`TXN_PENDING_HORIZON`].
    pub txns_expired: u64,
}

/// The deterministic KV state machine.
#[derive(Debug, Clone)]
pub struct KvMachine {
    partitions: u16,
    data: BTreeMap<String, Bytes>,
    /// `(partition, sender) → highest sequence consumed`.
    marks: BTreeMap<(String, String), u64>,
    /// `(sender, seq) → fragments gathered so far`.
    pending: BTreeMap<(String, u64), Pending>,
    /// Arrival order of pending entries, for horizon expiry.
    arrivals: VecDeque<(u64, (String, u64))>,
    stats: KvStats,
}

/// Semantic equality: everything but the `arrivals` GC queue — which
/// keeps harmless tombstones for already-committed ops (expiry checks
/// the entry's `at` stamp, so stale entries never change behavior) —
/// and [`KvStats::replay_skipped`], a replica-local observation of how
/// much snapshot/replay overlap *this* replica happened to see.
impl PartialEq for KvMachine {
    fn eq(&self, other: &KvMachine) -> bool {
        self.partitions == other.partitions
            && self.data == other.data
            && self.marks == other.marks
            && self.pending == other.pending
            && self.stats.position == other.stats.position
            && self.stats.applied_ops == other.stats.applied_ops
            && self.stats.cas_failed == other.stats.cas_failed
            && self.stats.foreign_payloads == other.stats.foreign_payloads
            && self.stats.txns_expired == other.stats.txns_expired
    }
}

impl Eq for KvMachine {}

impl KvMachine {
    /// A fresh machine over a `partitions`-way key split.
    pub fn new(partitions: u16) -> KvMachine {
        KvMachine {
            partitions: partitions.max(1),
            data: BTreeMap::new(),
            marks: BTreeMap::new(),
            pending: BTreeMap::new(),
            arrivals: VecDeque::new(),
            stats: KvStats::default(),
        }
    }

    /// The partition count this machine splits keys over.
    pub fn partitions(&self) -> u16 {
        self.partitions
    }

    /// The machine's deterministic counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// The position clock: fragments consumed so far. Identical at
    /// every replica at the same point of the merged stream — the
    /// coordinate state-hash beacons are compared at.
    pub fn position(&self) -> u64 {
        self.stats.position
    }

    /// How many cross-ring ops are buffered awaiting their remaining
    /// fragments. Zero once every submitted fragment has been consumed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Current value of `key`.
    pub fn get(&self, key: &str) -> Option<&Bytes> {
        self.data.get(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The consumption watermark for `(partition, sender)` — the
    /// highest sequence of `sender` consumed on `partition`.
    pub fn mark(&self, partition: &str, sender: &str) -> u64 {
        self.marks
            .get(&(partition.to_string(), sender.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// FNV-1a over the full store plus the applied-op count: equal
    /// hashes at equal positions is the divergence invariant.
    pub fn state_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (k, v) in &self.data {
            eat(&(k.len() as u32).to_le_bytes());
            eat(k.as_bytes());
            eat(&(v.len() as u32).to_le_bytes());
            eat(v);
        }
        eat(&self.stats.applied_ops.to_le_bytes());
        eat(&(self.pending.len() as u64).to_le_bytes());
        h
    }

    /// Whether a read at `min_seq` for `sender` on `key`'s partition is
    /// answerable yet: the watermark must cover the sequence *and* no
    /// earlier op of the sender may still be pending (a buffered
    /// cross-ring transaction is consumed but not applied — serving the
    /// read before it commits would break read-your-writes).
    pub fn read_ready(&self, key: &str, sender: &str, min_seq: u64) -> bool {
        if min_seq == 0 {
            return true;
        }
        let part = partition_of(key, self.partitions);
        if self.mark(&part, sender) < min_seq {
            return false;
        }
        self.pending
            .range((sender.to_string(), 0)..=(sender.to_string(), min_seq))
            .next()
            .is_none()
    }

    /// Consumes one delivered fragment: `sender`/`seq` from the ordered
    /// [`GroupMessage`](accelring_daemon::GroupMessage), `groups` the
    /// delivery's target groups, `payload` the multicast body. Returns
    /// the commit record when this fragment completed an op.
    ///
    /// Non-KV payloads are counted and skipped. Fragments whose
    /// sequence is already at or below the watermark of every target
    /// partition are replay duplicates (snapshot overlap) and are
    /// skipped without advancing the position clock — the snapshot
    /// responder already counted them.
    pub fn ingest(
        &mut self,
        sender: &str,
        seq: u64,
        groups: &[String],
        payload: &Bytes,
    ) -> Option<KvApplied> {
        let Some(op) = decode_op(payload) else {
            self.stats.foreign_payloads += 1;
            return None;
        };
        let involved = involved_partitions(&op, self.partitions);
        let touched: BTreeSet<String> = groups
            .iter()
            .filter(|g| involved.contains(*g))
            .cloned()
            .collect();
        if touched.is_empty() && !involved.is_empty() {
            // A fragment routed at groups the op does not involve —
            // only possible for hostile senders; skip deterministically.
            self.stats.foreign_payloads += 1;
            return None;
        }
        if seq > 0 && !touched.is_empty() && touched.iter().all(|g| self.mark(g, sender) >= seq) {
            self.stats.replay_skipped += 1;
            return None;
        }
        for g in &touched {
            let m = self
                .marks
                .entry((g.clone(), sender.to_string()))
                .or_insert(0);
            *m = (*m).max(seq);
        }
        self.stats.position += 1;
        self.expire_pending();
        // Unsequenced ops cannot be fragment-matched across rings; they
        // commit only when one delivery covers the whole involved set.
        if seq == 0 {
            if involved.is_subset(&touched) || involved.is_empty() {
                return Some(self.commit(sender, seq, op));
            }
            self.stats.foreign_payloads += 1;
            return None;
        }
        let key = (sender.to_string(), seq);
        let entry = self.pending.entry(key.clone()).or_insert_with(|| {
            self.arrivals.push_back((self.stats.position, key.clone()));
            Pending {
                op: op.clone(),
                involved: involved.clone(),
                covered: BTreeSet::new(),
                at: self.stats.position,
            }
        });
        entry.covered.extend(touched);
        if entry.involved.is_subset(&entry.covered) {
            let done = self.pending.remove(&key).expect("entry just touched");
            return Some(self.commit(sender, seq, done.op));
        }
        None
    }

    fn commit(&mut self, sender: &str, seq: u64, op: KvOp) -> KvApplied {
        let outcome = match &op {
            KvOp::Write { writes } => {
                let guarded = writes.iter().all(|w| match w {
                    KvWrite::Cas { key, expect, .. } => self.data.get(key) == expect.as_ref(),
                    _ => true,
                });
                if guarded {
                    for w in writes {
                        match w {
                            KvWrite::Put { key, value } | KvWrite::Cas { key, value, .. } => {
                                self.data.insert(key.clone(), value.clone());
                            }
                            KvWrite::Del { key } => {
                                self.data.remove(key);
                            }
                        }
                    }
                    KvOutcome::Applied
                } else {
                    self.stats.cas_failed += 1;
                    KvOutcome::CasFailed
                }
            }
            KvOp::Fence { .. } => KvOutcome::Applied,
        };
        self.stats.applied_ops += 1;
        KvApplied {
            client: sender.to_string(),
            seq,
            position: self.stats.position,
            outcome,
        }
    }

    fn expire_pending(&mut self) {
        while let Some((at, key)) = self.arrivals.front() {
            if self.stats.position.saturating_sub(*at) <= TXN_PENDING_HORIZON {
                break;
            }
            let (at, key) = (*at, key.clone());
            self.arrivals.pop_front();
            // The entry may have committed (and its key even been
            // reused) since; only expire the incarnation this arrival
            // recorded.
            if self.pending.get(&key).is_some_and(|p| p.at == at) {
                self.pending.remove(&key);
                self.stats.txns_expired += 1;
            }
        }
    }

    // -- snapshot codec -----------------------------------------------------

    /// Serializes the whole machine (state, watermarks, pending buffer,
    /// counters) for ordered state transfer.
    pub fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + 32 * self.data.len());
        buf.put_u16_le(self.partitions);
        buf.put_u64_le(self.stats.position);
        buf.put_u64_le(self.stats.applied_ops);
        buf.put_u64_le(self.stats.cas_failed);
        buf.put_u64_le(self.stats.txns_expired);
        buf.put_u32_le(self.data.len() as u32);
        for (k, v) in &self.data {
            buf.put_u16_le(k.len() as u16);
            buf.put_slice(k.as_bytes());
            buf.put_u32_le(v.len() as u32);
            buf.put_slice(v);
        }
        buf.put_u32_le(self.marks.len() as u32);
        for ((g, c), seq) in &self.marks {
            buf.put_u16_le(g.len() as u16);
            buf.put_slice(g.as_bytes());
            buf.put_u16_le(c.len() as u16);
            buf.put_slice(c.as_bytes());
            buf.put_u64_le(*seq);
        }
        buf.put_u32_le(self.pending.len() as u32);
        for ((c, seq), p) in &self.pending {
            buf.put_u16_le(c.len() as u16);
            buf.put_slice(c.as_bytes());
            buf.put_u64_le(*seq);
            buf.put_u64_le(p.at);
            let op = encode_op(&p.op);
            buf.put_u32_le(op.len() as u32);
            buf.put_slice(&op);
            buf.put_u16_le(p.covered.len() as u16);
            for g in &p.covered {
                buf.put_u16_le(g.len() as u16);
                buf.put_slice(g.as_bytes());
            }
        }
        buf.freeze()
    }

    /// Reconstructs a machine from [`KvMachine::snapshot`] bytes.
    /// `None` on malformed input — a pulling replica retries, never
    /// panics.
    pub fn from_snapshot(body: &Bytes) -> Option<KvMachine> {
        fn lstr(buf: &mut Bytes, cap: usize) -> Option<String> {
            if buf.remaining() < 2 {
                return None;
            }
            let len = buf.get_u16_le() as usize;
            if len > cap || buf.remaining() < len {
                return None;
            }
            String::from_utf8(buf.split_to(len).to_vec()).ok()
        }
        let mut buf = body.clone();
        // Fixed header: partitions + four u64 counters + the data count.
        if buf.remaining() < 38 {
            return None;
        }
        let partitions = buf.get_u16_le();
        let mut m = KvMachine::new(partitions);
        m.stats.position = buf.get_u64_le();
        m.stats.applied_ops = buf.get_u64_le();
        m.stats.cas_failed = buf.get_u64_le();
        m.stats.txns_expired = buf.get_u64_le();
        let n_data = buf.get_u32_le() as usize;
        for _ in 0..n_data {
            let k = lstr(&mut buf, MAX_KEY)?;
            if buf.remaining() < 4 {
                return None;
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return None;
            }
            m.data.insert(k, buf.split_to(len));
        }
        if buf.remaining() < 4 {
            return None;
        }
        let n_marks = buf.get_u32_le() as usize;
        for _ in 0..n_marks {
            let g = lstr(&mut buf, MAX_KEY)?;
            let c = lstr(&mut buf, MAX_KEY)?;
            if buf.remaining() < 8 {
                return None;
            }
            m.marks.insert((g, c), buf.get_u64_le());
        }
        if buf.remaining() < 4 {
            return None;
        }
        let n_pending = buf.get_u32_le() as usize;
        for _ in 0..n_pending {
            let c = lstr(&mut buf, MAX_KEY)?;
            if buf.remaining() < 20 {
                return None;
            }
            let seq = buf.get_u64_le();
            let at = buf.get_u64_le();
            let op_len = buf.get_u32_le() as usize;
            if buf.remaining() < op_len {
                return None;
            }
            let op = decode_op(&buf.split_to(op_len))?;
            if buf.remaining() < 2 {
                return None;
            }
            let n_cov = buf.get_u16_le() as usize;
            let mut covered = BTreeSet::new();
            for _ in 0..n_cov {
                covered.insert(lstr(&mut buf, MAX_KEY)?);
            }
            let involved = involved_partitions(&op, partitions);
            let key = (c, seq);
            m.arrivals.push_back((at, key.clone()));
            m.pending.insert(
                key,
                Pending {
                    op,
                    involved,
                    covered,
                    at,
                },
            );
        }
        if buf.has_remaining() {
            return None;
        }
        Some(m)
    }
}

// ---------------------------------------------------------------------------
// Local-service query codec (SVC_QUERY / SVC_REPLY bodies)
// ---------------------------------------------------------------------------

const Q_GET: u8 = 1;
const Q_SNAPSHOT: u8 = 2;

const R_VALUE: u8 = 1;
const R_NOT_YET: u8 = 2;
const R_SNAPSHOT: u8 = 3;

/// A local read served by a daemon's machine outside the ordered path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvQuery {
    /// Read `key`, but only once the responder's watermark for
    /// `(partition_of(key), client)` reaches `min_seq` (0 = any state).
    Get {
        /// The key read.
        key: String,
        /// The reading session's client name (watermark subject).
        client: String,
        /// The read guard: read-your-writes passes the client's last
        /// write to the partition, linearizable reads pass a fence.
        min_seq: u64,
    },
    /// Pull a machine snapshot, but only once the responder has
    /// consumed `client`'s sequence `min_seq` on *every* partition —
    /// the recovery marker gate that proves the snapshot covers the
    /// requester's join point (0 = unconditional).
    Snapshot {
        /// The pulling replica's client name.
        client: String,
        /// The marker sequence the snapshot must cover.
        min_seq: u64,
    },
}

/// A reply to a [`KvQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvReply {
    /// The read, served at `position` with the relevant watermark.
    Value {
        /// Whether the key was bound.
        found: bool,
        /// The value (empty when `found` is false).
        value: Bytes,
        /// The responder's position clock at the read.
        position: u64,
        /// The responder's watermark for the queried (partition,
        /// client).
        mark: u64,
    },
    /// The guard is not satisfied yet; retry. Carries the watermark
    /// the responder has reached so requesters can resubmit in-doubt
    /// writes.
    NotYet {
        /// The responder's current watermark for the subject.
        mark: u64,
    },
    /// The pulled snapshot ([`KvMachine::snapshot`] bytes).
    Snapshot {
        /// The serialized machine.
        body: Bytes,
    },
}

/// Encodes a query as an SVC_QUERY body.
pub fn encode_query(q: &KvQuery) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    match q {
        KvQuery::Get {
            key,
            client,
            min_seq,
        } => {
            buf.put_u8(Q_GET);
            buf.put_u16_le(key.len() as u16);
            buf.put_slice(key.as_bytes());
            buf.put_u16_le(client.len() as u16);
            buf.put_slice(client.as_bytes());
            buf.put_u64_le(*min_seq);
        }
        KvQuery::Snapshot { client, min_seq } => {
            buf.put_u8(Q_SNAPSHOT);
            buf.put_u16_le(client.len() as u16);
            buf.put_slice(client.as_bytes());
            buf.put_u64_le(*min_seq);
        }
    }
    buf.freeze()
}

fn get_lstr(buf: &mut Bytes, cap: usize) -> Option<String> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16_le() as usize;
    if len > cap || buf.remaining() < len {
        return None;
    }
    String::from_utf8(buf.split_to(len).to_vec()).ok()
}

/// Decodes an SVC_QUERY body. `None` = not a KV query.
pub fn decode_query(body: &Bytes) -> Option<KvQuery> {
    let mut buf = body.clone();
    if buf.remaining() < 1 {
        return None;
    }
    let q = match buf.get_u8() {
        Q_GET => KvQuery::Get {
            key: get_lstr(&mut buf, MAX_KEY)?,
            client: get_lstr(&mut buf, MAX_KEY)?,
            min_seq: {
                if buf.remaining() < 8 {
                    return None;
                }
                buf.get_u64_le()
            },
        },
        Q_SNAPSHOT => KvQuery::Snapshot {
            client: get_lstr(&mut buf, MAX_KEY)?,
            min_seq: {
                if buf.remaining() < 8 {
                    return None;
                }
                buf.get_u64_le()
            },
        },
        _ => return None,
    };
    if buf.has_remaining() {
        return None;
    }
    Some(q)
}

/// Encodes a reply as an SVC_REPLY body.
pub fn encode_reply(r: &KvReply) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    match r {
        KvReply::Value {
            found,
            value,
            position,
            mark,
        } => {
            buf.put_u8(R_VALUE);
            buf.put_u8(u8::from(*found));
            buf.put_u32_le(value.len() as u32);
            buf.put_slice(value);
            buf.put_u64_le(*position);
            buf.put_u64_le(*mark);
        }
        KvReply::NotYet { mark } => {
            buf.put_u8(R_NOT_YET);
            buf.put_u64_le(*mark);
        }
        KvReply::Snapshot { body } => {
            buf.put_u8(R_SNAPSHOT);
            buf.put_slice(body);
        }
    }
    buf.freeze()
}

/// Decodes an SVC_REPLY body. `None` = not a KV reply.
pub fn decode_reply(body: &Bytes) -> Option<KvReply> {
    let mut buf = body.clone();
    if buf.remaining() < 1 {
        return None;
    }
    let r = match buf.get_u8() {
        R_VALUE => {
            if buf.remaining() < 5 {
                return None;
            }
            let found = buf.get_u8() != 0;
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len + 16 {
                return None;
            }
            let value = buf.split_to(len);
            KvReply::Value {
                found,
                value,
                position: buf.get_u64_le(),
                mark: buf.get_u64_le(),
            }
        }
        R_NOT_YET => {
            if buf.remaining() < 8 {
                return None;
            }
            KvReply::NotYet {
                mark: buf.get_u64_le(),
            }
        }
        R_SNAPSHOT => KvReply::Snapshot {
            body: buf.split_to(buf.remaining()),
        },
        _ => return None,
    };
    if buf.has_remaining() {
        return None;
    }
    Some(r)
}

impl KvMachine {
    /// Answers one local-service query against current state, or `None`
    /// to stay silent (non-KV queries).
    pub fn answer(&self, body: &Bytes) -> Option<Bytes> {
        let reply = match decode_query(body)? {
            KvQuery::Get {
                key,
                client,
                min_seq,
            } => {
                if self.read_ready(&key, &client, min_seq) {
                    let value = self.data.get(&key);
                    KvReply::Value {
                        found: value.is_some(),
                        value: value.cloned().unwrap_or_default(),
                        position: self.stats.position,
                        mark: self.mark(&partition_of(&key, self.partitions), &client),
                    }
                } else {
                    KvReply::NotYet {
                        mark: self.mark(&partition_of(&key, self.partitions), &client),
                    }
                }
            }
            KvQuery::Snapshot { client, min_seq } => {
                let covered = min_seq == 0
                    || crate::op::partition_groups(self.partitions)
                        .iter()
                        .all(|g| self.mark(g, &client) >= min_seq);
                if covered {
                    KvReply::Snapshot {
                        body: self.snapshot(),
                    }
                } else {
                    let low = crate::op::partition_groups(self.partitions)
                        .iter()
                        .map(|g| self.mark(g, &client))
                        .min()
                        .unwrap_or(0);
                    KvReply::NotYet { mark: low }
                }
            }
        };
        Some(encode_reply(&reply))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::partition_groups;

    fn put(key: &str, value: &[u8]) -> Bytes {
        encode_op(&KvOp::Write {
            writes: vec![KvWrite::Put {
                key: key.into(),
                value: Bytes::copy_from_slice(value),
            }],
        })
    }

    fn groups_of(key: &str, parts: u16) -> Vec<String> {
        vec![partition_of(key, parts)]
    }

    #[test]
    fn single_key_ops_apply_in_order() {
        let mut m = KvMachine::new(2);
        let g = groups_of("k", 2);
        assert!(m.ingest("a", 1, &g, &put("k", b"1")).is_some());
        assert!(m.ingest("a", 2, &g, &put("k", b"2")).is_some());
        assert_eq!(m.get("k").unwrap().as_ref(), b"2");
        assert_eq!(m.stats().applied_ops, 2);
        assert_eq!(m.position(), 2);
    }

    #[test]
    fn cas_guards_are_atomic() {
        let mut m = KvMachine::new(1);
        let g = partition_groups(1);
        m.ingest("a", 1, &g, &put("x", b"old"));
        // Failing CAS aborts the whole batch: the Put must not land.
        let bad = encode_op(&KvOp::Write {
            writes: vec![
                KvWrite::Put {
                    key: "y".into(),
                    value: Bytes::from_static(b"v"),
                },
                KvWrite::Cas {
                    key: "x".into(),
                    expect: Some(Bytes::from_static(b"wrong")),
                    value: Bytes::from_static(b"new"),
                },
            ],
        });
        let applied = m.ingest("a", 2, &g, &bad).unwrap();
        assert_eq!(applied.outcome, KvOutcome::CasFailed);
        assert!(m.get("y").is_none());
        assert_eq!(m.get("x").unwrap().as_ref(), b"old");
        let good = encode_op(&KvOp::Write {
            writes: vec![KvWrite::Cas {
                key: "x".into(),
                expect: Some(Bytes::from_static(b"old")),
                value: Bytes::from_static(b"new"),
            }],
        });
        assert_eq!(
            m.ingest("a", 3, &g, &good).unwrap().outcome,
            KvOutcome::Applied
        );
        assert_eq!(m.get("x").unwrap().as_ref(), b"new");
    }

    #[test]
    fn cross_partition_txn_commits_on_last_fragment() {
        // Two partitions; a txn touching both arrives as two fragments.
        let parts = 2u16;
        let (ka, kb) = distinct_partition_keys(parts);
        let op = KvOp::Write {
            writes: vec![
                KvWrite::Put {
                    key: ka.clone(),
                    value: Bytes::from_static(b"A"),
                },
                KvWrite::Put {
                    key: kb.clone(),
                    value: Bytes::from_static(b"B"),
                },
            ],
        };
        let payload = encode_op(&op);
        let mut m = KvMachine::new(parts);
        let first = m.ingest("a", 1, &groups_of(&ka, parts), &payload);
        assert!(first.is_none(), "first fragment must buffer");
        assert!(m.get(&ka).is_none(), "no partial application");
        let second = m.ingest("a", 1, &groups_of(&kb, parts), &payload);
        assert_eq!(second.unwrap().outcome, KvOutcome::Applied);
        assert_eq!(m.get(&ka).unwrap().as_ref(), b"A");
        assert_eq!(m.get(&kb).unwrap().as_ref(), b"B");
    }

    /// Two keys hashing to different partitions of a `parts`-way split.
    fn distinct_partition_keys(parts: u16) -> (String, String) {
        let first = "key-0".to_string();
        let p0 = partition_of(&first, parts);
        for i in 1..1000 {
            let k = format!("key-{i}");
            if partition_of(&k, parts) != p0 {
                return (first, k);
            }
        }
        panic!("hash degenerated");
    }

    #[test]
    fn snapshot_replay_skips_consumed_fragments() {
        let parts = 2u16;
        let (ka, kb) = distinct_partition_keys(parts);
        let mut src = KvMachine::new(parts);
        src.ingest("a", 1, &groups_of(&ka, parts), &put(&ka, b"1"));
        // A half-arrived txn sits pending in the snapshot.
        let txn = encode_op(&KvOp::Write {
            writes: vec![
                KvWrite::Put {
                    key: ka.clone(),
                    value: Bytes::from_static(b"t"),
                },
                KvWrite::Put {
                    key: kb.clone(),
                    value: Bytes::from_static(b"t"),
                },
            ],
        });
        assert!(src.ingest("a", 2, &groups_of(&ka, parts), &txn).is_none());
        let snap = src.snapshot();
        let mut dst = KvMachine::from_snapshot(&snap).unwrap();
        assert_eq!(dst, src);
        // Replay both consumed fragments (overlap) plus the completing
        // one: overlaps skip, the completion commits — on both machines
        // identically.
        for m in [&mut src, &mut dst] {
            m.ingest("a", 1, &groups_of(&ka, parts), &put(&ka, b"1"));
            m.ingest("a", 2, &groups_of(&ka, parts), &txn);
            m.ingest("a", 2, &groups_of(&kb, parts), &txn);
        }
        assert_eq!(src.state_hash(), dst.state_hash());
        assert_eq!(src.position(), dst.position());
        assert_eq!(src.get(&kb).unwrap().as_ref(), b"t");
        assert_eq!(src.stats().replay_skipped, 2);
    }

    #[test]
    fn snapshot_codec_rejects_truncation() {
        let mut m = KvMachine::new(2);
        let g = partition_groups(2);
        m.ingest("alice", 1, &g[..1], &put("k", b"v"));
        let snap = m.snapshot();
        for cut in 0..snap.len() {
            assert!(
                KvMachine::from_snapshot(&snap.slice(..cut)).is_none(),
                "cut {cut}"
            );
        }
        let mut padded = snap.to_vec();
        padded.push(7);
        assert!(KvMachine::from_snapshot(&Bytes::from(padded)).is_none());
    }

    #[test]
    fn foreign_payloads_are_skipped() {
        let mut m = KvMachine::new(1);
        let g = partition_groups(1);
        assert!(m
            .ingest("a", 1, &g, &Bytes::from_static(b"not kv"))
            .is_none());
        assert_eq!(m.position(), 0);
        assert_eq!(m.stats().foreign_payloads, 1);
    }

    #[test]
    fn read_ready_tracks_watermarks_and_pending() {
        let parts = 2u16;
        let (ka, kb) = distinct_partition_keys(parts);
        let mut m = KvMachine::new(parts);
        assert!(m.read_ready(&ka, "a", 0));
        assert!(!m.read_ready(&ka, "a", 1));
        m.ingest("a", 1, &groups_of(&ka, parts), &put(&ka, b"1"));
        assert!(m.read_ready(&ka, "a", 1));
        // A consumed-but-pending txn blocks reads at its sequence.
        let txn = encode_op(&KvOp::Write {
            writes: vec![
                KvWrite::Put {
                    key: ka.clone(),
                    value: Bytes::from_static(b"t"),
                },
                KvWrite::Put {
                    key: kb.clone(),
                    value: Bytes::from_static(b"t"),
                },
            ],
        });
        m.ingest("a", 2, &groups_of(&ka, parts), &txn);
        assert!(!m.read_ready(&ka, "a", 2));
        m.ingest("a", 2, &groups_of(&kb, parts), &txn);
        assert!(m.read_ready(&ka, "a", 2));
    }

    #[test]
    fn query_codec_round_trips_and_answers() {
        let queries = [
            KvQuery::Get {
                key: "k".into(),
                client: "alice".into(),
                min_seq: 9,
            },
            KvQuery::Snapshot {
                client: "replica-1".into(),
                min_seq: 3,
            },
        ];
        for q in &queries {
            assert_eq!(decode_query(&encode_query(q)).as_ref(), Some(q));
        }
        let replies = [
            KvReply::Value {
                found: true,
                value: Bytes::from_static(b"v"),
                position: 4,
                mark: 2,
            },
            KvReply::NotYet { mark: 1 },
            KvReply::Snapshot {
                body: Bytes::from_static(b"snap"),
            },
        ];
        for r in &replies {
            assert_eq!(decode_reply(&encode_reply(r)).as_ref(), Some(r));
        }
        let mut m = KvMachine::new(1);
        m.ingest("a", 1, &partition_groups(1), &put("k", b"v"));
        let body = m
            .answer(&encode_query(&KvQuery::Get {
                key: "k".into(),
                client: "a".into(),
                min_seq: 1,
            }))
            .unwrap();
        match decode_reply(&body).unwrap() {
            KvReply::Value { found, value, .. } => {
                assert!(found);
                assert_eq!(value.as_ref(), b"v");
            }
            other => panic!("wrong reply {other:?}"),
        }
        // Unsatisfied guard → NotYet.
        let body = m
            .answer(&encode_query(&KvQuery::Get {
                key: "k".into(),
                client: "a".into(),
                min_seq: 99,
            }))
            .unwrap();
        assert!(matches!(
            decode_reply(&body).unwrap(),
            KvReply::NotYet { mark: 1 }
        ));
        // Snapshot gate: marker not consumed everywhere → NotYet.
        let body = m
            .answer(&encode_query(&KvQuery::Snapshot {
                client: "r".into(),
                min_seq: 5,
            }))
            .unwrap();
        assert!(matches!(
            decode_reply(&body).unwrap(),
            KvReply::NotYet { .. }
        ));
        assert!(m.answer(&Bytes::from_static(b"junk")).is_none());
    }

    #[test]
    fn pending_horizon_expires_deterministically() {
        let parts = 2u16;
        let (ka, kb) = distinct_partition_keys(parts);
        let txn = encode_op(&KvOp::Write {
            writes: vec![
                KvWrite::Put {
                    key: ka.clone(),
                    value: Bytes::from_static(b"t"),
                },
                KvWrite::Put {
                    key: kb.clone(),
                    value: Bytes::from_static(b"t"),
                },
            ],
        });
        let mut a = KvMachine::new(parts);
        let mut b = KvMachine::new(parts);
        for m in [&mut a, &mut b] {
            // Orphan fragment, then a horizon's worth of traffic.
            m.ingest("lost", 1, &groups_of(&ka, parts), &txn);
            for i in 0..=TXN_PENDING_HORIZON {
                m.ingest("w", i + 1, &groups_of(&ka, parts), &put(&ka, b"x"));
            }
            assert_eq!(m.stats().txns_expired, 1);
        }
        assert_eq!(a.state_hash(), b.state_hash());
    }
}
