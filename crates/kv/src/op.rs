//! The ordered KV operation: what a client multicasts and what the
//! machine applies.
//!
//! One [`KvOp`] is one atomic unit in the merged total order. Its keys
//! decide which *partition groups* it targets — the key space is
//! statically split into `partitions` groups named `kv.0 … kv.P-1` by
//! FNV-1a hash, and the shard map spreads those groups across rings —
//! so a single-key write rides one ring while a multi-key transaction
//! whose keys hash to partitions on different rings is split into one
//! fragment per ring by the spanning multicast
//! ([`accelring_multiring::MultiRingEngine::client_multicast_spanning`]).
//! The machine reassembles fragments by `(sender, seq)` and commits at
//! the merged position of the last one.
//!
//! The codec is deliberately magic-prefixed: KV ops share group
//! payloads with nothing else, but a machine fed a foreign payload must
//! skip it, not corrupt state.

use std::collections::BTreeSet;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic prefix every encoded op starts with (`0xKV` in spirit).
const OP_MAGIC: &[u8; 2] = b"K1";

const W_PUT: u8 = 1;
const W_DEL: u8 = 2;
const W_CAS: u8 = 3;

const OP_WRITE: u8 = 1;
const OP_FENCE: u8 = 2;

/// Longest key the codec accepts.
pub const MAX_KEY: usize = 128;
/// Longest value the codec accepts.
pub const MAX_VALUE: usize = 4096;
/// Most writes one transaction may carry.
pub const MAX_WRITES: usize = 16;

/// One write inside an op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvWrite {
    /// Bind `key` to `value`.
    Put {
        /// The key written.
        key: String,
        /// The value stored.
        value: Bytes,
    },
    /// Remove `key` (a no-op when absent).
    Del {
        /// The key removed.
        key: String,
    },
    /// Compare-and-swap: bind `key` to `value` only if its current
    /// value is exactly `expect` (`None` = key must be absent). One
    /// failing CAS aborts the *whole* op — all-or-nothing.
    Cas {
        /// The key swapped.
        key: String,
        /// The required current value (`None` = absent).
        expect: Option<Bytes>,
        /// The value stored on success.
        value: Bytes,
    },
}

impl KvWrite {
    /// The key this write touches.
    pub fn key(&self) -> &str {
        match self {
            KvWrite::Put { key, .. } | KvWrite::Del { key } | KvWrite::Cas { key, .. } => key,
        }
    }
}

/// One atomic unit in the merged order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// An atomic write batch (a single write is the common case, a
    /// multi-key transaction the general one). Involved partitions are
    /// derived from the keys, identically at every replica.
    Write {
        /// The writes, applied in order, all-or-nothing.
        writes: Vec<KvWrite>,
    },
    /// An ordered no-op targeting explicit partitions: read fences
    /// (linearizable reads order one through the key's partition) and
    /// recovery markers (a rejoining replica orders one through *every*
    /// partition to anchor its snapshot pull).
    Fence {
        /// The partition groups the fence covers.
        parts: Vec<String>,
    },
}

/// The partition group `key` belongs to, out of `partitions` total:
/// `kv.{fnv1a64(key) % partitions}`. Every client and every machine of
/// one deployment must agree on `partitions`.
pub fn partition_of(key: &str, partitions: u16) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("kv.{}", h % u64::from(partitions.max(1)))
}

/// All partition group names of a `partitions`-way deployment.
pub fn partition_groups(partitions: u16) -> Vec<String> {
    (0..partitions.max(1)).map(|p| format!("kv.{p}")).collect()
}

/// The partition groups `op` involves — the set a fragment union must
/// cover before the op commits. Pure in the op and the partition count,
/// so every replica derives it identically.
pub fn involved_partitions(op: &KvOp, partitions: u16) -> BTreeSet<String> {
    match op {
        KvOp::Write { writes } => writes
            .iter()
            .map(|w| partition_of(w.key(), partitions))
            .collect(),
        KvOp::Fence { parts } => parts.iter().cloned().collect(),
    }
}

fn put_lstr<B: BufMut>(buf: &mut B, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_lstr(buf: &mut Bytes, cap: usize) -> Option<String> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16_le() as usize;
    if len > cap || buf.remaining() < len {
        return None;
    }
    String::from_utf8(buf.split_to(len).to_vec()).ok()
}

fn put_val<B: BufMut>(buf: &mut B, v: &Bytes) {
    buf.put_u32_le(v.len() as u32);
    buf.put_slice(v);
}

fn get_val(buf: &mut Bytes, cap: usize) -> Option<Bytes> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if len > cap || buf.remaining() < len {
        return None;
    }
    Some(buf.split_to(len))
}

/// Encodes an op as a group-multicast payload.
pub fn encode_op(op: &KvOp) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_slice(OP_MAGIC);
    match op {
        KvOp::Write { writes } => {
            buf.put_u8(OP_WRITE);
            buf.put_u8(writes.len().min(MAX_WRITES) as u8);
            for w in writes.iter().take(MAX_WRITES) {
                match w {
                    KvWrite::Put { key, value } => {
                        buf.put_u8(W_PUT);
                        put_lstr(&mut buf, key);
                        put_val(&mut buf, value);
                    }
                    KvWrite::Del { key } => {
                        buf.put_u8(W_DEL);
                        put_lstr(&mut buf, key);
                    }
                    KvWrite::Cas { key, expect, value } => {
                        buf.put_u8(W_CAS);
                        put_lstr(&mut buf, key);
                        match expect {
                            Some(e) => {
                                buf.put_u8(1);
                                put_val(&mut buf, e);
                            }
                            None => buf.put_u8(0),
                        }
                        put_val(&mut buf, value);
                    }
                }
            }
        }
        KvOp::Fence { parts } => {
            buf.put_u8(OP_FENCE);
            buf.put_u16_le(parts.len() as u16);
            for p in parts {
                put_lstr(&mut buf, p);
            }
        }
    }
    buf.freeze()
}

/// Decodes a group payload back into an op. `None` means "not a KV op"
/// (foreign payload or malformed bytes) — the machine skips it either
/// way, so hostile input degrades to a no-op, never a panic or a
/// divergence.
pub fn decode_op(payload: &Bytes) -> Option<KvOp> {
    let mut buf = payload.clone();
    if buf.remaining() < 3 {
        return None;
    }
    let mut magic = [0u8; 2];
    magic.copy_from_slice(&buf.split_to(2));
    if &magic != OP_MAGIC {
        return None;
    }
    let op = match buf.get_u8() {
        OP_WRITE => {
            if buf.remaining() < 1 {
                return None;
            }
            let n = buf.get_u8() as usize;
            if n > MAX_WRITES {
                return None;
            }
            let mut writes = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < 1 {
                    return None;
                }
                let w = match buf.get_u8() {
                    W_PUT => KvWrite::Put {
                        key: get_lstr(&mut buf, MAX_KEY)?,
                        value: get_val(&mut buf, MAX_VALUE)?,
                    },
                    W_DEL => KvWrite::Del {
                        key: get_lstr(&mut buf, MAX_KEY)?,
                    },
                    W_CAS => {
                        let key = get_lstr(&mut buf, MAX_KEY)?;
                        if buf.remaining() < 1 {
                            return None;
                        }
                        let expect = match buf.get_u8() {
                            0 => None,
                            1 => Some(get_val(&mut buf, MAX_VALUE)?),
                            _ => return None,
                        };
                        KvWrite::Cas {
                            key,
                            expect,
                            value: get_val(&mut buf, MAX_VALUE)?,
                        }
                    }
                    _ => return None,
                };
                writes.push(w);
            }
            KvOp::Write { writes }
        }
        OP_FENCE => {
            if buf.remaining() < 2 {
                return None;
            }
            let n = buf.get_u16_le() as usize;
            if n > 4096 {
                return None;
            }
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                parts.push(get_lstr(&mut buf, MAX_KEY)?);
            }
            KvOp::Fence { parts }
        }
        _ => return None,
    };
    if buf.has_remaining() {
        return None;
    }
    Some(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<KvOp> {
        vec![
            KvOp::Write {
                writes: vec![KvWrite::Put {
                    key: "alpha".into(),
                    value: Bytes::from_static(b"1"),
                }],
            },
            KvOp::Write {
                writes: vec![
                    KvWrite::Put {
                        key: "a".into(),
                        value: Bytes::from_static(b"x"),
                    },
                    KvWrite::Del { key: "b".into() },
                    KvWrite::Cas {
                        key: "c".into(),
                        expect: Some(Bytes::from_static(b"old")),
                        value: Bytes::from_static(b"new"),
                    },
                    KvWrite::Cas {
                        key: "d".into(),
                        expect: None,
                        value: Bytes::from_static(b"init"),
                    },
                ],
            },
            KvOp::Write { writes: Vec::new() },
            KvOp::Fence {
                parts: vec!["kv.0".into(), "kv.3".into()],
            },
            KvOp::Fence { parts: Vec::new() },
        ]
    }

    #[test]
    fn ops_round_trip() {
        for op in ops() {
            assert_eq!(decode_op(&encode_op(&op)).as_ref(), Some(&op), "{op:?}");
        }
    }

    #[test]
    fn truncation_and_junk_rejected() {
        for op in ops() {
            let full = encode_op(&op);
            for cut in 0..full.len() {
                assert!(decode_op(&full.slice(..cut)).is_none(), "{op:?} cut {cut}");
            }
            let mut padded = full.to_vec();
            padded.push(0);
            assert!(decode_op(&Bytes::from(padded)).is_none());
        }
        assert!(decode_op(&Bytes::from_static(b"not a kv op")).is_none());
        assert!(decode_op(&Bytes::new()).is_none());
    }

    #[test]
    fn partitioning_is_stable_and_total() {
        // Fixed hash: a key's partition must never change across
        // builds, or every deployed machine would disagree.
        assert_eq!(partition_of("alpha", 4), partition_of("alpha", 4));
        let groups = partition_groups(4);
        assert_eq!(groups.len(), 4);
        for k in ["a", "b", "longer-key", ""] {
            assert!(groups.contains(&partition_of(k, 4)));
        }
        // Degenerate partition counts still route somewhere.
        assert_eq!(partition_of("x", 0), "kv.0");
    }

    #[test]
    fn involved_partitions_derive_from_keys() {
        let op = KvOp::Write {
            writes: vec![
                KvWrite::Put {
                    key: "a".into(),
                    value: Bytes::new(),
                },
                KvWrite::Del { key: "a".into() },
                KvWrite::Put {
                    key: "b".into(),
                    value: Bytes::new(),
                },
            ],
        };
        let parts = involved_partitions(&op, 8);
        assert!(!parts.is_empty() && parts.len() <= 2);
        let fence = KvOp::Fence {
            parts: vec!["kv.1".into()],
        };
        assert_eq!(
            involved_partitions(&fence, 8)
                .into_iter()
                .collect::<Vec<_>>(),
            vec!["kv.1".to_string()]
        );
    }
}
