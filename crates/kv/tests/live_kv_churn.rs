//! Replicated KV under churn: the PR 5 smoke schedule — a loss window
//! on the hot ring, an online migration of a KV partition to the other
//! ring, a daemon restart — while a client drives confirmed writes the
//! whole way through. A fresh replica is mounted on the reborn daemon
//! and must catch up through the marker-gated snapshot pull; at the
//! end every replica (including the rejoiner) holds the byte-identical
//! machine, every beacon pair at equal positions agrees, and the store
//! reflects exactly the confirmed writes — nothing lost, nothing
//! doubled, nothing reordered.
//!
//! Real sockets and threads; run with `--test-threads=1`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use accelring_chaos::{check_state_beacons, ChurnSchedule};
use accelring_core::RingIdx;
use accelring_daemon::FrontendOptions;
use accelring_kv::{KvBeacon, KvClient, KvConfig, KvShared, KvStore, KvWrite};
use accelring_multiring::{ChurnCluster, MultiRingOptions, ShardMap};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver};

const RINGS: u16 = 2;
const NODES: u16 = 3;
const PARTS: u16 = 4;
const LONG: Duration = Duration::from_secs(40);

fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS);
    for p in 0..PARTS {
        map.assign(&format!("kv.{p}"), RingIdx::new(p % RINGS));
    }
    map
}

fn options_for(shared: &Arc<KvShared>) -> MultiRingOptions {
    MultiRingOptions {
        frontend: FrontendOptions::enabled(),
        app_state: Some(shared.clone()),
        ..MultiRingOptions::default()
    }
}

/// Starts a replica on daemon `i` of `cluster`, streaming beacons after
/// every consumed fragment (the strictest divergence check).
fn mount_replica(
    cluster: &ChurnCluster,
    i: u16,
    shared: Arc<KvShared>,
    name: &str,
    recovery_peers: Vec<std::net::SocketAddr>,
) -> (KvStore, Receiver<KvBeacon>) {
    let (tx, rx) = unbounded();
    let store = KvStore::start(
        cluster.daemon(i),
        shared,
        KvConfig {
            partitions: PARTS,
            name: name.to_string(),
            recovery_peers,
            beacon_every: 1,
            beacons: Some(tx),
            ..KvConfig::default()
        },
    )
    .expect("replica starts");
    (store, rx)
}

fn await_all_serving(shareds: &[&Arc<KvShared>]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if shareds.iter().all(|s| s.serving()) {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("replicas never all started serving");
}

fn await_convergence(shareds: &[&Arc<KvShared>]) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(40);
    while Instant::now() < deadline {
        let p: Vec<u64> = shareds.iter().map(|s| s.position()).collect();
        if p.iter().all(|&x| x == p[0]) {
            std::thread::sleep(Duration::from_millis(400));
            let q: Vec<u64> = shareds.iter().map(|s| s.position()).collect();
            if q == p {
                return p[0];
            }
        } else {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    panic!("replica positions never converged");
}

#[test]
fn kv_workload_survives_migration_and_restart_without_divergence() {
    let seed = 17;
    let shareds: Vec<Arc<KvShared>> = (0..NODES).map(|_| KvShared::new(PARTS)).collect();
    let options: Vec<MultiRingOptions> = shareds.iter().map(options_for).collect();
    let mut cluster =
        ChurnCluster::start_each(RINGS, NODES, seed, shards(), options).expect("cluster up");

    // The reborn daemon 2 will mount a *fresh* machine: swap its options
    // now so the restart fired by the schedule starts the next
    // incarnation with the new shared state already wired in.
    let shared_2b = KvShared::new(PARTS);
    cluster.set_options(2, options_for(&shared_2b));

    let mut stores = Vec::new();
    let mut beacon_rxs = Vec::new();
    for (i, shared) in shareds.iter().enumerate() {
        let (store, rx) = mount_replica(
            &cluster,
            i as u16,
            shared.clone(),
            &format!("replica-{i}"),
            Vec::new(),
        );
        stores.push(store);
        beacon_rxs.push(rx);
    }
    await_all_serving(&shareds.iter().collect::<Vec<_>>());

    let addr0 = cluster.daemon(0).session_addr().expect("session socket");
    let mut client = KvClient::connect(addr0, "client-a", PARTS).expect("connect");
    client
        .wait_serving(Duration::from_secs(30))
        .expect("replica 0 serves");

    // "kv.0" migrates ring 0 -> ring 1 mid-workload while its source
    // ring drops 3% of packets and daemon 2 cycles.
    let schedule = ChurnSchedule::smoke(seed, "kv.0", 0, 1, 2);
    let last_event = schedule.events.last().expect("non-empty").at;

    // Confirmed writes across all partitions, with a cross-partition
    // transaction every fourth round; `model` tracks what a lossless,
    // exactly-once store must end up holding.
    let mut model: BTreeMap<String, Bytes> = BTreeMap::new();
    let mut fired = 0;
    let start = Instant::now();
    let mut round: u64 = 0;
    while start.elapsed() < last_event + Duration::from_millis(600) || round < 30 {
        let key = format!("churn-{}", round % 8);
        let value = Bytes::from(format!("r{round}"));
        if round % 4 == 3 {
            let other = format!("churn-{}", (round + 1) % 8);
            let seq = client
                .txn(vec![
                    KvWrite::Put {
                        key: key.clone(),
                        value: value.clone(),
                    },
                    KvWrite::Put {
                        key: other.clone(),
                        value: value.clone(),
                    },
                ])
                .expect("txn submit");
            client.confirm(&key, seq, LONG).expect("confirm txn");
            model.insert(other, value.clone());
        } else {
            let seq = client.put(&key, value.clone()).expect("put submit");
            client.confirm(&key, seq, LONG).expect("confirm put");
        }
        model.insert(key, value);
        round += 1;
        cluster
            .apply_due(&schedule, start, &mut fired)
            .expect("churn event applies");
        std::thread::sleep(Duration::from_millis(30));
    }
    while fired < schedule.events.len() {
        cluster
            .apply_due(&schedule, start, &mut fired)
            .expect("churn event applies");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Daemon 2 is back; wait out its daemon-level catch-up, then mount
    // the rejoining replica, which recovers through the marker-gated
    // snapshot pull from the survivors.
    let deadline = Instant::now() + Duration::from_secs(30);
    while cluster.daemon(2).inspect().map(|i| i.catching_up) == Some(true) {
        assert!(
            Instant::now() < deadline,
            "daemon 2 never finished catch-up"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let peers = vec![
        cluster.daemon(0).session_addr().expect("addr 0"),
        cluster.daemon(1).session_addr().expect("addr 1"),
    ];
    let (store_2b, rx_2b) = mount_replica(&cluster, 2, shared_2b.clone(), "replica-2-inc1", peers);
    stores.push(store_2b);
    beacon_rxs.push(rx_2b);
    await_all_serving(&[&shared_2b]);

    // Post-recovery traffic: the rejoiner must track the order live.
    for i in 0..8u64 {
        let key = format!("churn-{}", i % 8);
        let value = Bytes::from(format!("post{i}"));
        let seq = client.put(&key, value.clone()).expect("post-put");
        client.confirm(&key, seq, LONG).expect("confirm post-put");
        model.insert(key, value);
    }

    let replicas = [&shareds[0], &shareds[1], &shared_2b];
    let pos = await_convergence(&replicas);
    assert!(pos > 0, "nothing was consumed");

    // No lost, doubled, or reordered applies: every replica holds the
    // model exactly, and the machines agree byte-for-byte.
    for (i, s) in replicas.iter().enumerate() {
        for (key, want) in &model {
            assert_eq!(
                s.read(key).as_ref(),
                Some(want),
                "replica {i}: key {key} diverges from the confirmed-write model"
            );
        }
        let stats = s.stats();
        assert_eq!(stats.foreign_payloads, 0, "replica {i}: foreign payloads");
        assert_eq!(stats.txns_expired, 0, "replica {i}: expired transactions");
    }
    shareds[0].with_machine(|m0| {
        shareds[1].with_machine(|m| assert_eq!(m0, m, "replica 1 diverged"));
        shared_2b.with_machine(|m| assert_eq!(m0, m, "rejoined replica diverged"));
    });

    // Divergence sweep over every beacon stream — the dead incarnation's
    // included: its prefix must agree with everyone else's.
    let streams: Vec<(usize, Vec<KvBeacon>)> = beacon_rxs
        .iter()
        .enumerate()
        .map(|(i, rx)| (i, rx.try_iter().collect()))
        .collect();
    assert!(
        streams.iter().map(|(_, s)| s.len()).sum::<usize>() > 0,
        "no beacons collected"
    );
    let violations = check_state_beacons(&streams);
    assert!(
        violations.is_empty(),
        "seed {seed}: divergence:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    client.close();
    for s in stores {
        s.shutdown();
    }
    cluster.shutdown();
}
