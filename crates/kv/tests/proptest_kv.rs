//! Properties of the replicated KV machine under randomized workloads:
//! every legal cross-ring fragment stream commits every op exactly
//! once; recovering through a snapshot cut at a random position and
//! replaying a suffix with random overlap lands on the byte-identical
//! machine; and replaying an already-consumed suffix is a no-op. These
//! are the determinism claims the live replicas lean on, checked
//! in-process over ~100 seeded cases per property.

use std::collections::BTreeSet;

use accelring_kv::workload::{gen_workload, interleave, Frag};
use accelring_kv::KvMachine;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PARTS: u16 = 4;
const RINGS: u16 = 2;
const OPS: u32 = 60;

/// Feeds `frags` into `m`, returning the `(client, seq)` of every
/// commit record it produced.
fn feed(m: &mut KvMachine, frags: &[Frag]) -> Vec<(String, u64)> {
    frags
        .iter()
        .filter_map(|f| m.ingest(&f.client, f.seq, &f.groups, &f.payload))
        .map(|a| (a.client, a.seq))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Any legal merge interleaving commits every submitted op exactly
    /// once — no op lost to fragment routing, none doubled, none left
    /// pending or expired once its fragments all arrived.
    #[test]
    fn every_interleaving_commits_each_op_exactly_once(seed in any::<u64>()) {
        let (rings, ids) = gen_workload(seed, PARTS, RINGS, OPS);
        for salt in 0..2u64 {
            let merged = interleave(&rings, seed ^ (salt.rotate_left(17) | 1));
            let mut m = KvMachine::new(PARTS);
            let commits = feed(&mut m, &merged);
            let commit_set: BTreeSet<(String, u64)> = commits.iter().cloned().collect();
            prop_assert_eq!(
                commits.len(),
                commit_set.len(),
                "seed {}: an op committed twice",
                seed
            );
            prop_assert_eq!(&commit_set, &ids, "seed {}: commit set diverges", seed);
            let stats = m.stats();
            prop_assert_eq!(stats.txns_expired, 0);
            prop_assert_eq!(stats.foreign_payloads, 0);
            prop_assert_eq!(stats.position, merged.len() as u64);
            prop_assert_eq!(
                m.pending_len(),
                0,
                "seed {}: fully-delivered stream left pending txns",
                seed
            );
        }
    }

    /// Recovering through a snapshot cut anywhere in the stream, then
    /// replaying a suffix that overlaps the snapshot, reaches the same
    /// machine as consuming the stream straight through — the watermark
    /// dedup makes the overlap harmless and the pending-txn table rides
    /// the snapshot.
    #[test]
    fn snapshot_with_overlapping_replay_matches_straight_through(seed in any::<u64>()) {
        let (rings, _) = gen_workload(seed, PARTS, RINGS, OPS);
        let merged = interleave(&rings, seed ^ 0xfeed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0de);
        let cut = rng.random_range(0..=merged.len());
        let overlap = rng.random_range(0..=cut.min(7));

        let mut straight = KvMachine::new(PARTS);
        feed(&mut straight, &merged);

        let mut source = KvMachine::new(PARTS);
        feed(&mut source, &merged[..cut]);
        let snap = source.snapshot();
        let mut recovered = KvMachine::from_snapshot(&snap).expect("snapshot decodes");
        feed(&mut recovered, &merged[cut - overlap..]);

        prop_assert_eq!(&recovered, &straight, "seed {}: recovery diverged", seed);
        prop_assert_eq!(recovered.state_hash(), straight.state_hash());
    }

    /// Replaying an already-consumed suffix changes nothing: positions,
    /// data, and hashes hold still while only the replay counter moves.
    #[test]
    fn duplicate_suffix_replay_is_idempotent(seed in any::<u64>()) {
        let (rings, _) = gen_workload(seed, PARTS, RINGS, OPS);
        let merged = interleave(&rings, seed ^ 0xd00d);
        let mut m = KvMachine::new(PARTS);
        feed(&mut m, &merged);
        let hash = m.state_hash();
        let position = m.position();
        let tail = merged.len() - merged.len().min(11);
        let commits = feed(&mut m, &merged[tail..]);
        prop_assert!(commits.is_empty(), "seed {}: a duplicate committed", seed);
        prop_assert_eq!(m.state_hash(), hash);
        prop_assert_eq!(m.position(), position);
    }
}
