//! Live replicated KV: two real localhost UDP rings of three daemons,
//! a replica on every daemon, and remote [`KvClient`]s exercising the
//! full contract — confirmed single-key writes, CAS atomicity, a
//! cross-ring transaction, read-your-writes and linearizable reads
//! from a second client on a different daemon, exactly-once semantics
//! through a reconnect-and-resubmit via a *different* daemon, and
//! byte-identical replica state at equal positions.
//!
//! Real sockets and threads; run with `--test-threads=1`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use accelring_core::{ProtocolConfig, RingIdx, Service};
use accelring_daemon::{FrontendOptions, SessionClient};
use accelring_kv::{
    encode_op, partition_of, KvClient, KvConfig, KvOp, KvShared, KvStore, KvWrite, ReadMode,
};
use accelring_membership::MembershipConfig;
use accelring_multiring::{MultiRingDaemon, MultiRingOptions, ShardMap};
use accelring_transport::spawn_local_multiring;
use bytes::Bytes;

const RINGS: u16 = 2;
const NODES: u16 = 3;
const PARTS: u16 = 4;
const LONG: Duration = Duration::from_secs(40);

/// Pin the four partitions across the two rings so every even partition
/// orders on ring 0 and every odd one on ring 1 — cross-partition
/// transactions are then provably cross-*ring* too.
fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS);
    for p in 0..PARTS {
        map.assign(&format!("kv.{p}"), RingIdx::new(p % RINGS));
    }
    map
}

/// Spawns the transport and one daemon per participant, each with its
/// replica's shared state mounted for local-service queries.
fn spawn_daemons(shareds: &[Arc<KvShared>]) -> Vec<MultiRingDaemon> {
    let handles = spawn_local_multiring(
        RINGS,
        NODES,
        ProtocolConfig::default(),
        MembershipConfig::for_wall_clock(),
        &[],
    )
    .expect("rings stand up");
    let mut columns: Vec<Vec<_>> = (0..NODES).map(|_| Vec::new()).collect();
    for ring in handles {
        for (i, node) in ring.into_iter().enumerate() {
            columns[i].push(node);
        }
    }
    columns
        .into_iter()
        .zip(shareds)
        .map(|(nodes, shared)| {
            let options = MultiRingOptions {
                frontend: FrontendOptions::enabled(),
                app_state: Some(shared.clone()),
                ..MultiRingOptions::default()
            };
            MultiRingDaemon::start_with(nodes, shards(), options)
        })
        .collect()
}

/// Brute-forces a key that hashes into `part` under the test's split.
fn key_in(tag: &str, part: &str) -> String {
    for i in 0..10_000u32 {
        let k = format!("{tag}-{i}");
        if partition_of(&k, PARTS) == part {
            return k;
        }
    }
    panic!("no key for partition {part}")
}

/// Blocks until every replica opened its serving gate.
fn await_all_serving(shareds: &[Arc<KvShared>]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if shareds.iter().all(|s| s.serving()) {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("replicas never all started serving");
}

/// Blocks until every replica sits at the same *stable* position (equal
/// across replicas and unchanged over a settle window), returning it.
fn await_convergence(shareds: &[Arc<KvShared>]) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let p: Vec<u64> = shareds.iter().map(|s| s.position()).collect();
        if p.iter().all(|&x| x == p[0]) {
            std::thread::sleep(Duration::from_millis(300));
            let q: Vec<u64> = shareds.iter().map(|s| s.position()).collect();
            if q == p {
                return p[0];
            }
        } else {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    panic!("replica positions never converged");
}

#[test]
fn replicated_kv_end_to_end() {
    let shareds: Vec<Arc<KvShared>> = (0..NODES).map(|_| KvShared::new(PARTS)).collect();
    let daemons = spawn_daemons(&shareds);
    let stores: Vec<KvStore> = (0..NODES as usize)
        .map(|i| {
            KvStore::start(
                &daemons[i],
                shareds[i].clone(),
                KvConfig {
                    partitions: PARTS,
                    name: format!("replica-{i}"),
                    ..KvConfig::default()
                },
            )
            .expect("replica starts")
        })
        .collect();
    await_all_serving(&shareds);

    let addr0 = daemons[0].session_addr().expect("session socket");
    let addr1 = daemons[1].session_addr().expect("session socket");
    let mut a = KvClient::connect(addr0, "client-a", PARTS).expect("connect a");
    a.wait_serving(Duration::from_secs(30))
        .expect("replica 0 serves");

    // Partitions on distinct rings: kv.0 orders on ring 0, kv.1 on ring 1.
    let k_r0 = key_in("alpha", "kv.0");
    let k_r1 = key_in("beta", "kv.1");

    // Confirmed put, then read-your-writes.
    let put_seq = a.put(&k_r0, "v1").expect("put");
    a.confirm(&k_r0, put_seq, LONG).expect("confirm put");
    let got = a
        .get(&k_r0, ReadMode::ReadYourWrites, LONG)
        .expect("ryw read");
    assert_eq!(
        got.value.as_deref(),
        Some(b"v1".as_ref()),
        "ryw sees own put"
    );

    // CAS with a holding guard swaps the value.
    let seq = a
        .cas(&k_r0, Some(Bytes::from("v1")), "v2")
        .expect("cas submit");
    a.confirm(&k_r0, seq, LONG).expect("confirm cas");
    let got = a.get(&k_r0, ReadMode::ReadYourWrites, LONG).expect("read");
    assert_eq!(got.value.as_deref(), Some(b"v2".as_ref()), "cas applied");

    // A transaction spanning both rings commits atomically at the merged
    // position of its last fragment.
    let txn_seq = a
        .txn(vec![
            KvWrite::Put {
                key: k_r0.clone(),
                value: Bytes::from("both-0"),
            },
            KvWrite::Put {
                key: k_r1.clone(),
                value: Bytes::from("both-1"),
            },
        ])
        .expect("cross-ring txn");
    a.confirm(&k_r1, txn_seq, LONG).expect("confirm txn");

    // A second client on a different daemon: linearizable reads must
    // observe the confirmed transaction, whoever wrote it.
    let mut b = KvClient::connect(addr1, "client-b", PARTS).expect("connect b");
    b.wait_serving(Duration::from_secs(30))
        .expect("replica 1 serves");
    let got = b
        .get(&k_r0, ReadMode::Linearizable, LONG)
        .expect("linearizable read r0");
    assert_eq!(got.value.as_deref(), Some(b"both-0".as_ref()));
    let got = b
        .get(&k_r1, ReadMode::Linearizable, LONG)
        .expect("linearizable read r1");
    assert_eq!(got.value.as_deref(), Some(b"both-1".as_ref()));

    // A failing CAS aborts the whole batch — even across rings: the put
    // riding along must not land.
    let k3_r1 = key_in("delta", "kv.3");
    let seq = a
        .txn(vec![
            KvWrite::Cas {
                key: k_r0.clone(),
                expect: Some(Bytes::from("wrong")),
                value: Bytes::from("clobbered"),
            },
            KvWrite::Put {
                key: k3_r1.clone(),
                value: Bytes::from("should-not-land"),
            },
        ])
        .expect("aborting txn");
    a.confirm(&k3_r1, seq, LONG)
        .expect("aborted txn still commits a position");
    let got = a
        .get(&k_r0, ReadMode::Local, LONG)
        .expect("read after abort");
    assert_eq!(
        got.value.as_deref(),
        Some(b"both-0".as_ref()),
        "failed CAS must not clobber"
    );
    let got = a.get(&k3_r1, ReadMode::Local, LONG).expect("read rider");
    assert_eq!(got.value, None, "rider of a failed CAS must not land");

    // Quiesce, then attack exactly-once: reconnect as client-a through a
    // *different* daemon and resubmit the long-committed first put. The
    // delivery-side dedup must drop it at every replica — the value must
    // not revert to "v1" and no replica may apply an extra op beyond the
    // sentinel barrier write.
    let pos = await_convergence(&shareds);
    assert!(pos > 0, "replicas consumed nothing");
    let before: Vec<u64> = shareds.iter().map(|s| s.stats().applied_ops).collect();
    let last = a.last_seq();
    a.close();
    let dup = SessionClient::connect_session(addr1, "client-a", last).expect("reconnect");
    let payload = encode_op(&KvOp::Write {
        writes: vec![KvWrite::Put {
            key: k_r0.clone(),
            value: Bytes::from("v1"),
        }],
    });
    let part = partition_of(&k_r0, PARTS);
    dup.resubmit(put_seq, &[part.as_str()], payload, Service::Agreed)
        .expect("resubmit");
    // Barrier: a fresh confirmed write ordered after the duplicate.
    let sentinel = key_in("omega", "kv.2");
    let seq = b.put(&sentinel, "done").expect("sentinel put");
    b.confirm(&sentinel, seq, LONG).expect("confirm sentinel");
    dup.bye();

    await_convergence(&shareds);
    for (i, s) in shareds.iter().enumerate() {
        assert_eq!(
            s.read(&k_r0).as_deref(),
            Some(b"both-0".as_ref()),
            "replica {i}: duplicate resubmit reverted the value"
        );
        let stats = s.stats();
        assert_eq!(
            stats.applied_ops,
            before[i] + 1,
            "replica {i}: duplicate slipped past dedup"
        );
        assert_eq!(stats.foreign_payloads, 0, "replica {i}: foreign payloads");
        assert_eq!(stats.replay_skipped, 0, "replica {i}: unexpected replays");
        assert_eq!(stats.txns_expired, 0, "replica {i}: expired transactions");
    }

    // Convergence is byte-deep: equal positions, equal hashes, equal
    // machines.
    let hashes: Vec<u64> = shareds.iter().map(|s| s.state_hash()).collect();
    assert!(
        hashes.iter().all(|&h| h == hashes[0]),
        "state hashes diverge: {hashes:x?}"
    );
    shareds[0].with_machine(|m0| {
        for s in &shareds[1..] {
            s.with_machine(|m| assert_eq!(m0, m, "replica machines diverge"));
        }
    });

    b.close();
    for s in stores {
        s.shutdown();
    }
    for d in daemons {
        d.shutdown();
    }
}
