//! Live-path chaos smoke: a fixed-seed fault schedule — packet loss,
//! churn, partitions, token bursts, and daemon crashes — replayed against
//! a real localhost UDP ring, with the same EVS checker the virtual-time
//! harness uses running over what the daemons actually delivered.
//!
//! These tests stand up real sockets and threads and inject real faults;
//! run them single-threaded (`--test-threads=1`) so concurrent rings do
//! not compete for CPU and skew the wall-clock fault offsets.

use accelring_chaos::{run_live_chaos, FaultKind, FaultSchedule, LiveChaosConfig};

/// The CI seed. Chosen (and pinned) because its schedule exercises the
/// full fault surface; `schedule_covers_the_fault_surface` below fails if
/// a generator change ever makes this seed weaker.
const CI_SEED: u64 = 3;

#[test]
fn live_smoke_seed_is_evs_clean() {
    let report = run_live_chaos(LiveChaosConfig::smoke(CI_SEED)).expect("ring stands up");
    assert!(
        report.ok(),
        "live seed {CI_SEED} violated EVS invariants:\n{}",
        report.render()
    );
    assert!(report.stats.events_applied > 0, "no faults applied");
    assert!(report.stats.submitted > 0, "no workload submitted");
    assert!(report.stats.delivered > 0, "nothing delivered");
}

#[test]
fn schedule_covers_the_fault_surface() {
    // The acceptance criterion asks for loss + partition + daemon crash
    // in one live run; pin that property to the CI seed's schedule.
    let cfg = LiveChaosConfig::smoke(CI_SEED);
    let schedule = FaultSchedule::generate(cfg.seed, cfg.schedule);
    let has = |pred: &dyn Fn(&FaultKind) -> bool| schedule.events.iter().any(|e| pred(&e.kind));
    assert!(
        has(&|k| matches!(k, FaultKind::SetLoss { .. })),
        "schedule lacks packet loss"
    );
    assert!(
        has(&|k| matches!(k, FaultKind::Partition(_))),
        "schedule lacks a partition"
    );
    assert!(
        has(&|k| matches!(k, FaultKind::Crash(_) | FaultKind::CrashTokenHolder)),
        "schedule lacks a daemon crash"
    );
    assert!(
        has(&|k| matches!(k, FaultKind::TokenBurst(_))),
        "schedule lacks a token burst"
    );
}

#[test]
fn live_schedule_is_reproducible() {
    let cfg = LiveChaosConfig::smoke(42);
    let a = FaultSchedule::generate(cfg.seed, cfg.schedule);
    let b = FaultSchedule::generate(cfg.seed, cfg.schedule);
    assert_eq!(a, b, "same seed must give the same live fault schedule");
}
