//! Live chaos over the shared-memory transport: the same seeded smoke
//! schedule (packet loss, a partition, heals) replayed on a real
//! localhost ring twice — once over `Transport::Shm`, once over
//! `Transport::Udp` — with the EVS checker run over both and the
//! delivered orders compared across the two transports.
//!
//! What "identical order" can soundly mean across two *live* runs: the
//! fault distribution is seeded but real threads make packet fates and
//! token interleavings nondeterministic run to run, so two executions
//! form different rings and their total orders are legitimately
//! different permutations (see the determinism caveat in
//! `accelring_chaos::live`). What must hold regardless of transport is
//! per-sender order: every message a node delivered from sender `s` in
//! both runs must appear in the same relative order in both — the
//! transport may drop traffic under chaos but may never reorder a
//! sender's accepted stream. That is exactly the property a bytes-level
//! transport swap could break, so that is what this test pins, on top of
//! the full EVS invariant suite per run.
//!
//! Like the other live tests, run single-threaded (`--test-threads=1`).

use std::collections::{BTreeMap, BTreeSet};

use accelring_chaos::{
    run_live_chaos_with_orders, FaultKind, FaultSchedule, LiveChaosConfig, MsgId,
};
use accelring_transport::Transport;

/// Pinned seed: `shm_seed_schedule_has_loss_partition_and_heal` below
/// fails if a generator change ever makes this schedule weaker.
const SHM_SEED: u64 = 3;

#[test]
fn shm_seed_schedule_has_loss_partition_and_heal() {
    let cfg = LiveChaosConfig::smoke(SHM_SEED);
    let schedule = FaultSchedule::generate(cfg.seed, cfg.schedule);
    let has = |pred: &dyn Fn(&FaultKind) -> bool| schedule.events.iter().any(|e| pred(&e.kind));
    assert!(
        has(&|k| matches!(k, FaultKind::SetLoss { .. })),
        "schedule lacks packet loss"
    );
    assert!(
        has(&|k| matches!(k, FaultKind::Partition(_))),
        "schedule lacks a partition"
    );
    assert!(
        has(&|k| matches!(k, FaultKind::Heal)),
        "schedule lacks a heal"
    );
}

/// Splits one node's delivered sequence into per-sender counter streams.
fn per_sender(order: &[MsgId]) -> BTreeMap<u16, Vec<u64>> {
    let mut map: BTreeMap<u16, Vec<u64>> = BTreeMap::new();
    for id in order {
        map.entry(id.sender).or_default().push(id.counter);
    }
    map
}

#[test]
fn shm_live_chaos_is_evs_clean_and_order_matches_udp() {
    let mut cfg = LiveChaosConfig::smoke(SHM_SEED);

    cfg.transport = Transport::Shm;
    let (shm_report, shm_orders) = run_live_chaos_with_orders(cfg).expect("shm ring stands up");
    assert!(
        shm_report.ok(),
        "shm run of seed {SHM_SEED} violated EVS invariants:\n{}",
        shm_report.render()
    );
    assert!(shm_report.stats.events_applied > 0, "no faults applied");
    assert!(shm_report.stats.delivered > 0, "shm run delivered nothing");

    cfg.transport = Transport::Udp;
    let (udp_report, udp_orders) = run_live_chaos_with_orders(cfg).expect("udp ring stands up");
    assert!(
        udp_report.ok(),
        "udp run of seed {SHM_SEED} violated EVS invariants:\n{}",
        udp_report.render()
    );
    assert!(udp_report.stats.delivered > 0, "udp run delivered nothing");

    // Cross-transport order comparison: for every node pair and every
    // sender, the messages delivered in both runs must appear in the
    // same relative order. Per-sender streams are totally ordered by
    // submission counter, so "same relative order" means both delivered
    // subsequences are increasing — any transport-level reordering of a
    // sender's accepted stream would break monotonicity in one of them.
    let mut compared = 0usize;
    for (node, shm_order) in shm_orders.iter().enumerate() {
        let shm_senders = per_sender(shm_order);
        for udp_order in &udp_orders {
            let udp_senders = per_sender(udp_order);
            for (sender, shm_counters) in &shm_senders {
                let Some(udp_counters) = udp_senders.get(sender) else {
                    continue;
                };
                let common: BTreeSet<u64> = shm_counters
                    .iter()
                    .copied()
                    .collect::<BTreeSet<_>>()
                    .intersection(&udp_counters.iter().copied().collect())
                    .copied()
                    .collect();
                let shm_common: Vec<u64> = shm_counters
                    .iter()
                    .copied()
                    .filter(|c| common.contains(c))
                    .collect();
                let udp_common: Vec<u64> = udp_counters
                    .iter()
                    .copied()
                    .filter(|c| common.contains(c))
                    .collect();
                assert_eq!(
                    shm_common, udp_common,
                    "node {node} sender {sender}: messages delivered under both \
                     transports must arrive in the same relative order"
                );
                compared += common.len();
            }
        }
    }
    assert!(
        compared > 0,
        "the two runs share no delivered messages — comparison is vacuous"
    );
}
