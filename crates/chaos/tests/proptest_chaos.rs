//! Property: any seed, with a bounded schedule, produces an EVS-clean run
//! and reproduces exactly — the chaos analogue of the codec roundtrip
//! properties.

use accelring_chaos::{run_chaos, ChaosConfig, ScheduleConfig};
use proptest::prelude::*;

fn bounded_config(seed: u64, nodes: u16, events: usize) -> ChaosConfig {
    let mut cfg = ChaosConfig::smoke(seed);
    cfg.nodes = nodes;
    cfg.schedule = ScheduleConfig::smoke(nodes as usize);
    cfg.schedule.events = events;
    cfg
}

proptest! {
    // Each case is a full cluster run; keep the count low enough that the
    // whole property stays well under a minute.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_seeds_are_evs_clean(
        seed in any::<u64>(),
        nodes in 3u16..7,
        events in 30usize..90,
    ) {
        let report = run_chaos(bounded_config(seed, nodes, events));
        prop_assert!(
            report.ok(),
            "seed {seed} ({nodes} nodes, {events} events) violated EVS invariants:\n{}",
            report.render()
        );
        prop_assert!(report.stats.delivered > 0);
    }

    #[test]
    fn random_seeds_reproduce(seed in any::<u64>()) {
        let a = run_chaos(bounded_config(seed, 4, 40));
        let b = run_chaos(bounded_config(seed, 4, 40));
        prop_assert_eq!(a.schedule, b.schedule);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.violations, b.violations);
    }
}
