//! Multi-seed chaos smoke: short seeded fault schedules against a live
//! membership cluster, all EVS invariants checked, plus the
//! intentionally-broken-journal fixtures proving the checker fires.

use accelring_chaos::{
    check, run_chaos, run_to_input, ChaosConfig, FaultSchedule, MsgId, ScheduleConfig,
};
use accelring_membership::testing::NodeEvent;

#[test]
fn smoke_seeds_are_evs_clean() {
    for seed in 0..4 {
        let report = run_chaos(ChaosConfig::smoke(seed));
        assert!(
            report.ok(),
            "seed {seed} violated EVS invariants:\n{}",
            report.render()
        );
        assert!(
            report.stats.events_applied > 0,
            "seed {seed} applied no faults"
        );
        assert!(report.stats.submitted > 0, "seed {seed} submitted nothing");
        assert!(report.stats.delivered > 0, "seed {seed} delivered nothing");
    }
}

#[test]
fn same_seed_reproduces_identical_run() {
    let a = run_chaos(ChaosConfig::smoke(9));
    let b = run_chaos(ChaosConfig::smoke(9));
    assert_eq!(a.schedule, b.schedule, "schedules must be identical");
    assert_eq!(a.stats, b.stats, "stats must be identical");
    assert_eq!(a.violations, b.violations);
    // And the full event trace, not just the aggregates.
    let (ia, _) = run_to_input(ChaosConfig::smoke(9));
    let (ib, _) = run_to_input(ChaosConfig::smoke(9));
    assert_eq!(ia.submitted, ib.submitted);
    for (ja, jb) in ia.journals.iter().zip(&ib.journals) {
        assert_eq!(ja.len(), jb.len());
        for (ea, eb) in ja.iter().zip(jb) {
            match (ea, eb) {
                (NodeEvent::Delivered(a), NodeEvent::Delivered(b)) => {
                    assert_eq!(a.payload, b.payload);
                    assert_eq!(a.sender, b.sender);
                }
                (NodeEvent::Config(a), NodeEvent::Config(b)) => {
                    assert_eq!(a.ring_id, b.ring_id);
                    assert_eq!(a.members, b.members);
                    assert_eq!(a.transitional, b.transitional);
                }
                _ => panic!("journal event kinds diverged"),
            }
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let a = FaultSchedule::generate(1, ScheduleConfig::smoke(5));
    let b = FaultSchedule::generate(2, ScheduleConfig::smoke(5));
    assert_ne!(a.events, b.events);
}

/// The broken fixture: corrupt a clean run's journal and watch each
/// invariant fire, with the seed and trace in the rendered report.
#[test]
fn corrupted_journals_trip_the_checker() {
    let cfg = ChaosConfig::smoke(3);
    let (clean, schedule) = run_to_input(cfg);
    assert!(check(&clean).is_empty(), "baseline run must be clean");

    // Duplicate a delivery at node 0 (the last one, so the copy lands in
    // the same incarnation as the original).
    let mut dup = clean.clone();
    let delivered = dup.journals[0]
        .iter()
        .rev()
        .find(|e| matches!(e, NodeEvent::Delivered(_)))
        .expect("node 0 delivered something")
        .clone();
    dup.journals[0].push(delivered);
    let violations = check(&dup);
    assert!(
        violations.iter().any(|v| v.invariant == "no-duplicate"),
        "got {violations:?}"
    );

    // Deliver a message nobody submitted.
    let mut phantom = clean.clone();
    if let Some(NodeEvent::Delivered(d)) = phantom.journals[1]
        .iter()
        .find(|e| matches!(e, NodeEvent::Delivered(_)))
        .cloned()
        .as_mut()
    {
        d.payload = bytes::Bytes::from("s0:999999");
        phantom.journals[1].push(NodeEvent::Delivered(d.clone()));
    }
    let violations = check(&phantom);
    assert!(
        violations.iter().any(|v| v.invariant == "no-phantom"),
        "got {violations:?}"
    );

    // Drop a probe delivery: self-delivery / agreement must notice.
    let mut missing = clean.clone();
    let probe = missing.probes[0];
    missing.journals[2].retain(|e| match e {
        NodeEvent::Delivered(d) => MsgId::parse(&d.payload) != Some(probe),
        NodeEvent::Config(_) => true,
    });
    let violations = check(&missing);
    assert!(
        violations.iter().any(|v| v.invariant == "self-delivery"),
        "got {violations:?}"
    );

    // Claim the run never reconverged.
    let mut stuck = clean.clone();
    stuck.all_operational = false;
    stuck.final_rings[0].pop();
    let violations = check(&stuck);
    assert!(
        violations.iter().any(|v| v.invariant == "reconvergence"),
        "got {violations:?}"
    );

    // A violating report must carry the seed and the replayable trace.
    let report = accelring_chaos::ChaosReport {
        seed: cfg.seed,
        schedule,
        violations,
        stats: Default::default(),
    };
    let rendered = report.render();
    assert!(rendered.contains("--seed 3"), "report: {rendered}");
    assert!(rendered.contains("fault trace:"), "report: {rendered}");
    assert!(rendered.contains("seed=3 "), "trace header: {rendered}");
}

#[test]
fn swapped_order_trips_agreed_order() {
    let cfg = ChaosConfig::smoke(5);
    let (clean, _) = run_to_input(cfg);
    assert!(check(&clean).is_empty());
    // Swap two adjacent deliveries at one node.
    let mut swapped = clean.clone();
    let idxs: Vec<usize> = swapped.journals[0]
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, NodeEvent::Delivered(_)))
        .map(|(i, _)| i)
        .collect();
    let (a, b) = (idxs[idxs.len() - 2], idxs[idxs.len() - 1]);
    swapped.journals[0].swap(a, b);
    let violations = check(&swapped);
    assert!(
        violations.iter().any(|v| v.invariant == "agreed-order"
            || v.invariant == "agreed-prefix"
            || v.invariant == "sender-fifo"),
        "got {violations:?}"
    );
}
