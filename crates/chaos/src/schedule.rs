//! Seeded fault-schedule generation.
//!
//! A [`FaultSchedule`] is a time-ordered list of [`FaultEvent`]s produced
//! deterministically from a `u64` seed: the same seed always yields the
//! identical schedule, which is what makes a failing chaos run replayable
//! from nothing but its seed. The generator tracks the cluster state it
//! is perturbing (who is crashed, who is paused, whether a partition is
//! in force) so that every emitted event is applicable when it fires.

use std::collections::BTreeSet;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault to inject at a scheduled virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Kill a daemon outright; it stops processing everything.
    Crash(usize),
    /// Kill whichever daemon last received the token — targets the token
    /// holder mid-rotation. Resolved against the live cluster when the
    /// event fires (deterministic for a fixed seed).
    CrashTokenHolder,
    /// Restart a crashed daemon as a fresh process with the same id.
    Restart(usize),
    /// Split the cluster into the given groups; unnamed nodes are
    /// isolated into singletons by the harness.
    Partition(Vec<Vec<usize>>),
    /// Reconnect everyone into one component.
    Heal,
    /// Drop the next `n` token transmissions back to back.
    TokenBurst(u64),
    /// Stall a daemon without killing it: timers stop, inputs queue.
    Pause(usize),
    /// Wake a paused daemon; it processes its backlog immediately.
    Resume(usize),
    /// Reconfigure the network loss model: Gilbert–Elliott data loss plus
    /// Bernoulli token loss (see `LossSpec::Chaos`).
    SetLoss {
        /// Data-message drop probability.
        data_rate: f64,
        /// Token drop probability.
        token_rate: f64,
    },
    /// Reconfigure duplication and reordering injection.
    SetChurn {
        /// Probability a delivered packet is duplicated.
        dup_rate: f64,
        /// Probability a delivered packet is delayed past later traffic.
        reorder_rate: f64,
        /// Upper bound on the injected extra delay, in nanoseconds.
        max_extra_delay_ns: u64,
    },
}

/// A [`FaultKind`] bound to the virtual time it fires at.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Absolute virtual time (ns) the fault fires at.
    pub at: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.at as f64 / 1e6;
        match &self.kind {
            FaultKind::Crash(i) => write!(f, "t={ms:.3}ms crash({i})"),
            FaultKind::CrashTokenHolder => write!(f, "t={ms:.3}ms crash-token-holder"),
            FaultKind::Restart(i) => write!(f, "t={ms:.3}ms restart({i})"),
            FaultKind::Partition(groups) => write!(f, "t={ms:.3}ms partition({groups:?})"),
            FaultKind::Heal => write!(f, "t={ms:.3}ms heal"),
            FaultKind::TokenBurst(n) => write!(f, "t={ms:.3}ms token-burst({n})"),
            FaultKind::Pause(i) => write!(f, "t={ms:.3}ms pause({i})"),
            FaultKind::Resume(i) => write!(f, "t={ms:.3}ms resume({i})"),
            FaultKind::SetLoss {
                data_rate,
                token_rate,
            } => write!(
                f,
                "t={ms:.3}ms set-loss(data={data_rate:.3}, token={token_rate:.3})"
            ),
            FaultKind::SetChurn {
                dup_rate,
                reorder_rate,
                max_extra_delay_ns,
            } => write!(
                f,
                "t={ms:.3}ms set-churn(dup={dup_rate:.3}, reorder={reorder_rate:.3}, \
                 delay<={max_extra_delay_ns}ns)"
            ),
        }
    }
}

/// Shape parameters for schedule generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleConfig {
    /// Number of daemons the schedule perturbs.
    pub nodes: usize,
    /// Number of fault events to generate.
    pub events: usize,
    /// Minimum virtual-time gap between consecutive faults (ns).
    pub min_gap_ns: u64,
    /// Maximum virtual-time gap between consecutive faults (ns).
    pub max_gap_ns: u64,
    /// Virtual time before the first fault, so the initial ring can form.
    pub warmup_ns: u64,
}

impl ScheduleConfig {
    /// A short schedule suitable for the default test suite.
    pub fn smoke(nodes: usize) -> ScheduleConfig {
        ScheduleConfig {
            nodes,
            events: 120,
            min_gap_ns: 300_000,
            max_gap_ns: 2_000_000,
            warmup_ns: 30_000_000,
        }
    }

    /// The soak-length schedule from the acceptance criteria: thousands
    /// of faults against an 8-node cluster.
    pub fn soak(nodes: usize, events: usize) -> ScheduleConfig {
        ScheduleConfig {
            nodes,
            events,
            min_gap_ns: 200_000,
            max_gap_ns: 1_500_000,
            warmup_ns: 30_000_000,
        }
    }
}

/// A reproducible fault schedule: the seed and config it was generated
/// from plus the ordered events.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// The seed the schedule derives from.
    pub seed: u64,
    /// The shape parameters used.
    pub config: ScheduleConfig,
    /// Events in non-decreasing `at` order.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Generates the schedule for `seed`. Deterministic: equal inputs
    /// yield an identical event list.
    pub fn generate(seed: u64, config: ScheduleConfig) -> FaultSchedule {
        assert!(config.nodes >= 2, "chaos needs at least two daemons");
        assert!(config.min_gap_ns <= config.max_gap_ns);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut gen = Generator {
            n: config.nodes,
            crashed: BTreeSet::new(),
            paused: BTreeSet::new(),
            partitioned: false,
        };
        let mut at = config.warmup_ns;
        let mut events = Vec::with_capacity(config.events);
        while events.len() < config.events {
            at += rng.random_range(config.min_gap_ns..=config.max_gap_ns);
            if let Some(kind) = gen.next_fault(&mut rng) {
                events.push(FaultEvent { at, kind });
            }
        }
        FaultSchedule {
            seed,
            config,
            events,
        }
    }

    /// Returns a copy of this schedule with the given nodes shielded
    /// from process-level faults, for runs where designated observers
    /// must stay up (e.g. the merged-stream observers of a multi-ring
    /// chaos run, which need complete journals to compare).
    ///
    /// Process faults aimed at a protected node are deterministically
    /// remapped onto an unprotected one (`unprotected[i % len]`), so the
    /// fault density is preserved. [`FaultKind::CrashTokenHolder`] —
    /// which could resolve to a protected node at fire time — becomes a
    /// token burst of equivalent disruption. Partitions keep all
    /// protected nodes together in the first group, so they share every
    /// configuration change. Network-level faults (loss, churn, token
    /// bursts) pass through untouched: shielded nodes still live on the
    /// same degraded network.
    ///
    /// # Panics
    ///
    /// Panics if every node would be protected (nothing left to fault).
    pub fn shield(&self, protected: &[usize]) -> FaultSchedule {
        let shielded: BTreeSet<usize> = protected.iter().copied().collect();
        let unprotected: Vec<usize> = (0..self.config.nodes)
            .filter(|i| !shielded.contains(i))
            .collect();
        assert!(
            !unprotected.is_empty(),
            "cannot shield every node of the schedule"
        );
        let map = |i: usize| -> usize {
            if shielded.contains(&i) {
                unprotected[i % unprotected.len()]
            } else {
                i
            }
        };
        let events = self
            .events
            .iter()
            .map(|e| {
                let kind = match &e.kind {
                    FaultKind::Crash(i) => FaultKind::Crash(map(*i)),
                    FaultKind::Restart(i) => FaultKind::Restart(map(*i)),
                    FaultKind::Pause(i) => FaultKind::Pause(map(*i)),
                    FaultKind::Resume(i) => FaultKind::Resume(map(*i)),
                    FaultKind::CrashTokenHolder => FaultKind::TokenBurst(3),
                    FaultKind::Partition(groups) => {
                        let mut first: Vec<usize> = shielded.iter().copied().collect();
                        let mut rest: Vec<Vec<usize>> = Vec::new();
                        for (gi, g) in groups.iter().enumerate() {
                            let kept: Vec<usize> = g
                                .iter()
                                .copied()
                                .filter(|n| !shielded.contains(n))
                                .collect();
                            if gi == 0 {
                                first.extend(kept);
                            } else if !kept.is_empty() {
                                rest.push(kept);
                            }
                        }
                        let mut out = vec![first];
                        out.append(&mut rest);
                        FaultKind::Partition(out)
                    }
                    other => other.clone(),
                };
                FaultEvent { at: e.at, kind }
            })
            .collect();
        FaultSchedule {
            seed: self.seed,
            config: self.config,
            events,
        }
    }

    /// The compact replayable trace: one line per event, preceded by the
    /// seed. This is what violation reports embed.
    pub fn trace(&self) -> String {
        let mut out = format!(
            "seed={} nodes={} events={}\n",
            self.seed,
            self.config.nodes,
            self.events.len()
        );
        for e in &self.events {
            out.push_str(&format!("  {e}\n"));
        }
        out
    }
}

/// Cluster-state shadow the generator consults so every event it emits is
/// applicable when it fires.
struct Generator {
    n: usize,
    crashed: BTreeSet<usize>,
    paused: BTreeSet<usize>,
    partitioned: bool,
}

impl Generator {
    /// Nodes that are neither crashed nor paused.
    fn running(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|i| !self.crashed.contains(i) && !self.paused.contains(i))
            .collect()
    }

    fn next_fault(&mut self, rng: &mut StdRng) -> Option<FaultKind> {
        // Weighted pick. Disruptive faults (crash/partition) are rarer
        // than transient ones (token loss, churn knobs) so the cluster
        // spends time in every membership state rather than thrashing.
        let roll = rng.random_range(0u32..100);
        match roll {
            0..=9 => {
                // Crash, but keep at least one daemon running.
                let running = self.running();
                if running.len() <= 1 {
                    return self.restart_or_none(rng);
                }
                if rng.random_bool(0.3) {
                    // Resolved against the live cluster at fire time.
                    Some(FaultKind::CrashTokenHolder)
                } else {
                    let victim = running[rng.random_range(0..running.len())];
                    self.crashed.insert(victim);
                    Some(FaultKind::Crash(victim))
                }
            }
            10..=24 => self.restart_or_none(rng),
            25..=34 => {
                // Partition the live nodes into 2..=3 groups.
                let mut live: Vec<usize> =
                    (0..self.n).filter(|i| !self.crashed.contains(i)).collect();
                if live.len() < 2 {
                    return Some(FaultKind::Heal);
                }
                // Fisher-Yates with the schedule rng keeps this seeded.
                for i in (1..live.len()).rev() {
                    live.swap(i, rng.random_range(0..=i));
                }
                let groups_n = if live.len() >= 3 && rng.random_bool(0.4) {
                    3
                } else {
                    2
                };
                let mut groups: Vec<Vec<usize>> = vec![Vec::new(); groups_n];
                for (idx, node) in live.into_iter().enumerate() {
                    groups[idx % groups_n].push(node);
                }
                self.partitioned = true;
                Some(FaultKind::Partition(groups))
            }
            35..=49 => {
                if self.partitioned {
                    self.partitioned = false;
                    Some(FaultKind::Heal)
                } else {
                    Some(FaultKind::TokenBurst(rng.random_range(1u64..=4)))
                }
            }
            50..=64 => Some(FaultKind::TokenBurst(rng.random_range(1u64..=6))),
            65..=74 => {
                // Pause, keeping at least one daemon running.
                let running = self.running();
                if running.len() <= 1 {
                    return self.resume_or_none();
                }
                let victim = running[rng.random_range(0..running.len())];
                self.paused.insert(victim);
                Some(FaultKind::Pause(victim))
            }
            75..=84 => self.resume_or_none(),
            85..=92 => Some(FaultKind::SetLoss {
                data_rate: rng.random_range(0.0..0.15),
                token_rate: rng.random_range(0.0..0.05),
            }),
            _ => Some(FaultKind::SetChurn {
                dup_rate: rng.random_range(0.0..0.10),
                reorder_rate: rng.random_range(0.0..0.10),
                max_extra_delay_ns: rng.random_range(10_000u64..200_000),
            }),
        }
    }

    fn restart_or_none(&mut self, rng: &mut StdRng) -> Option<FaultKind> {
        let crashed: Vec<usize> = self.crashed.iter().copied().collect();
        if crashed.is_empty() {
            return None;
        }
        let node = crashed[rng.random_range(0..crashed.len())];
        self.crashed.remove(&node);
        Some(FaultKind::Restart(node))
    }

    fn resume_or_none(&mut self) -> Option<FaultKind> {
        let node = self.paused.iter().next().copied()?;
        self.paused.remove(&node);
        Some(FaultKind::Resume(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ScheduleConfig::smoke(6);
        let a = FaultSchedule::generate(17, cfg);
        let b = FaultSchedule::generate(17, cfg);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(18, cfg);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn events_are_time_ordered_and_counted() {
        let cfg = ScheduleConfig::soak(8, 5_000);
        let s = FaultSchedule::generate(3, cfg);
        assert_eq!(s.events.len(), 5_000);
        for w in s.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(s.events[0].at >= cfg.warmup_ns);
    }

    #[test]
    fn crash_restart_pairs_are_consistent() {
        // Replaying the schedule against a state shadow must never crash
        // an already-crashed node or restart a live one.
        let s = FaultSchedule::generate(99, ScheduleConfig::soak(8, 2_000));
        let mut crashed = BTreeSet::new();
        let mut paused = BTreeSet::new();
        for e in &s.events {
            match &e.kind {
                FaultKind::Crash(i) => {
                    assert!(crashed.insert(*i), "double crash of {i} at {}", e.at)
                }
                FaultKind::Restart(i) => {
                    assert!(crashed.remove(i), "restart of live node {i} at {}", e.at)
                }
                FaultKind::Pause(i) => {
                    assert!(!crashed.contains(i));
                    assert!(paused.insert(*i), "double pause of {i}");
                }
                FaultKind::Resume(i) => {
                    assert!(paused.remove(i), "resume of running node {i}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn shield_never_faults_protected_nodes() {
        let s = FaultSchedule::generate(7, ScheduleConfig::soak(6, 3_000)).shield(&[0, 1]);
        for e in &s.events {
            match &e.kind {
                FaultKind::Crash(i)
                | FaultKind::Restart(i)
                | FaultKind::Pause(i)
                | FaultKind::Resume(i) => {
                    assert!(*i >= 2, "process fault hit protected node {i} at {}", e.at)
                }
                FaultKind::CrashTokenHolder => {
                    panic!("crash-token-holder survived shielding at {}", e.at)
                }
                FaultKind::Partition(groups) => {
                    assert!(
                        groups[0].contains(&0) && groups[0].contains(&1),
                        "partition separated the protected pair: {groups:?}"
                    );
                    for g in &groups[1..] {
                        assert!(!g.contains(&0) && !g.contains(&1));
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn shield_is_deterministic_and_preserves_times() {
        let base = FaultSchedule::generate(11, ScheduleConfig::smoke(5));
        let a = base.shield(&[0, 1]);
        let b = base.shield(&[0, 1]);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), base.events.len());
        for (orig, shielded) in base.events.iter().zip(&a.events) {
            assert_eq!(orig.at, shielded.at);
        }
    }

    #[test]
    #[should_panic(expected = "cannot shield every node")]
    fn shield_rejects_protecting_everyone() {
        let s = FaultSchedule::generate(1, ScheduleConfig::smoke(3));
        let _ = s.shield(&[0, 1, 2]);
    }

    #[test]
    fn trace_carries_seed_and_events() {
        let s = FaultSchedule::generate(42, ScheduleConfig::smoke(4));
        let t = s.trace();
        assert!(t.starts_with("seed=42 "));
        assert!(t.lines().count() > 100);
    }
}
