//! The [`NetHook`] implementation injecting seeded loss, duplication,
//! and reordering into the membership cluster's virtual network.
//!
//! Data and control packets pass through the per-receiver
//! [`LossState`] from `accelring-sim` (Gilbert–Elliott data loss — the
//! chaos extension of the paper's receiver-side Bernoulli model) and may
//! additionally be duplicated or delayed. Tokens are subject to the
//! independent Bernoulli token loss that only `LossSpec::Chaos` carries,
//! plus reorder delay; the protocol's token-retransmission and
//! membership timers are what is being exercised.

use std::cell::RefCell;
use std::rc::Rc;

use accelring_core::ParticipantId;
use accelring_membership::testing::{NetHook, PacketKind, SendFate};
use accelring_sim::{LossSpec, LossState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The runtime-adjustable fault knobs, shared between the chaos runner
/// (which turns them per the fault schedule) and the installed hook.
#[derive(Debug, Clone, PartialEq)]
pub struct NetKnobs {
    /// The loss model packets pass through (use `LossSpec::Chaos` for
    /// droppable tokens).
    pub loss: LossSpec,
    /// Probability a delivered packet is duplicated.
    pub dup_rate: f64,
    /// Probability a delivered packet is delayed past later traffic.
    pub reorder_rate: f64,
    /// Upper bound on injected extra delay (ns).
    pub max_extra_delay_ns: u64,
    /// Bumped on every knob change so the hook rebuilds its loss states.
    pub generation: u64,
}

impl NetKnobs {
    /// Lossless, churn-free knobs: the hook passes everything through.
    pub fn quiet() -> NetKnobs {
        NetKnobs {
            loss: LossSpec::None,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            max_extra_delay_ns: 0,
            generation: 0,
        }
    }

    /// Replaces the loss model and bumps the generation.
    pub fn set_loss(&mut self, loss: LossSpec) {
        self.loss = loss;
        self.generation += 1;
    }

    /// Replaces the duplication/reordering knobs.
    pub fn set_churn(&mut self, dup_rate: f64, reorder_rate: f64, max_extra_delay_ns: u64) {
        self.dup_rate = dup_rate;
        self.reorder_rate = reorder_rate;
        self.max_extra_delay_ns = max_extra_delay_ns;
        self.generation += 1;
    }
}

/// Seeded fault-injecting [`NetHook`]. Deterministic: the fates it hands
/// out depend only on its seed, the knob history, and the packet
/// sequence.
#[derive(Debug)]
pub struct ChaosNetHook {
    knobs: Rc<RefCell<NetKnobs>>,
    seed: u64,
    nodes: usize,
    seen_generation: u64,
    /// Per-receiver loss state, rebuilt when the knob generation moves.
    states: Vec<LossState>,
    rng: StdRng,
}

impl ChaosNetHook {
    /// Creates the hook for an `nodes`-daemon cluster. `knobs` is shared
    /// with the chaos runner, which adjusts it as the schedule fires.
    pub fn new(seed: u64, nodes: usize, knobs: Rc<RefCell<NetKnobs>>) -> ChaosNetHook {
        let mut hook = ChaosNetHook {
            knobs,
            seed,
            nodes,
            seen_generation: u64::MAX,
            states: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x00D1_CE00_D1CE_0001),
        };
        hook.rebuild_states();
        hook
    }

    fn rebuild_states(&mut self) {
        let knobs = self.knobs.borrow();
        let members: Vec<ParticipantId> = (0..self.nodes as u16).map(ParticipantId::new).collect();
        self.states = (0..self.nodes)
            .map(|i| {
                LossState::new(
                    knobs.loss,
                    &members,
                    i,
                    self.seed ^ knobs.generation.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            })
            .collect();
        self.seen_generation = knobs.generation;
    }

    fn churn(&mut self) -> (f64, f64, u64) {
        let knobs = self.knobs.borrow();
        (knobs.dup_rate, knobs.reorder_rate, knobs.max_extra_delay_ns)
    }
}

impl NetHook for ChaosNetHook {
    fn on_packet(&mut self, _now: u64, from: usize, to: usize, kind: PacketKind) -> SendFate {
        if self.knobs.borrow().generation != self.seen_generation {
            self.rebuild_states();
        }
        let dropped = match kind {
            PacketKind::Token => self.states[to].drops_token(),
            PacketKind::Data | PacketKind::Control => {
                self.states[to].drops_from(ParticipantId::new(from as u16))
            }
        };
        if dropped {
            return SendFate::drop();
        }
        let (dup_rate, reorder_rate, max_delay) = self.churn();
        let jitter = |rng: &mut StdRng| {
            if max_delay == 0 {
                0
            } else {
                rng.random_range(0..=max_delay)
            }
        };
        let mut delays = vec![0u64];
        if reorder_rate > 0.0 && self.rng.random_bool(reorder_rate) {
            delays[0] = jitter(&mut self.rng);
        }
        // Tokens are not duplicated: a duplicate token is
        // indistinguishable from a retransmission and the protocol
        // already exercises that path via TokenBurst faults.
        if kind != PacketKind::Token && dup_rate > 0.0 && self.rng.random_bool(dup_rate) {
            delays.push(jitter(&mut self.rng));
        }
        SendFate { delays }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fates(seed: u64, knobs: NetKnobs, n: usize) -> Vec<Vec<u64>> {
        let shared = Rc::new(RefCell::new(knobs));
        let mut hook = ChaosNetHook::new(seed, 4, shared);
        (0..n)
            .map(|i| {
                hook.on_packet(0, i % 4, (i + 1) % 4, PacketKind::Data)
                    .delays
            })
            .collect()
    }

    #[test]
    fn quiet_knobs_pass_everything_through() {
        for f in fates(5, NetKnobs::quiet(), 200) {
            assert_eq!(f, vec![0]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let knobs = NetKnobs {
            loss: LossSpec::chaos(0.3, 0.1),
            dup_rate: 0.2,
            reorder_rate: 0.2,
            max_extra_delay_ns: 50_000,
            generation: 0,
        };
        assert_eq!(fates(7, knobs.clone(), 300), fates(7, knobs.clone(), 300));
        assert_ne!(fates(7, knobs.clone(), 300), fates(8, knobs, 300));
    }

    #[test]
    fn tokens_drop_at_the_token_rate() {
        let shared = Rc::new(RefCell::new(NetKnobs {
            loss: LossSpec::chaos(0.0, 0.5),
            ..NetKnobs::quiet()
        }));
        let mut hook = ChaosNetHook::new(11, 4, shared);
        let drops = (0..2_000)
            .filter(|_| hook.on_packet(0, 0, 1, PacketKind::Token).delays.is_empty())
            .count();
        let rate = drops as f64 / 2_000.0;
        assert!((rate - 0.5).abs() < 0.05, "token drop rate {rate}");
    }

    #[test]
    fn knob_change_takes_effect() {
        let shared = Rc::new(RefCell::new(NetKnobs::quiet()));
        let mut hook = ChaosNetHook::new(3, 4, Rc::clone(&shared));
        assert_eq!(hook.on_packet(0, 0, 1, PacketKind::Data).delays, vec![0]);
        shared.borrow_mut().set_loss(LossSpec::chaos(1.0, 1.0));
        assert!(hook.on_packet(0, 0, 1, PacketKind::Data).delays.is_empty());
        assert!(hook.on_packet(0, 0, 1, PacketKind::Token).delays.is_empty());
        shared.borrow_mut().set_loss(LossSpec::None);
        assert_eq!(hook.on_packet(0, 0, 1, PacketKind::Data).delays, vec![0]);
    }
}
