//! Live-path chaos: replays a seeded [`FaultSchedule`] against a real
//! localhost UDP ring — actual sockets, actual threads, wall-clock timers
//! — through the transport's in-process fault plane, then runs the same
//! EVS [`checker`](crate::checker) the virtual-time harness uses.
//!
//! The virtual-time runner proves the *protocol core* maintains Extended
//! Virtual Synchrony under faults; this runner proves the *runtime* does:
//! the two-socket event loop, the send-path interposer, kill switches,
//! ring-counter restoration across restarts, and real thread interleaving
//! all sit between the schedule and the checker here.
//!
//! Determinism caveat: the fault *distribution* is seeded (same seed,
//! same schedule, same per-link loss decisions in expectation) but real
//! threads make packet fates nondeterministic run to run. The EVS
//! invariants are interleaving-independent, which is exactly why they are
//! the right thing to check on this path.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use accelring_core::{Backoff, ParticipantId, ProtocolConfig, Service};
use accelring_membership::testing::NodeEvent;
use accelring_membership::{MembershipConfig, StateKind};
use accelring_transport::{
    bind_with_retry_on, AddressBook, AppEvent, BoundNode, FaultPlane, NodeAddr, NodeHandle,
    NodeOptions, Transport, TransportError,
};
use bytes::Bytes;
use crossbeam::channel::Receiver;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checker::{self, CheckerInput, MsgId};
use crate::runner::{ChaosReport, ChaosStats};
use crate::schedule::{FaultKind, FaultSchedule, ScheduleConfig};

/// Shape of one live chaos run.
#[derive(Debug, Clone, Copy)]
pub struct LiveChaosConfig {
    /// Number of daemons on localhost.
    pub nodes: u16,
    /// The seed; determines the schedule and the fault plane's decisions.
    pub seed: u64,
    /// Fault-schedule shape. Event times are interpreted as wall-clock
    /// nanosecond offsets from the start of the workload (after the
    /// initial ring has formed), so gaps must suit the membership timers
    /// below, not the simulator's.
    pub schedule: ScheduleConfig,
    /// Wall-clock gap between workload submissions.
    pub submit_gap: Duration,
    /// Settle window after the final heal (and again after probes).
    pub settle: Duration,
    /// Ordering-protocol parameters.
    pub protocol: ProtocolConfig,
    /// Membership timers (wall-clock scale).
    pub membership: MembershipConfig,
    /// Datagram backend the ring runs on. Every suite built on this
    /// config runs unchanged over UDP loopback or shared-memory rings;
    /// [`LiveChaosConfig::smoke`] defaults it from `ACCELRING_TRANSPORT`.
    pub transport: Transport,
}

impl LiveChaosConfig {
    /// A CI-sized run: three daemons, a couple dozen faults spanning
    /// loss, churn, partitions, token bursts, and daemon crashes, a few
    /// seconds of wall clock in total.
    pub fn smoke(seed: u64) -> LiveChaosConfig {
        let nodes = 3;
        LiveChaosConfig {
            nodes,
            seed,
            schedule: ScheduleConfig {
                nodes: nodes as usize,
                events: 24,
                min_gap_ns: 40_000_000,  // 40 ms
                max_gap_ns: 160_000_000, // 160 ms
                warmup_ns: 300_000_000,  // 300 ms of clean traffic first
            },
            submit_gap: Duration::from_millis(8),
            settle: Duration::from_millis(1500),
            protocol: ProtocolConfig::accelerated(20, 15),
            membership: live_membership_config(),
            transport: Transport::from_env(),
        }
    }

    /// A longer soak for manual runs (`live_chaos` bench binary).
    pub fn soak(seed: u64, nodes: u16, events: usize) -> LiveChaosConfig {
        LiveChaosConfig {
            schedule: ScheduleConfig {
                nodes: nodes as usize,
                events,
                min_gap_ns: 30_000_000,
                max_gap_ns: 200_000_000,
                warmup_ns: 300_000_000,
            },
            ..LiveChaosConfig {
                nodes,
                seed,
                ..LiveChaosConfig::smoke(seed)
            }
        }
    }
}

/// Membership timers small enough for fast tests but robust on a loaded
/// CI machine (same scale as the transport's own end-to-end tests).
pub fn live_membership_config() -> MembershipConfig {
    MembershipConfig {
        token_loss_timeout: 300_000_000,      // 300 ms
        token_retransmit_timeout: 80_000_000, // 80 ms
        join_interval: 30_000_000,            // 30 ms
        consensus_timeout: 250_000_000,       // 250 ms
        commit_timeout: 250_000_000,          // 250 ms
        recovery_timeout: 1_000_000_000,      // 1 s
        presence_interval: 100_000_000,       // 100 ms
        gather_settle: 60_000_000,            // 60 ms
    }
}

/// One live daemon slot: the runner keeps its own clone of the event
/// receiver so journaling survives the handle being dropped on a crash.
struct Slot {
    handle: Option<NodeHandle>,
    events: Receiver<AppEvent>,
    /// Highest ring counter observed, carried into restarts so a reborn
    /// daemon never reuses a ring id (the same stable-storage rule the
    /// simulator's `Cluster::restart` follows).
    ring_counter: u64,
}

struct LiveRun {
    addrs: Vec<NodeAddr>,
    book: AddressBook,
    plane: Arc<FaultPlane>,
    protocol: ProtocolConfig,
    membership: MembershipConfig,
    transport: Transport,
    slots: Vec<Slot>,
    journals: Vec<Vec<NodeEvent>>,
    marks: Vec<Vec<usize>>,
}

impl LiveRun {
    fn start(cfg: &LiveChaosConfig) -> Result<LiveRun, TransportError> {
        let n = cfg.nodes as usize;
        let bound: Vec<BoundNode> = (0..cfg.nodes)
            .map(|i| bind_with_retry_on(cfg.transport, ParticipantId::new(i), "127.0.0.1"))
            .collect::<Result<_, _>>()?;
        let addrs: Vec<NodeAddr> = bound
            .iter()
            .map(BoundNode::addr)
            .collect::<Result<_, _>>()?;
        let book = AddressBook::new(addrs.clone());
        let plane = FaultPlane::new(cfg.seed);
        plane.register_book(&book);
        let slots = bound
            .into_iter()
            .map(|b| {
                let handle = b.start_with(
                    book.clone(),
                    cfg.protocol,
                    cfg.membership,
                    NodeOptions {
                        plane: Some(plane.clone()),
                        ..NodeOptions::default()
                    },
                )?;
                Ok(Slot {
                    events: handle.events().clone(),
                    handle: Some(handle),
                    ring_counter: 0,
                })
            })
            .collect::<Result<_, TransportError>>()?;
        Ok(LiveRun {
            addrs,
            book,
            plane,
            protocol: cfg.protocol,
            membership: cfg.membership,
            transport: cfg.transport,
            slots,
            journals: vec![Vec::new(); n],
            marks: vec![Vec::new(); n],
        })
    }

    /// Moves everything queued on every node's event channel into the
    /// journals (the live counterpart of the simulator's journal).
    fn drain_events(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            while let Ok(ev) = slot.events.try_recv() {
                match ev {
                    AppEvent::Delivered(d) => self.journals[i].push(NodeEvent::Delivered(d)),
                    AppEvent::Config(c) => self.journals[i].push(NodeEvent::Config(c)),
                    // A panic would surface as a missing daemon; the
                    // checker's reconvergence invariant catches it.
                    AppEvent::Fault { .. } => {}
                }
            }
            if let Some(h) = &slot.handle {
                slot.ring_counter = slot.ring_counter.max(h.ring_counter());
            }
        }
    }

    fn is_crashed(&self, i: usize) -> bool {
        self.slots[i].handle.is_none()
    }

    fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.handle.is_some()).count()
    }

    /// Kills node `i`'s event-loop thread (abrupt, like a process kill:
    /// no departure announcement, peers must detect the loss).
    fn crash(&mut self, i: usize) {
        if let Some(h) = self.slots[i].handle.take() {
            self.slots[i].ring_counter = self.slots[i].ring_counter.max(h.ring_counter());
            h.killswitch().kill();
            h.shutdown();
        }
    }

    /// Restarts node `i` on its original ports, restoring the ring
    /// counter; a fresh incarnation begins in its journal.
    fn restart(&mut self, i: usize) -> Result<(), TransportError> {
        if self.slots[i].handle.is_some() {
            return Ok(());
        }
        // The dead incarnation's remaining events must land before the
        // mark so they are attributed to the right incarnation.
        self.drain_events();
        self.marks[i].push(self.journals[i].len());
        let addr = self.addrs[i];
        // The old sockets close when the killed thread drops them; the
        // ports (or shm names) can take a beat to come free again.
        // Jittered backoff keeps simultaneous restarts from hammering
        // the same instant.
        let mut bound = None;
        let mut backoff = Backoff::new(
            Duration::from_millis(5),
            Duration::from_millis(100),
            u64::from(addr.pid.as_u16()),
        );
        while backoff.attempts() < 50 {
            match BoundNode::bind_addrs_on(self.transport, addr.pid, addr.data, addr.token) {
                Ok(b) => {
                    bound = Some(b);
                    break;
                }
                Err(_) => std::thread::sleep(backoff.next_delay()),
            }
        }
        let bound = bound.ok_or(TransportError::Bind {
            pid: addr.pid,
            attempts: 50,
            source: std::io::Error::new(std::io::ErrorKind::AddrInUse, "port not released"),
        })?;
        let handle = bound.start_with(
            self.book.clone(),
            self.protocol,
            self.membership,
            NodeOptions {
                plane: Some(self.plane.clone()),
                restore_ring_counter: self.slots[i].ring_counter,
                ..NodeOptions::default()
            },
        )?;
        self.slots[i].events = handle.events().clone();
        self.slots[i].handle = Some(handle);
        Ok(())
    }

    fn apply_fault(&mut self, kind: &FaultKind, stats: &mut ChaosStats) {
        match kind {
            FaultKind::Crash(i) => {
                if !self.is_crashed(*i) && self.live_count() > 1 {
                    self.crash(*i);
                    stats.events_applied += 1;
                }
            }
            FaultKind::CrashTokenHolder => {
                if let Some((_, holder)) = self.plane.last_token_route() {
                    let i = holder.as_u16() as usize;
                    if i < self.slots.len() && !self.is_crashed(i) && self.live_count() > 1 {
                        self.crash(i);
                        stats.events_applied += 1;
                    }
                }
            }
            FaultKind::Restart(i) => {
                if self.is_crashed(*i) && self.restart(*i).is_ok() {
                    stats.events_applied += 1;
                }
            }
            FaultKind::Partition(groups) => {
                let groups: Vec<Vec<u16>> = groups
                    .iter()
                    .map(|g| g.iter().map(|&i| i as u16).collect())
                    .collect();
                self.plane.partition(&groups);
                stats.events_applied += 1;
            }
            FaultKind::Heal => {
                self.plane.heal();
                stats.events_applied += 1;
            }
            FaultKind::TokenBurst(k) => {
                self.plane.drop_next_tokens(*k);
                stats.events_applied += 1;
            }
            // A real thread cannot be frozen from outside; network
            // isolation is the closest live analogue of a stall (inputs
            // are lost rather than queued, which is a *harsher* fault).
            FaultKind::Pause(i) => {
                self.plane.isolate(*i as u16);
                stats.events_applied += 1;
            }
            FaultKind::Resume(i) => {
                self.plane.reconnect(*i as u16);
                stats.events_applied += 1;
            }
            FaultKind::SetLoss {
                data_rate,
                token_rate,
            } => {
                self.plane.set_loss(*data_rate, *token_rate);
                stats.events_applied += 1;
            }
            FaultKind::SetChurn {
                dup_rate,
                reorder_rate,
                max_extra_delay_ns,
            } => {
                self.plane.set_churn(
                    *dup_rate,
                    *reorder_rate,
                    Duration::from_nanos(*max_extra_delay_ns),
                );
                stats.events_applied += 1;
            }
        }
    }

    /// The last regular configuration node `i` delivered (the live
    /// equivalent of the simulator's `ring_of`).
    fn final_ring(&self, i: usize) -> Vec<ParticipantId> {
        self.journals[i]
            .iter()
            .rev()
            .find_map(|e| match e {
                NodeEvent::Config(c) if !c.transitional => Some(c.members.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    fn all_operational(&self) -> bool {
        self.slots
            .iter()
            .all(|s| matches!(&s.handle, Some(h) if h.membership_state() == StateKind::Operational))
    }
}

fn submit_one(
    run: &mut LiveRun,
    rng: &mut StdRng,
    counters: &mut [u64],
    submitted: &mut BTreeSet<MsgId>,
    stats: &mut ChaosStats,
) {
    let live: Vec<usize> = (0..counters.len())
        .filter(|&i| !run.is_crashed(i))
        .collect();
    if live.is_empty() {
        return;
    }
    let node = live[rng.random_range(0..live.len())];
    counters[node] += 1;
    let id = MsgId {
        sender: node as u16,
        counter: counters[node],
    };
    let service = if rng.random_bool(0.25) {
        Service::Safe
    } else {
        Service::Agreed
    };
    let handle = run.slots[node].handle.as_ref().expect("live node");
    match handle.submit(Bytes::from(id.payload()), service) {
        Ok(()) => {
            submitted.insert(id);
            stats.submitted += 1;
        }
        Err(_) => stats.backpressured += 1,
    }
}

/// Replays a seeded fault schedule against a real localhost UDP ring and
/// checks the EVS invariants over what the daemons actually delivered.
///
/// # Errors
///
/// Returns [`TransportError`] if the ring cannot be stood up (bind or
/// spawn failures); fault-induced conditions never error, they show up as
/// checker violations instead.
///
/// # Panics
///
/// Panics if a live slot vanishes outside the crash path (internal
/// invariant).
pub fn run_live_chaos(cfg: LiveChaosConfig) -> Result<ChaosReport, TransportError> {
    run_live_chaos_with_orders(cfg).map(|(report, _)| report)
}

/// [`run_live_chaos`] that additionally returns each node's delivered
/// workload sequence (probe and workload [`MsgId`]s in delivery order,
/// per node) — the raw material for cross-run comparisons, e.g. the
/// shm-vs-UDP transport equivalence test.
///
/// # Errors
///
/// As [`run_live_chaos`].
///
/// # Panics
///
/// As [`run_live_chaos`].
pub fn run_live_chaos_with_orders(
    cfg: LiveChaosConfig,
) -> Result<(ChaosReport, Vec<Vec<MsgId>>), TransportError> {
    let n = cfg.nodes as usize;
    let schedule = FaultSchedule::generate(cfg.seed, cfg.schedule);
    let mut run = LiveRun::start(&cfg)?;
    let mut stats = ChaosStats::default();
    let started = Instant::now();

    // Wait for the initial full ring before any traffic or faults.
    let form_deadline = Instant::now() + Duration::from_secs(15);
    loop {
        run.drain_events();
        let formed = (0..n).all(|i| run.final_ring(i).len() == n);
        if formed && run.all_operational() {
            break;
        }
        assert!(
            Instant::now() < form_deadline,
            "initial ring of {n} must form within 15s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut wl_rng = StdRng::seed_from_u64(cfg.seed ^ 0x0077_0B10_AD00_0001);
    let mut counters = vec![0u64; n];
    let mut submitted: BTreeSet<MsgId> = BTreeSet::new();

    // Schedule times are offsets from here.
    let origin = Instant::now();
    let mut next_submit = cfg.submit_gap;
    for event in &schedule.events {
        let fire_at = Duration::from_nanos(event.at);
        while next_submit <= fire_at {
            sleep_until(origin, next_submit);
            run.drain_events();
            submit_one(
                &mut run,
                &mut wl_rng,
                &mut counters,
                &mut submitted,
                &mut stats,
            );
            next_submit += cfg.submit_gap;
        }
        sleep_until(origin, fire_at);
        run.drain_events();
        run.apply_fault(&event.kind, &mut stats);
    }

    // Final heal: undo every standing fault, restart the dead, settle.
    run.plane.quiesce();
    for i in 0..n {
        if run.is_crashed(i) {
            run.restart(i)?;
        }
    }
    std::thread::sleep(cfg.settle);
    for _ in 0..10 {
        run.drain_events();
        if run.all_operational() && (0..n).all(|i| run.final_ring(i).len() == n) {
            break;
        }
        std::thread::sleep(cfg.settle);
    }

    // Post-quiescence probes: one per node, must be delivered everywhere.
    let mut probes = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)]
    for node in 0..n {
        counters[node] += 1;
        let id = MsgId {
            sender: node as u16,
            counter: counters[node],
        };
        let handle = run.slots[node].handle.as_ref().expect("restarted node");
        if handle
            .submit(Bytes::from(id.payload()), Service::Safe)
            .is_ok()
        {
            submitted.insert(id);
            probes.push(id);
            stats.submitted += 1;
        } else {
            stats.backpressured += 1;
        }
    }
    // Probes need the full pipeline (order + safe delivery) to finish.
    let probe_deadline = Instant::now() + cfg.settle * 4;
    loop {
        std::thread::sleep(Duration::from_millis(50));
        run.drain_events();
        let all_probed = (0..n).all(|i| {
            let delivered: BTreeSet<MsgId> = run.journals[i]
                .iter()
                .filter_map(|e| match e {
                    NodeEvent::Delivered(d) => MsgId::parse(&d.payload),
                    NodeEvent::Config(_) => None,
                })
                .collect();
            probes.iter().all(|p| delivered.contains(p))
        });
        if all_probed || Instant::now() > probe_deadline {
            break;
        }
    }
    run.drain_events();

    stats.rings_formed = run
        .slots
        .iter()
        .filter_map(|s| s.handle.as_ref().map(NodeHandle::rings_formed))
        .sum();
    stats.end_ns = started.elapsed().as_nanos() as u64;
    stats.delivered = run
        .journals
        .iter()
        .flatten()
        .filter(|e| matches!(e, NodeEvent::Delivered(_)))
        .count() as u64;

    let input = CheckerInput {
        nodes: n,
        journals: run.journals.clone(),
        submitted,
        incarnation_marks: run.marks.clone(),
        probes,
        all_operational: run.all_operational(),
        final_rings: (0..n).map(|i| run.final_ring(i)).collect(),
    };
    let violations = checker::check(&input);
    let orders: Vec<Vec<MsgId>> = run
        .journals
        .iter()
        .map(|journal| {
            journal
                .iter()
                .filter_map(|e| match e {
                    NodeEvent::Delivered(d) => MsgId::parse(&d.payload),
                    NodeEvent::Config(_) => None,
                })
                .collect()
        })
        .collect();
    Ok((
        ChaosReport {
            seed: cfg.seed,
            schedule,
            violations,
            stats,
        },
        orders,
    ))
}

fn sleep_until(origin: Instant, offset: Duration) {
    let target = origin + offset;
    let now = Instant::now();
    if target > now {
        std::thread::sleep(target - now);
    }
}
