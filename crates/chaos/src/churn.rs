//! Churn schedules and the migration-handoff checker.
//!
//! A [`ChurnSchedule`] is the multi-ring counterpart of a
//! [`FaultSchedule`](crate::FaultSchedule): a seeded, wall-clock sequence
//! of *elastic* disturbances — data loss on one ring, an online group
//! migration to another ring, a daemon leaving and rejoining — replayed
//! against live UDP rings while a tagged workload keeps flowing.
//!
//! The handoff invariants are stricter than the single-ring checker's
//! agreed order: because a migration fence releases a deterministic
//! "last slot on the source / first slot on the target" boundary, every
//! observer that stays subscribed through the churn must see the *same
//! complete sequence* — no message lost in the gap between rings
//! (`churn-no-gap`), none delivered on both sides of the fence
//! (`churn-exactly-once`), none invented (`churn-phantom`), and one
//! global order (`churn-order`). [`check_churn_handoff`] checks exactly
//! that against the workload's ground-truth send set.

use std::collections::BTreeSet;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checker::{MsgId, Violation};

/// One elastic disturbance.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnKind {
    /// Set i.i.d. data-packet loss on one ring's fault plane.
    Loss {
        /// Ring whose plane takes the loss.
        ring: u16,
        /// Data-packet drop probability in `[0, 1)`.
        rate: f64,
    },
    /// Clear all loss on one ring's fault plane.
    HealLoss {
        /// Ring whose plane heals.
        ring: u16,
    },
    /// Migrate a group to another ring through the fenced handoff.
    Migrate {
        /// The migrating group.
        group: String,
        /// Target ring. The runner skips the event if the group already
        /// lives there (a seeded generator cannot know the live map).
        to: u16,
    },
    /// One daemon leaves every ring and rejoins after `down`.
    Restart {
        /// The daemon (participant id) to cycle.
        daemon: u16,
        /// How long it stays down before rebinding its ports.
        down: Duration,
    },
    /// A correlated crash: every listed daemon goes down before any
    /// comes back, so the rejoiners catch up from a minority of live
    /// peers — the restart-storm dimension of the recovery protocol.
    RestartStorm {
        /// The daemons (participant ids) to cycle together; never
        /// includes daemon 0 (the tick leader).
        daemons: Vec<u16>,
        /// How long the storm members all stay down.
        down: Duration,
    },
}

/// One scheduled disturbance: `kind` fires `at` after the workload
/// starts (after the initial rings have formed and views are installed).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnEvent {
    /// Wall-clock offset from workload start.
    pub at: Duration,
    /// What happens.
    pub kind: ChurnKind,
}

/// Shape of a generated churn schedule.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of rings in the deployment.
    pub rings: u16,
    /// Number of daemons.
    pub nodes: u16,
    /// Groups the generator may migrate.
    pub groups: Vec<String>,
    /// How many events to generate.
    pub events: usize,
    /// Minimum gap between consecutive events.
    pub min_gap: Duration,
    /// Maximum gap between consecutive events.
    pub max_gap: Duration,
    /// Clean-traffic warmup before the first event.
    pub warmup: Duration,
}

/// A seeded churn schedule: same seed, same disturbances at the same
/// offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSchedule {
    /// The generating seed (carried for failure reports).
    pub seed: u64,
    /// Events in firing order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Generates a randomized schedule from `seed`. Loss events are
    /// paired with heals by the generator so a run never ends with a
    /// lossy plane; migrations pick a uniformly random target ring and
    /// group; restarts never cycle daemon 0 (it is the tick leader —
    /// cycling it stalls every observer's merge for the whole downtime,
    /// which tests nothing about handoffs).
    pub fn generate(seed: u64, cfg: &ChurnConfig) -> ChurnSchedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc42_17e5_u64.rotate_left(17));
        let mut at = cfg.warmup;
        let mut events = Vec::with_capacity(cfg.events);
        let gap = |rng: &mut StdRng| {
            let span = cfg.max_gap.saturating_sub(cfg.min_gap);
            cfg.min_gap + span.mul_f64(rng.random::<f64>())
        };
        let mut lossy: BTreeSet<u16> = BTreeSet::new();
        for _ in 0..cfg.events {
            let kind = match rng.random_range(0..4u8) {
                0 => {
                    let ring = rng.random_range(0..cfg.rings);
                    lossy.insert(ring);
                    ChurnKind::Loss {
                        ring,
                        rate: rng.random_range(0.01..0.08),
                    }
                }
                1 if !lossy.is_empty() => {
                    let pick = rng.random_range(0..lossy.len());
                    let ring = *lossy.iter().nth(pick).expect("non-empty");
                    lossy.remove(&ring);
                    ChurnKind::HealLoss { ring }
                }
                2 if !cfg.groups.is_empty() && cfg.rings > 1 => ChurnKind::Migrate {
                    group: cfg.groups[rng.random_range(0..cfg.groups.len())].clone(),
                    to: rng.random_range(0..cfg.rings),
                },
                _ if cfg.nodes > 1 => ChurnKind::Restart {
                    daemon: rng.random_range(1..cfg.nodes),
                    down: Duration::from_millis(rng.random_range(200..600u64)),
                },
                _ => ChurnKind::HealLoss { ring: 0 },
            };
            events.push(ChurnEvent { at, kind });
            at += gap(&mut rng);
        }
        for ring in lossy {
            events.push(ChurnEvent {
                at,
                kind: ChurnKind::HealLoss { ring },
            });
            at += gap(&mut rng);
        }
        ChurnSchedule { seed, events }
    }

    /// The CI-sized schedule: a loss window on the migrating group's
    /// source ring bracketing exactly one migration and one daemon
    /// leave/join — the minimal run that exercises a fenced handoff
    /// under packet loss and a concurrent membership change. Offsets are
    /// jittered by `seed` so repeated CI runs do not all probe the same
    /// interleaving.
    pub fn smoke(seed: u64, group: &str, from: u16, to: u16, restart: u16) -> ChurnSchedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5_40ff_u64.rotate_left(31));
        let down = Duration::from_millis(300 + rng.random_range(0..200u64));
        let mut jitter = |base: u64| Duration::from_millis(base + rng.random_range(0..120u64));
        ChurnSchedule {
            seed,
            events: vec![
                ChurnEvent {
                    at: jitter(300),
                    kind: ChurnKind::Loss {
                        ring: from,
                        rate: 0.03,
                    },
                },
                ChurnEvent {
                    at: jitter(600),
                    kind: ChurnKind::Migrate {
                        group: group.to_string(),
                        to,
                    },
                },
                ChurnEvent {
                    at: jitter(900),
                    kind: ChurnKind::Restart {
                        daemon: restart,
                        down,
                    },
                },
                ChurnEvent {
                    at: jitter(1600),
                    kind: ChurnKind::HealLoss { ring: from },
                },
            ],
        }
    }

    /// Generates a restart-storm schedule: `cfg.events` correlated
    /// crashes, each taking down `storm_size` distinct daemons at once
    /// (never daemon 0 — the tick leader's downtime stalls every merge
    /// and tests nothing about recovery). A separate generator rather
    /// than a [`ChurnSchedule::generate`] arm so the storm dimension
    /// cannot perturb the draw sequence existing seeds pin down.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= storm_size < cfg.nodes`, i.e. the storm
    /// leaves at least daemon 0 up as a catch-up source.
    pub fn restart_storm(seed: u64, cfg: &ChurnConfig, storm_size: u16) -> ChurnSchedule {
        assert!(
            storm_size >= 1 && storm_size < cfg.nodes,
            "storm must cycle at least one daemon and leave survivors"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x570_12a3_u64.rotate_left(23));
        let mut at = cfg.warmup;
        let mut events = Vec::with_capacity(cfg.events);
        for _ in 0..cfg.events {
            let mut pool: Vec<u16> = (1..cfg.nodes).collect();
            let mut daemons = Vec::with_capacity(storm_size as usize);
            for _ in 0..storm_size {
                let pick = rng.random_range(0..pool.len());
                daemons.push(pool.swap_remove(pick));
            }
            daemons.sort_unstable();
            events.push(ChurnEvent {
                at,
                kind: ChurnKind::RestartStorm {
                    daemons,
                    down: Duration::from_millis(rng.random_range(200..600u64)),
                },
            });
            let span = cfg.max_gap.saturating_sub(cfg.min_gap);
            at += cfg.min_gap + span.mul_f64(rng.random::<f64>());
        }
        ChurnSchedule { seed, events }
    }
}

/// Checks the handoff invariants over observers that stayed subscribed
/// through the churn, against the workload's ground-truth send set:
///
/// - `churn-phantom`: an observer delivered an id that was never sent;
/// - `churn-exactly-once`: an observer delivered an id twice (a message
///   released on both sides of a fence, or a redirect duplicated);
/// - `churn-no-gap`: a sent id is missing at an observer (lost in the
///   handoff between the source ring's last slot and the target's
///   first);
/// - `churn-order`: two observers disagree on the global sequence.
///   With no-gap and exactly-once holding, every stream is a
///   permutation of `sent`, so agreement means the streams are
///   *identical* — the first index where two differ is reported.
pub fn check_churn_handoff(
    sent: &BTreeSet<MsgId>,
    observers: &[(usize, Vec<MsgId>)],
) -> Vec<Violation> {
    let mut v = Vec::new();
    for (node, stream) in observers {
        let mut seen = BTreeSet::new();
        for id in stream {
            if !sent.contains(id) {
                v.push(Violation {
                    invariant: "churn-phantom",
                    detail: format!("observer {node} delivered {id}, which was never sent"),
                });
            }
            if !seen.insert(*id) {
                v.push(Violation {
                    invariant: "churn-exactly-once",
                    detail: format!("observer {node} delivered {id} more than once"),
                });
            }
        }
        for id in sent {
            if !seen.contains(id) {
                v.push(Violation {
                    invariant: "churn-no-gap",
                    detail: format!("observer {node} never delivered {id}"),
                });
            }
        }
    }
    for i in 0..observers.len() {
        for j in i + 1..observers.len() {
            let (node_i, seq_i) = &observers[i];
            let (node_j, seq_j) = &observers[j];
            if seq_i != seq_j {
                let at = seq_i
                    .iter()
                    .zip(seq_j.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or(seq_i.len().min(seq_j.len()));
                let show = |s: &[MsgId], at: usize| {
                    s.get(at)
                        .map(MsgId::to_string)
                        .unwrap_or_else(|| "<end>".to_string())
                };
                v.push(Violation {
                    invariant: "churn-order",
                    detail: format!(
                        "observers {node_i} and {node_j} diverge at index {at}: {} vs {}",
                        show(seq_i, at),
                        show(seq_j, at),
                    ),
                });
            }
        }
    }
    v
}

/// What one daemon restart looked like, for [`check_recovery`]: the
/// runner records the cluster's live shard-map version and the victim's
/// dedup watermarks around the cycle, and what the rejoined incarnation
/// ended up serving with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The cycled daemon (participant id).
    pub daemon: u16,
    /// Live shard-map version at a surviving daemon when the victim
    /// came back up.
    pub map_before: u64,
    /// The rejoined incarnation's shard-map version once it served.
    pub map_after: u64,
    /// Per-ring dedup watermarks captured when the victim stopped.
    pub seqs_before: Vec<Vec<(String, u64)>>,
    /// The rejoined incarnation's per-ring dedup watermarks.
    pub seqs_after: Vec<Vec<(String, u64)>>,
}

/// Checks the recovery invariants over a run's restart reports:
///
/// - `recovery-stale-map`: a rejoined daemon served from a shard map
///   older than what the survivors held when it came back — its routing
///   and merge would diverge from every other observer's;
/// - `recovery-dedup-regression`: a watermark the dying incarnation
///   held is missing or lower in the rejoined one (on the same ring),
///   so a client resubmission across the restart would deliver twice.
pub fn check_recovery(reports: &[RecoveryReport]) -> Vec<Violation> {
    let mut v = Vec::new();
    for r in reports {
        if r.map_after < r.map_before {
            v.push(Violation {
                invariant: "recovery-stale-map",
                detail: format!(
                    "daemon {} rejoined serving map v{} while survivors held v{}",
                    r.daemon, r.map_after, r.map_before
                ),
            });
        }
        for (ring, before) in r.seqs_before.iter().enumerate() {
            for (client, seq) in before {
                let after = r
                    .seqs_after
                    .get(ring)
                    .and_then(|ws| ws.iter().find(|(c, _)| c == client))
                    .map(|(_, s)| *s)
                    .unwrap_or(0);
                if after < *seq {
                    v.push(Violation {
                        invariant: "recovery-dedup-regression",
                        detail: format!(
                            "daemon {} ring {ring}: client {client} watermark fell {} -> {after} \
                             across the restart",
                            r.daemon, seq
                        ),
                    });
                }
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(sender: u16, counter: u64) -> MsgId {
        MsgId { sender, counter }
    }

    fn cfg() -> ChurnConfig {
        ChurnConfig {
            rings: 2,
            nodes: 3,
            groups: vec!["hot".into(), "cold".into()],
            events: 12,
            min_gap: Duration::from_millis(50),
            max_gap: Duration::from_millis(200),
            warmup: Duration::from_millis(300),
        }
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let a = ChurnSchedule::generate(7, &cfg());
        let b = ChurnSchedule::generate(7, &cfg());
        assert_eq!(a, b);
        let c = ChurnSchedule::generate(8, &cfg());
        assert_ne!(a, c, "different seeds should give different schedules");
        assert!(a.events.len() >= 12);
    }

    #[test]
    fn generated_loss_is_always_healed_and_leader_never_cycled() {
        for seed in 0..32 {
            let s = ChurnSchedule::generate(seed, &cfg());
            let mut lossy = BTreeSet::new();
            for e in &s.events {
                match &e.kind {
                    ChurnKind::Loss { ring, .. } => {
                        lossy.insert(*ring);
                    }
                    ChurnKind::HealLoss { ring } => {
                        lossy.remove(ring);
                    }
                    ChurnKind::Restart { daemon, .. } => {
                        assert_ne!(*daemon, 0, "seed {seed} cycles the tick leader");
                    }
                    ChurnKind::RestartStorm { daemons, .. } => {
                        assert!(!daemons.contains(&0), "seed {seed} storms the tick leader");
                    }
                    ChurnKind::Migrate { .. } => {}
                }
            }
            assert!(lossy.is_empty(), "seed {seed} leaves rings lossy");
        }
    }

    #[test]
    fn smoke_is_one_migration_one_restart_bracketed_by_loss() {
        let s = ChurnSchedule::smoke(3, "hot", 0, 1, 2);
        let kinds: Vec<&'static str> = s
            .events
            .iter()
            .map(|e| match &e.kind {
                ChurnKind::Loss { .. } => "loss",
                ChurnKind::HealLoss { .. } => "heal",
                ChurnKind::Migrate { .. } => "migrate",
                ChurnKind::Restart { .. } => "restart",
                ChurnKind::RestartStorm { .. } => "storm",
            })
            .collect();
        assert_eq!(s.events.len(), 4);
        assert_eq!(
            kinds.iter().collect::<BTreeSet<_>>().len(),
            4,
            "smoke should have one event of each kind"
        );
        assert!(
            s.events.windows(2).all(|w| w[0].at <= w[1].at),
            "events out of order"
        );
        assert_eq!(ChurnSchedule::smoke(3, "hot", 0, 1, 2), s);
    }

    #[test]
    fn restart_storms_are_seed_deterministic_and_spare_the_leader() {
        let a = ChurnSchedule::restart_storm(11, &cfg(), 2);
        assert_eq!(a, ChurnSchedule::restart_storm(11, &cfg(), 2));
        assert_ne!(a, ChurnSchedule::restart_storm(12, &cfg(), 2));
        for seed in 0..32 {
            let s = ChurnSchedule::restart_storm(seed, &cfg(), 2);
            assert_eq!(s.events.len(), cfg().events);
            for e in &s.events {
                let ChurnKind::RestartStorm { daemons, .. } = &e.kind else {
                    panic!("seed {seed}: non-storm event {:?}", e.kind);
                };
                assert_eq!(daemons.len(), 2, "seed {seed}: wrong storm size");
                assert!(!daemons.contains(&0), "seed {seed} storms the tick leader");
                let distinct: BTreeSet<&u16> = daemons.iter().collect();
                assert_eq!(distinct.len(), daemons.len(), "seed {seed}: repeat victim");
            }
            assert!(
                s.events.windows(2).all(|w| w[0].at <= w[1].at),
                "seed {seed}: events out of order"
            );
        }
        // Storms must not disturb the draw sequence of the main
        // generator — existing seeds pin its schedules down.
        let before = ChurnSchedule::generate(7, &cfg());
        let _ = ChurnSchedule::restart_storm(7, &cfg(), 2);
        assert_eq!(before, ChurnSchedule::generate(7, &cfg()));
    }

    #[test]
    fn recovery_checker_passes_clean_reports() {
        let r = RecoveryReport {
            daemon: 2,
            map_before: 3,
            map_after: 4,
            seqs_before: vec![vec![("alice".into(), 10)], vec![]],
            seqs_after: vec![vec![("alice".into(), 10), ("bob".into(), 1)], vec![]],
        };
        assert!(check_recovery(&[r]).is_empty());
        // Degenerate: a daemon with no sessions and no map churn.
        let empty = RecoveryReport {
            daemon: 1,
            map_before: 0,
            map_after: 0,
            seqs_before: vec![],
            seqs_after: vec![],
        };
        assert!(check_recovery(&[empty]).is_empty());
    }

    #[test]
    fn recovery_checker_catches_stale_map_and_dedup_regression() {
        let r = RecoveryReport {
            daemon: 2,
            map_before: 5,
            map_after: 4,
            seqs_before: vec![vec![("alice".into(), 10), ("bob".into(), 3)]],
            // alice's watermark fell; bob's moved ring (counts as a
            // regression on ring 0 — watermarks are per-ring).
            seqs_after: vec![vec![("alice".into(), 9)], vec![("bob".into(), 3)]],
        };
        let v = check_recovery(&[r]);
        let invariants: Vec<&str> = v.iter().map(|x| x.invariant).collect();
        assert!(invariants.contains(&"recovery-stale-map"), "{v:?}");
        assert_eq!(
            invariants
                .iter()
                .filter(|i| **i == "recovery-dedup-regression")
                .count(),
            2,
            "{v:?}"
        );
    }

    #[test]
    fn clean_identical_streams_pass() {
        let sent: BTreeSet<MsgId> = (0..5).map(|c| id(9, c)).collect();
        let stream: Vec<MsgId> = vec![id(9, 3), id(9, 0), id(9, 4), id(9, 1), id(9, 2)];
        let v = check_churn_handoff(&sent, &[(0, stream.clone()), (1, stream)]);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn checker_catches_gap_dup_phantom_and_divergence() {
        let sent: BTreeSet<MsgId> = (0..3).map(|c| id(9, c)).collect();
        // Observer 0: duplicates 0, misses 2, invents s9:7; observer 1:
        // clean but ordered differently from observer 0's common prefix.
        let v = check_churn_handoff(
            &sent,
            &[
                (0, vec![id(9, 0), id(9, 0), id(9, 7), id(9, 1)]),
                (1, vec![id(9, 1), id(9, 0), id(9, 2)]),
            ],
        );
        let invariants: BTreeSet<&str> = v.iter().map(|x| x.invariant).collect();
        for want in [
            "churn-phantom",
            "churn-exactly-once",
            "churn-no-gap",
            "churn-order",
        ] {
            assert!(invariants.contains(want), "missing {want} in {v:?}");
        }
    }
}
