//! # accelring-chaos
//!
//! A deterministic chaos harness for the Accelerated Ring membership
//! stack: seeded fault schedules driven against the virtual-time
//! [`Cluster`](accelring_membership::testing::Cluster), with every
//! Extended Virtual Synchrony guarantee checked after the dust settles.
//!
//! The paper's evaluation measures the protocol on a healthy network; its
//! correctness argument leans on Totem's membership algorithm surviving
//! crashes, partitions, and token loss. This crate tests that argument.
//! A [`FaultSchedule`] is generated deterministically from a `u64` seed —
//! daemon crashes and restarts, partitions into arbitrary groups and
//! heals, token-loss bursts, Gilbert–Elliott data loss, duplication,
//! reordering, and paused (stalled, not crashed) daemons — and replayed
//! against a full cluster carrying a steady tagged workload. At the end
//! the harness heals everything, lets the system quiesce, and runs the
//! [`checker`] over each node's interleaved delivery/configuration
//! journal.
//!
//! Invariants checked (see [`checker`] for definitions):
//!
//! - no phantom or duplicate deliveries,
//! - per-sender FIFO order,
//! - pairwise agreement on the relative order of commonly delivered
//!   messages (agreed delivery),
//! - common-prefix delivery within each regular configuration,
//! - virtual synchrony: processes that move together between the same
//!   configurations deliver the same message set,
//! - every delivered configuration contains its deliverer,
//! - self-delivery (via post-quiescence probe messages), and
//! - eventual reconvergence to a single ring of all daemons.
//!
//! Every violation report carries the seed and the compact fault trace,
//! so `chaos_soak --seed N` replays the failing run exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod churn;
pub mod hook;
pub mod live;
pub mod runner;
pub mod schedule;

pub use checker::{
    check, check_cross_ring_agreement, check_state_beacons, Beacon, CheckerInput, MsgId, RingMsg,
    Violation,
};
pub use churn::{
    check_churn_handoff, check_recovery, ChurnConfig, ChurnEvent, ChurnKind, ChurnSchedule,
    RecoveryReport,
};
pub use hook::{ChaosNetHook, NetKnobs};
pub use live::{
    live_membership_config, run_live_chaos, run_live_chaos_with_orders, LiveChaosConfig,
};
pub use runner::{
    run_chaos, run_schedule_to_input, run_to_input, ChaosConfig, ChaosReport, ChaosStats,
};
pub use schedule::{FaultEvent, FaultKind, FaultSchedule, ScheduleConfig};
