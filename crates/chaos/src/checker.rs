//! The Extended Virtual Synchrony invariant checker.
//!
//! The checker is a pure function over what each node's application
//! observed — the interleaved journal of deliveries and configuration
//! changes kept by the membership `Cluster` — plus the ground truth the
//! chaos runner knows (every message id it submitted, where each node's
//! process incarnations begin, which probe messages were sent after the
//! final heal). Keeping it pure makes the "intentionally broken journal"
//! fixtures in the test suite possible: corrupt a journal, re-run the
//! checker, and watch the violation fire.
//!
//! Checked invariants, named as they appear in [`Violation::invariant`]:
//!
//! - `no-phantom` — every delivered message was actually submitted.
//! - `no-duplicate` — no process incarnation delivers a message twice.
//! - `sender-fifo` — messages from one sender are delivered in the order
//!   sent (counters strictly increase per sender per incarnation).
//! - `agreed-order` — any two nodes deliver their common messages in the
//!   same relative order (agreed/safe delivery is a total order).
//! - `agreed-prefix` — within one regular configuration, the delivery
//!   sequences of any two members are prefixes of one another (no gaps).
//! - `virtual-synchrony` — processes that transit between the same pair
//!   of regular configurations through the same transitional
//!   configuration deliver the same set of messages in the old one.
//! - `config-self` — every configuration delivered at a node contains
//!   that node.
//! - `self-delivery` — a node delivers its own surviving submissions,
//!   demonstrated conservatively via post-quiescence probes delivered
//!   everywhere.
//! - `reconvergence` — after the final heal, all daemons are operational
//!   in one identical ring containing everyone.
//!
//! Multi-ring runs additionally use [`check_cross_ring_agreement`]:
//!
//! - `cross-ring-order` — observers merging the same set of rings see
//!   their commonly delivered messages in the same relative order, even
//!   when those messages were ordered on different rings.
//!
//! Replicated-state-machine runs (the KV store) additionally use
//! [`check_state_beacons`]:
//!
//! - `kv-divergence` — replicas applying the same merged order emit
//!   `(position, state_hash)` beacons; any two beacons at the same
//!   position must carry the same hash.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use accelring_core::{ParticipantId, RingId};
use accelring_membership::testing::NodeEvent;

/// The identity the chaos workload stamps on every payload:
/// `s{sender}:{counter}`, unique for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// Submitting node index.
    pub sender: u16,
    /// Per-sender submission counter (monotonic across restarts).
    pub counter: u64,
}

impl MsgId {
    /// Renders the on-the-wire payload for this id.
    pub fn payload(&self) -> String {
        format!("s{}:{}", self.sender, self.counter)
    }

    /// Parses a payload produced by [`MsgId::payload`].
    pub fn parse(payload: &[u8]) -> Option<MsgId> {
        let s = std::str::from_utf8(payload).ok()?;
        let rest = s.strip_prefix('s')?;
        let (sender, counter) = rest.split_once(':')?;
        Some(MsgId {
            sender: sender.parse().ok()?,
            counter: counter.parse().ok()?,
        })
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}:{}", self.sender, self.counter)
    }
}

/// One invariant violation, with enough detail to start debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed (kebab-case name from the module docs).
    pub invariant: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant {}: {}", self.invariant, self.detail)
    }
}

/// Everything the checker needs: the observed journals plus the runner's
/// ground truth.
#[derive(Debug, Clone)]
pub struct CheckerInput {
    /// Number of daemons.
    pub nodes: usize,
    /// Per-node interleaved journal, cloned from the cluster.
    pub journals: Vec<Vec<NodeEvent>>,
    /// Every message id the workload successfully submitted.
    pub submitted: BTreeSet<MsgId>,
    /// Journal indices at which each node was restarted (a fresh process
    /// incarnation begins at each mark).
    pub incarnation_marks: Vec<Vec<usize>>,
    /// Probe ids submitted at every node after the final heal; all nodes
    /// must deliver all of them.
    pub probes: Vec<MsgId>,
    /// Whether every daemon reported Operational at the end.
    pub all_operational: bool,
    /// The ring installed at each node at the end of the run.
    pub final_rings: Vec<Vec<ParticipantId>>,
}

/// Runs every invariant over the input and returns the violations found
/// (empty = the run was EVS-clean).
pub fn check(input: &CheckerInput) -> Vec<Violation> {
    let mut v = Vec::new();
    let parsed = parse_journals(input, &mut v);
    check_per_incarnation(input, &parsed, &mut v);
    check_agreed_order(&parsed, &mut v);
    check_agreed_prefix(&parsed, &mut v);
    check_virtual_synchrony(&parsed, &mut v);
    check_self_delivery(input, &parsed, &mut v);
    check_reconvergence(input, &mut v);
    v
}

/// A journal entry after payload parsing.
#[derive(Debug, Clone)]
enum Entry {
    Delivered(MsgId),
    Config {
        ring_id: RingId,
        members: Vec<ParticipantId>,
        transitional: bool,
    },
}

struct Parsed {
    /// Per node: parsed journal entries.
    entries: Vec<Vec<Entry>>,
    /// Per node: incarnation boundaries as entry indices (starts with 0).
    starts: Vec<Vec<usize>>,
}

fn parse_journals(input: &CheckerInput, v: &mut Vec<Violation>) -> Parsed {
    let mut entries = Vec::with_capacity(input.nodes);
    for (node, journal) in input.journals.iter().enumerate() {
        let mut parsed = Vec::with_capacity(journal.len());
        for ev in journal {
            match ev {
                NodeEvent::Delivered(d) => match MsgId::parse(&d.payload) {
                    Some(id) => {
                        if id.sender != d.sender.as_u16() {
                            v.push(Violation {
                                invariant: "no-phantom",
                                detail: format!(
                                    "node {node} delivered {id} attributed to sender {}",
                                    d.sender
                                ),
                            });
                        }
                        if !input.submitted.contains(&id) {
                            v.push(Violation {
                                invariant: "no-phantom",
                                detail: format!(
                                    "node {node} delivered {id}, which was never submitted"
                                ),
                            });
                        }
                        parsed.push(Entry::Delivered(id));
                    }
                    None => v.push(Violation {
                        invariant: "no-phantom",
                        detail: format!(
                            "node {node} delivered an unparseable payload ({} bytes)",
                            d.payload.len()
                        ),
                    }),
                },
                NodeEvent::Config(c) => parsed.push(Entry::Config {
                    ring_id: c.ring_id,
                    members: c.members.clone(),
                    transitional: c.transitional,
                }),
            }
        }
        entries.push(parsed);
    }
    let starts = (0..input.nodes)
        .map(|i| {
            let mut s = vec![0usize];
            s.extend(input.incarnation_marks[i].iter().copied());
            s
        })
        .collect();
    Parsed { entries, starts }
}

/// Per-incarnation slices of a node's journal.
fn incarnations(parsed: &Parsed, node: usize) -> Vec<&[Entry]> {
    let entries = &parsed.entries[node];
    let starts = &parsed.starts[node];
    let mut out = Vec::with_capacity(starts.len());
    for (k, &start) in starts.iter().enumerate() {
        let end = starts.get(k + 1).copied().unwrap_or(entries.len());
        out.push(&entries[start.min(entries.len())..end.min(entries.len())]);
    }
    out
}

/// `no-duplicate`, `sender-fifo`, and `config-self`, all per incarnation.
fn check_per_incarnation(input: &CheckerInput, parsed: &Parsed, v: &mut Vec<Violation>) {
    for node in 0..input.nodes {
        let self_pid = ParticipantId::new(node as u16);
        for (inc, slice) in incarnations(parsed, node).into_iter().enumerate() {
            let mut seen: BTreeSet<MsgId> = BTreeSet::new();
            let mut last_counter: HashMap<u16, u64> = HashMap::new();
            for entry in slice {
                match entry {
                    Entry::Delivered(id) => {
                        if !seen.insert(*id) {
                            v.push(Violation {
                                invariant: "no-duplicate",
                                detail: format!(
                                    "node {node} (incarnation {inc}) delivered {id} twice"
                                ),
                            });
                        }
                        if let Some(&prev) = last_counter.get(&id.sender) {
                            if id.counter <= prev {
                                v.push(Violation {
                                    invariant: "sender-fifo",
                                    detail: format!(
                                        "node {node} (incarnation {inc}) delivered {id} after \
                                         s{}:{prev}",
                                        id.sender
                                    ),
                                });
                            }
                        }
                        last_counter.insert(id.sender, id.counter);
                    }
                    Entry::Config {
                        ring_id, members, ..
                    } => {
                        if !members.contains(&self_pid) {
                            v.push(Violation {
                                invariant: "config-self",
                                detail: format!(
                                    "node {node} delivered configuration {ring_id} that \
                                     excludes it: {members:?}"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Delivery sequence of a node (first occurrences only, so a duplicate —
/// reported elsewhere — does not cascade into order violations).
fn delivery_seq(parsed: &Parsed, node: usize) -> Vec<MsgId> {
    let mut seen = BTreeSet::new();
    parsed.entries[node]
        .iter()
        .filter_map(|e| match e {
            Entry::Delivered(id) if seen.insert(*id) => Some(*id),
            _ => None,
        })
        .collect()
}

/// `agreed-order`: common messages of any two nodes appear in the same
/// relative order.
fn check_agreed_order(parsed: &Parsed, v: &mut Vec<Violation>) {
    let seqs: Vec<Vec<MsgId>> = (0..parsed.entries.len())
        .map(|i| delivery_seq(parsed, i))
        .collect();
    let sets: Vec<BTreeSet<MsgId>> = seqs.iter().map(|s| s.iter().copied().collect()).collect();
    for i in 0..seqs.len() {
        for j in i + 1..seqs.len() {
            let common: Vec<MsgId> = seqs[i]
                .iter()
                .filter(|id| sets[j].contains(id))
                .copied()
                .collect();
            let other: Vec<MsgId> = seqs[j]
                .iter()
                .filter(|id| sets[i].contains(id))
                .copied()
                .collect();
            if common != other {
                let at = common
                    .iter()
                    .zip(&other)
                    .position(|(a, b)| a != b)
                    .unwrap_or(common.len().min(other.len()));
                v.push(Violation {
                    invariant: "agreed-order",
                    detail: format!(
                        "nodes {i} and {j} disagree on delivery order at common position {at}: \
                         {:?} vs {:?}",
                        common.get(at),
                        other.get(at)
                    ),
                });
            }
        }
    }
}

/// `agreed-prefix`: within one regular configuration, members' delivery
/// sequences are prefixes of one another.
fn check_agreed_prefix(parsed: &Parsed, v: &mut Vec<Violation>) {
    // ring_id -> [(node, deliveries while that regular config was
    // installed and no transitional had been delivered yet)]
    let mut per_ring: BTreeMap<RingId, Vec<(usize, Vec<MsgId>)>> = BTreeMap::new();
    for node in 0..parsed.entries.len() {
        let mut current: Option<RingId> = None;
        for entry in &parsed.entries[node] {
            match entry {
                Entry::Config {
                    ring_id,
                    transitional,
                    ..
                } => {
                    if *transitional {
                        current = None;
                    } else {
                        current = Some(*ring_id);
                        per_ring
                            .entry(*ring_id)
                            .or_default()
                            .push((node, Vec::new()));
                    }
                }
                Entry::Delivered(id) => {
                    if let Some(ring) = current {
                        if let Some((_, seq)) = per_ring
                            .get_mut(&ring)
                            .and_then(|v| v.iter_mut().rev().find(|(n, _)| *n == node))
                        {
                            seq.push(*id);
                        }
                    }
                }
            }
        }
    }
    for (ring, members) in &per_ring {
        for a in 0..members.len() {
            for b in a + 1..members.len() {
                let (na, sa) = &members[a];
                let (nb, sb) = &members[b];
                if na == nb {
                    continue;
                }
                let short = sa.len().min(sb.len());
                if sa[..short] != sb[..short] {
                    let at = (0..short).find(|&k| sa[k] != sb[k]).unwrap_or(short);
                    v.push(Violation {
                        invariant: "agreed-prefix",
                        detail: format!(
                            "in configuration {ring}, nodes {na} and {nb} diverge at \
                             position {at}: {:?} vs {:?}",
                            sa.get(at),
                            sb.get(at)
                        ),
                    });
                }
            }
        }
    }
}

/// `virtual-synchrony`: nodes that transit between the same regular
/// configurations through the same transitional configuration must have
/// delivered the same message set in the old configuration.
fn check_virtual_synchrony(parsed: &Parsed, v: &mut Vec<Violation>) {
    // "Moved together" means sharing the transitional configuration's
    // *membership*, not just its id: the transitional config reuses the
    // dissolving ring's id, so survivors of different partitions would
    // otherwise be compared — and EVS lets those deliver different sets.
    type Key = (RingId, Option<(RingId, Vec<ParticipantId>)>, RingId);
    let mut segments: HashMap<Key, (usize, BTreeSet<MsgId>)> = HashMap::new();
    for node in 0..parsed.entries.len() {
        for slice in incarnations(parsed, node) {
            let mut current: Option<RingId> = None;
            let mut transitional: Option<(RingId, Vec<ParticipantId>)> = None;
            let mut delivered: BTreeSet<MsgId> = BTreeSet::new();
            for entry in slice {
                match entry {
                    Entry::Delivered(id) => {
                        if current.is_some() {
                            delivered.insert(*id);
                        }
                    }
                    Entry::Config {
                        ring_id,
                        members,
                        transitional: is_trans,
                    } => {
                        if *is_trans {
                            transitional = Some((*ring_id, members.clone()));
                        } else {
                            if let Some(old) = current {
                                let key = (old, transitional.take(), *ring_id);
                                let set = std::mem::take(&mut delivered);
                                match segments.get(&key) {
                                    None => {
                                        segments.insert(key, (node, set));
                                    }
                                    Some((other, expected)) => {
                                        if *expected != set {
                                            let only_other: Vec<&MsgId> =
                                                expected.difference(&set).collect();
                                            let only_here: Vec<&MsgId> =
                                                set.difference(expected).collect();
                                            v.push(Violation {
                                                invariant: "virtual-synchrony",
                                                detail: format!(
                                                    "nodes {other} and {node} moved together \
                                                     {old} -> {ring_id} (transitional \
                                                     {:?}) but delivered different \
                                                     sets: only at {other}: {only_other:?}, \
                                                     only at {node}: {only_here:?}",
                                                    key.1
                                                ),
                                            });
                                        }
                                    }
                                }
                            }
                            current = Some(*ring_id);
                            transitional = None;
                            delivered.clear();
                        }
                    }
                }
            }
        }
    }
}

/// One entry of an observer's *merged* multi-ring delivery stream: the
/// ring that ordered the message, and the message identity.
pub type RingMsg = (u16, MsgId);

/// `cross-ring-order`: any two observers that fold the same set of rings
/// through the deterministic merge must see their commonly delivered
/// messages in the same relative order — the multi-ring analogue of
/// `agreed-order`, over the merged stream instead of one ring's journal.
///
/// `observers` is one merged stream per observer, labelled with the
/// observer's node index for diagnostics. Duplicate `(ring, msg)`
/// entries within one stream are collapsed to their first occurrence
/// (duplicates are the per-ring checker's problem, and must not cascade
/// into spurious order violations here).
pub fn check_cross_ring_agreement(observers: &[(usize, Vec<RingMsg>)]) -> Vec<Violation> {
    let mut v = Vec::new();
    let seqs: Vec<(usize, Vec<RingMsg>)> = observers
        .iter()
        .map(|(node, stream)| {
            let mut seen = BTreeSet::new();
            let firsts = stream
                .iter()
                .filter(|e| seen.insert(**e))
                .copied()
                .collect();
            (*node, firsts)
        })
        .collect();
    let sets: Vec<BTreeSet<RingMsg>> = seqs
        .iter()
        .map(|(_, s)| s.iter().copied().collect())
        .collect();
    for i in 0..seqs.len() {
        for j in i + 1..seqs.len() {
            let (node_i, seq_i) = &seqs[i];
            let (node_j, seq_j) = &seqs[j];
            let common: Vec<RingMsg> = seq_i
                .iter()
                .filter(|e| sets[j].contains(e))
                .copied()
                .collect();
            let other: Vec<RingMsg> = seq_j
                .iter()
                .filter(|e| sets[i].contains(e))
                .copied()
                .collect();
            if common != other {
                let at = common
                    .iter()
                    .zip(&other)
                    .position(|(a, b)| a != b)
                    .unwrap_or(common.len().min(other.len()));
                let show = |e: Option<&RingMsg>| {
                    e.map(|(r, id)| format!("ring{r}/{id}"))
                        .unwrap_or_else(|| "<end>".to_string())
                };
                v.push(Violation {
                    invariant: "cross-ring-order",
                    detail: format!(
                        "observers {node_i} and {node_j} disagree on the merged order at \
                         common position {at}: {} vs {}",
                        show(common.get(at)),
                        show(other.get(at))
                    ),
                });
            }
        }
    }
    v
}

/// One state-hash beacon a replicated state machine emitted: `(position,
/// state_hash)`, where `position` is the machine's deterministic
/// position clock (fragments consumed from the merged order) and the
/// hash digests the full replica state at that position.
pub type Beacon = (u64, u64);

/// `kv-divergence`: replicas applying the same merged order must pass
/// through identical states — any two beacons at the *same position*
/// must carry the same hash, across replicas and within one replica's
/// own stream. Positions only one replica reached (it lagged, restarted,
/// or sampled a different cadence) are not comparable and are skipped.
///
/// `replicas` is one beacon stream per replica, labelled with the
/// replica's node index for diagnostics.
pub fn check_state_beacons(replicas: &[(usize, Vec<Beacon>)]) -> Vec<Violation> {
    let mut v = Vec::new();
    // position -> first (node, hash) seen there.
    let mut canon: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
    for (node, stream) in replicas {
        for (position, hash) in stream {
            match canon.get(position) {
                None => {
                    canon.insert(*position, (*node, *hash));
                }
                Some((first, expected)) if expected != hash => {
                    v.push(Violation {
                        invariant: "kv-divergence",
                        detail: format!(
                            "replicas {first} and {node} disagree at position {position}: \
                             state hash {expected:#x} vs {hash:#x}"
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }
    v
}

/// `self-delivery`: every post-quiescence probe reaches every node.
fn check_self_delivery(input: &CheckerInput, parsed: &Parsed, v: &mut Vec<Violation>) {
    for node in 0..input.nodes {
        let delivered: BTreeSet<MsgId> = delivery_seq(parsed, node).into_iter().collect();
        for probe in &input.probes {
            if !delivered.contains(probe) {
                v.push(Violation {
                    invariant: "self-delivery",
                    detail: format!(
                        "node {node} never delivered post-heal probe {probe} (quiesced \
                         cluster must deliver everywhere, including the submitter)"
                    ),
                });
            }
        }
    }
}

/// `reconvergence`: one ring of everyone, everywhere, all Operational.
fn check_reconvergence(input: &CheckerInput, v: &mut Vec<Violation>) {
    if !input.all_operational {
        v.push(Violation {
            invariant: "reconvergence",
            detail: "not all daemons reached Operational after the final heal".to_string(),
        });
    }
    let expected: Vec<ParticipantId> = (0..input.nodes as u16).map(ParticipantId::new).collect();
    for (node, ring) in input.final_rings.iter().enumerate() {
        if *ring != expected {
            v.push(Violation {
                invariant: "reconvergence",
                detail: format!(
                    "node {node} ended on ring {ring:?} instead of the full ring of \
                     {} daemons",
                    input.nodes
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_beacons_are_clean() {
        let a = (0usize, vec![(10, 0xabc), (20, 0xdef)]);
        let b = (1usize, vec![(10, 0xabc), (30, 0x123)]);
        // Positions 20 and 30 are each known to one replica only —
        // lagging is not divergence.
        assert!(check_state_beacons(&[a, b]).is_empty());
    }

    #[test]
    fn divergent_beacons_are_caught() {
        let a = (0usize, vec![(10, 0xabc), (20, 0xdef)]);
        let b = (2usize, vec![(20, 0xbad)]);
        let v = check_state_beacons(&[a, b]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "kv-divergence");
        assert!(v[0].detail.contains("position 20"), "{}", v[0].detail);
    }

    #[test]
    fn self_disagreement_is_caught() {
        // One replica re-emitting a position with a different hash is a
        // determinism bug too (e.g. a bad snapshot install).
        let a = (0usize, vec![(10, 0x1), (10, 0x2)]);
        assert_eq!(check_state_beacons(&[a]).len(), 1);
    }
}
