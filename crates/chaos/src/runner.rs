//! Drives a membership cluster through a seeded fault schedule and
//! checks the EVS invariants afterwards.
//!
//! [`run_chaos`] is the whole harness: generate the [`FaultSchedule`]
//! for the seed, stand up a [`Cluster`] with the fault-injecting
//! [`ChaosNetHook`] installed, replay the schedule while a steady tagged
//! workload flows, then heal everything, let the cluster quiesce, send
//! probe messages, and hand the journals to [`checker::check`]. The
//! whole run is deterministic in the seed: a violation report carries
//! `seed` plus the compact fault trace, and re-running with the same
//! seed replays the identical execution.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use accelring_core::{ProtocolConfig, Service};
use accelring_membership::testing::Cluster;
use accelring_membership::MembershipConfig;
use accelring_sim::LossSpec;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checker::{self, CheckerInput, MsgId, Violation};
use crate::hook::{ChaosNetHook, NetKnobs};
use crate::schedule::{FaultKind, FaultSchedule, ScheduleConfig};

/// Everything one chaos run needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Number of daemons.
    pub nodes: u16,
    /// The seed; determines the schedule, the workload, and every
    /// injected fault.
    pub seed: u64,
    /// Fault-schedule shape.
    pub schedule: ScheduleConfig,
    /// Virtual-time gap between workload submissions (ns).
    pub submit_gap_ns: u64,
    /// Quiescence window after the final heal (ns).
    pub settle_ns: u64,
}

impl ChaosConfig {
    /// A fast configuration for the default test suite.
    pub fn smoke(seed: u64) -> ChaosConfig {
        let nodes = 5;
        ChaosConfig {
            nodes,
            seed,
            schedule: ScheduleConfig::smoke(nodes as usize),
            submit_gap_ns: 700_000,
            settle_ns: 400_000_000,
        }
    }

    /// The acceptance-criteria soak shape: `nodes` daemons, `events`
    /// scheduled faults.
    pub fn soak(seed: u64, nodes: u16, events: usize) -> ChaosConfig {
        ChaosConfig {
            nodes,
            seed,
            schedule: ScheduleConfig::soak(nodes as usize, events),
            submit_gap_ns: 500_000,
            settle_ns: 500_000_000,
        }
    }
}

/// Aggregate counters from one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Fault events applied (inapplicable ones skipped, e.g. crashing an
    /// already-crashed token holder).
    pub events_applied: u64,
    /// Workload messages accepted by daemons.
    pub submitted: u64,
    /// Workload submissions rejected with backpressure.
    pub backpressured: u64,
    /// Total deliveries journaled across all nodes.
    pub delivered: u64,
    /// Ring formations summed over all daemons.
    pub rings_formed: u64,
    /// Virtual time at the end of the run (ns).
    pub end_ns: u64,
}

/// The outcome of a chaos run: violations (hopefully none), stats, and
/// the replayable trace.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed that reproduces this run.
    pub seed: u64,
    /// The schedule that was replayed.
    pub schedule: FaultSchedule,
    /// Invariant violations found by the checker.
    pub violations: Vec<Violation>,
    /// Aggregate counters.
    pub stats: ChaosStats,
}

impl ChaosReport {
    /// True when the run was EVS-clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report; on violation this includes the seed and the
    /// compact fault trace needed to replay the run.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos seed={}: {} events applied, {} submitted ({} backpressured), \
             {} delivered, {} rings formed, {:.1}ms virtual\n",
            self.seed,
            self.stats.events_applied,
            self.stats.submitted,
            self.stats.backpressured,
            self.stats.delivered,
            self.stats.rings_formed,
            self.stats.end_ns as f64 / 1e6,
        );
        if self.ok() {
            out.push_str("all EVS invariants hold\n");
        } else {
            out.push_str(&format!(
                "{} INVARIANT VIOLATION(S) — replay with --seed {}\n",
                self.violations.len(),
                self.seed
            ));
            for v in &self.violations {
                out.push_str(&format!("  {v}\n"));
            }
            out.push_str("fault trace:\n");
            out.push_str(&self.schedule.trace());
        }
        out
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Runs one seeded chaos scenario end to end and returns the report.
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    let (input, schedule, mut stats) = execute(cfg);
    stats.delivered = input
        .journals
        .iter()
        .flatten()
        .filter(|e| matches!(e, accelring_membership::testing::NodeEvent::Delivered(_)))
        .count() as u64;
    let violations = checker::check(&input);
    ChaosReport {
        seed: cfg.seed,
        schedule,
        violations,
        stats,
    }
}

/// Runs the scenario but returns the raw [`CheckerInput`] instead of
/// checking it — the hook the broken-journal fixtures in the test suite
/// use to prove the checker actually fires.
pub fn run_to_input(cfg: ChaosConfig) -> (CheckerInput, FaultSchedule) {
    let (input, schedule, _) = execute(cfg);
    (input, schedule)
}

/// Replays an explicit — possibly transformed — schedule instead of
/// generating one from `cfg.seed`, and returns the raw checker input
/// plus run counters. This is the entry point the multi-ring chaos
/// harness uses: it shields its merged-stream observers with
/// [`FaultSchedule::shield`] and splices in ring-targeted faults before
/// replaying each ring.
///
/// `cfg.seed` still seeds the workload and the network hook, so the run
/// remains fully deterministic in `(cfg, schedule)`.
pub fn run_schedule_to_input(
    cfg: ChaosConfig,
    schedule: &FaultSchedule,
) -> (CheckerInput, ChaosStats) {
    let (input, _, stats) = execute_schedule(cfg, schedule.clone());
    (input, stats)
}

fn execute(cfg: ChaosConfig) -> (CheckerInput, FaultSchedule, ChaosStats) {
    execute_schedule(cfg, FaultSchedule::generate(cfg.seed, cfg.schedule))
}

fn execute_schedule(
    cfg: ChaosConfig,
    schedule: FaultSchedule,
) -> (CheckerInput, FaultSchedule, ChaosStats) {
    let n = cfg.nodes as usize;
    let knobs = Rc::new(RefCell::new(NetKnobs::quiet()));
    let mut cluster = Cluster::new(
        cfg.nodes,
        ProtocolConfig::default(),
        MembershipConfig::for_simulation(),
    );
    cluster.set_net_hook(Box::new(ChaosNetHook::new(cfg.seed, n, Rc::clone(&knobs))));

    let mut wl_rng = StdRng::seed_from_u64(cfg.seed ^ 0x0077_0B10_AD00_0001);
    let mut counters = vec![0u64; n];
    let mut submitted: BTreeSet<MsgId> = BTreeSet::new();
    let mut marks: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut stats = ChaosStats::default();

    // Let the initial ring form before the first fault or submission.
    // (The schedule's own warmup, in case it was built from a different
    // shape than `cfg.schedule`.)
    cluster.run_for(schedule.config.warmup_ns);
    let mut next_submit = cluster.now() + cfg.submit_gap_ns;

    for event in &schedule.events {
        // Interleave the steady workload with fault injection.
        while next_submit <= event.at {
            let gap = next_submit.saturating_sub(cluster.now());
            cluster.run_for(gap);
            submit_one(
                &mut cluster,
                &mut wl_rng,
                &mut counters,
                &mut submitted,
                &mut stats,
            );
            next_submit += cfg.submit_gap_ns;
        }
        cluster.run_for(event.at.saturating_sub(cluster.now()));
        apply_fault(&event.kind, &mut cluster, &knobs, &mut marks, &mut stats);
    }

    // Final heal: undo every standing fault and let the cluster settle.
    {
        let mut k = knobs.borrow_mut();
        k.set_loss(LossSpec::None);
        k.set_churn(0.0, 0.0, 0);
    }
    cluster.heal();
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        if cluster.is_paused(i) {
            cluster.resume(i);
        }
        if cluster.is_crashed(i) {
            marks[i].push(cluster.journal(i).len());
            cluster.restart(i);
        }
    }
    cluster.drop_next_tokens(0);
    // Reconvergence can need several membership rounds after a long
    // fault history; give it bounded extra settle windows.
    cluster.run_for(cfg.settle_ns);
    for _ in 0..10 {
        if cluster.all_operational() && cluster.ring_of(0).len() == n {
            break;
        }
        cluster.run_for(cfg.settle_ns);
    }

    // Post-quiescence probes: one message per node, delivered everywhere,
    // demonstrates self-delivery and that the healed ring orders traffic.
    let mut probes = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)]
    for node in 0..n {
        counters[node] += 1;
        let id = MsgId {
            sender: node as u16,
            counter: counters[node],
        };
        if cluster
            .try_submit(node, Bytes::from(id.payload()), Service::Safe)
            .is_ok()
        {
            submitted.insert(id);
            probes.push(id);
            stats.submitted += 1;
        } else {
            stats.backpressured += 1;
        }
    }
    cluster.run_for(cfg.settle_ns);

    stats.rings_formed = (0..n).map(|i| cluster.node(i).stats().rings_formed).sum();
    stats.end_ns = cluster.now();

    let input = CheckerInput {
        nodes: n,
        journals: (0..n).map(|i| cluster.journal(i).to_vec()).collect(),
        submitted,
        incarnation_marks: marks,
        probes,
        all_operational: cluster.all_operational(),
        final_rings: (0..n).map(|i| cluster.ring_of(i)).collect(),
    };
    (input, schedule, stats)
}

fn submit_one(
    cluster: &mut Cluster,
    rng: &mut StdRng,
    counters: &mut [u64],
    submitted: &mut BTreeSet<MsgId>,
    stats: &mut ChaosStats,
) {
    let n = counters.len();
    let live: Vec<usize> = (0..n).filter(|&i| !cluster.is_crashed(i)).collect();
    if live.is_empty() {
        return;
    }
    let node = live[rng.random_range(0..live.len())];
    counters[node] += 1;
    let id = MsgId {
        sender: node as u16,
        counter: counters[node],
    };
    let service = if rng.random_bool(0.25) {
        Service::Safe
    } else {
        Service::Agreed
    };
    match cluster.try_submit(node, Bytes::from(id.payload()), service) {
        Ok(()) => {
            submitted.insert(id);
            stats.submitted += 1;
        }
        Err(_) => stats.backpressured += 1,
    }
}

fn apply_fault(
    kind: &FaultKind,
    cluster: &mut Cluster,
    knobs: &Rc<RefCell<NetKnobs>>,
    marks: &mut [Vec<usize>],
    stats: &mut ChaosStats,
) {
    match kind {
        FaultKind::Crash(i) => {
            if !cluster.is_crashed(*i) && live_count(cluster) > 1 {
                cluster.crash(*i);
                stats.events_applied += 1;
            }
        }
        FaultKind::CrashTokenHolder => {
            if let Some((_, holder)) = cluster.last_token_route() {
                if !cluster.is_crashed(holder) && live_count(cluster) > 1 {
                    cluster.crash(holder);
                    stats.events_applied += 1;
                }
            }
        }
        FaultKind::Restart(i) => {
            if cluster.is_crashed(*i) {
                marks[*i].push(cluster.journal(*i).len());
                cluster.restart(*i);
                stats.events_applied += 1;
            }
        }
        FaultKind::Partition(groups) => {
            let groups: Vec<&[usize]> = groups.iter().map(|g| g.as_slice()).collect();
            cluster.partition(&groups);
            stats.events_applied += 1;
        }
        FaultKind::Heal => {
            cluster.heal();
            stats.events_applied += 1;
        }
        FaultKind::TokenBurst(k) => {
            cluster.drop_next_tokens(*k);
            stats.events_applied += 1;
        }
        FaultKind::Pause(i) => {
            if !cluster.is_crashed(*i) && !cluster.is_paused(*i) && live_count(cluster) > 1 {
                cluster.pause(*i);
                stats.events_applied += 1;
            }
        }
        FaultKind::Resume(i) => {
            if cluster.is_paused(*i) {
                cluster.resume(*i);
                stats.events_applied += 1;
            }
        }
        FaultKind::SetLoss {
            data_rate,
            token_rate,
        } => {
            knobs
                .borrow_mut()
                .set_loss(LossSpec::chaos(*data_rate, *token_rate));
            stats.events_applied += 1;
        }
        FaultKind::SetChurn {
            dup_rate,
            reorder_rate,
            max_extra_delay_ns,
        } => {
            knobs
                .borrow_mut()
                .set_churn(*dup_rate, *reorder_rate, *max_extra_delay_ns);
            stats.events_applied += 1;
        }
    }
}

fn live_count(cluster: &Cluster) -> usize {
    (0..cluster.len())
        .filter(|&i| !cluster.is_crashed(i) && !cluster.is_paused(i))
        .count()
}
