//! Binary wire codec for protocol messages.
//!
//! The format is a fixed little-endian layout with a 4-byte magic and a
//! version byte, so that a socket receiving a stray datagram can cheaply
//! reject it. The codec is shared by the UDP transport, the simulator (which
//! only uses the *lengths*), and the membership crate (which frames its own
//! message kinds through [`encode_opaque`]/[`decode_kind`]).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::message::{DataMessage, Token};
use crate::types::{ParticipantId, RingId, Round, Seq, Service};

/// Magic bytes prefixed to every datagram: `ARNG`.
pub const MAGIC: u32 = 0x4152_4e47;
/// Wire format version.
pub const VERSION: u8 = 1;

/// Message kind tags. Kinds `16..=31` are reserved for the membership
/// algorithm (see `accelring-membership`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Kind {
    /// A data message.
    Data = 1,
    /// The circulating token.
    Token = 2,
    /// An opaque higher-layer message (membership, client protocol).
    Opaque = 3,
}

/// Bytes of the common envelope: magic (4) + version (1) + kind (1).
pub const ENVELOPE_LEN: usize = 6;
/// Bytes of an encoded `RingId`: representative (2) + counter (8).
pub const RING_ID_LEN: usize = 10;
/// Bytes of the data-message header, including the envelope.
/// magic+ver+kind (6) + ring id (10) + seq (8) + pid (2) + round (8) +
/// service (1) + flags (1) + payload len (4).
pub const DATA_HEADER_LEN: usize = ENVELOPE_LEN + RING_ID_LEN + 8 + 2 + 8 + 1 + 1 + 4;
/// Bytes of the token header, excluding the rtr list.
/// magic+ver+kind (6) + ring id (10) + token id (8) + round (8) + seq (8) +
/// aru (8) + aru id (2) + fcc (4) + rtr len (4).
pub const TOKEN_HEADER_LEN: usize = ENVELOPE_LEN + RING_ID_LEN + 8 + 8 + 8 + 8 + 2 + 4 + 4;

/// Wire length of a token with `rtr_entries` retransmission requests.
pub const fn token_wire_len(rtr_entries: usize) -> usize {
    TOKEN_HEADER_LEN + 8 * rtr_entries
}

/// Errors produced while decoding a datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fields require.
    Truncated,
    /// The magic bytes do not match [`MAGIC`].
    BadMagic(u32),
    /// The version byte does not match [`VERSION`].
    BadVersion(u8),
    /// The kind byte is not a known [`Kind`].
    BadKind(u8),
    /// The service byte is not a known [`Service`].
    BadService(u8),
    /// A declared length field exceeds the remaining buffer.
    BadLength {
        /// The length the header declared.
        declared: usize,
        /// The bytes actually available.
        available: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown message kind {k}"),
            DecodeError::BadService(s) => write!(f, "unknown service level {s}"),
            DecodeError::BadLength {
                declared,
                available,
            } => write!(
                f,
                "declared length {declared} exceeds available {available} bytes"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

const ARU_ID_NONE: u16 = u16::MAX;

fn put_envelope(buf: &mut impl BufMut, kind: Kind) {
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind as u8);
}

fn put_ring_id(buf: &mut impl BufMut, ring_id: RingId) {
    buf.put_u16_le(ring_id.representative().as_u16());
    buf.put_u64_le(ring_id.counter());
}

fn get_ring_id(buf: &mut impl Buf) -> Result<RingId, DecodeError> {
    if buf.remaining() < RING_ID_LEN {
        return Err(DecodeError::Truncated);
    }
    let rep = ParticipantId::new(buf.get_u16_le());
    let counter = buf.get_u64_le();
    Ok(RingId::new(rep, counter))
}

/// Reads and validates the envelope, returning the message kind.
///
/// # Errors
///
/// Returns [`DecodeError`] if the buffer is truncated or the magic, version,
/// or kind bytes are invalid.
pub fn decode_kind(buf: &mut impl Buf) -> Result<Kind, DecodeError> {
    if buf.remaining() < ENVELOPE_LEN {
        return Err(DecodeError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    match buf.get_u8() {
        1 => Ok(Kind::Data),
        2 => Ok(Kind::Token),
        3 => Ok(Kind::Opaque),
        other => Err(DecodeError::BadKind(other)),
    }
}

/// Encodes a data message into a fresh buffer.
///
/// # Examples
///
/// ```
/// use accelring_core::wire;
/// use accelring_core::{DataMessage, ParticipantId, RingId, Round, Seq, Service};
/// use bytes::Bytes;
///
/// let msg = DataMessage {
///     ring_id: RingId::new(ParticipantId::new(0), 1),
///     seq: Seq::new(1),
///     pid: ParticipantId::new(0),
///     round: Round::new(1),
///     service: Service::Agreed,
///     post_token: false,
///     retransmission: false,
///     payload: Bytes::from_static(b"hi"),
/// };
/// let bytes = wire::encode_data(&msg);
/// let back = wire::decode_data(&mut bytes.clone()).unwrap();
/// assert_eq!(back, msg);
/// ```
pub fn encode_data(msg: &DataMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(DATA_HEADER_LEN + msg.payload.len());
    encode_data_into(msg, &mut buf);
    buf.freeze()
}

/// Encodes a data message into any [`BufMut`] sink — the zero-allocation
/// path used by the transport to encode straight into pooled buffers.
pub fn encode_data_into(msg: &DataMessage, buf: &mut impl BufMut) {
    put_envelope(buf, Kind::Data);
    put_ring_id(buf, msg.ring_id);
    buf.put_u64_le(msg.seq.as_u64());
    buf.put_u16_le(msg.pid.as_u16());
    buf.put_u64_le(msg.round.as_u64());
    buf.put_u8(msg.service.as_u8());
    let flags = (msg.post_token as u8) | ((msg.retransmission as u8) << 1);
    buf.put_u8(flags);
    buf.put_u32_le(msg.payload.len() as u32);
    buf.put_slice(&msg.payload);
}

/// Decodes a data message, consuming the envelope too.
///
/// # Errors
///
/// Returns [`DecodeError`] if the buffer is not a valid data message.
pub fn decode_data(buf: &mut Bytes) -> Result<DataMessage, DecodeError> {
    match decode_kind(buf)? {
        Kind::Data => decode_data_body(buf),
        other => Err(DecodeError::BadKind(other as u8)),
    }
}

/// Decodes a data message body after the envelope has been consumed.
///
/// # Errors
///
/// Returns [`DecodeError`] if the remaining bytes are not a valid body.
pub fn decode_data_body(buf: &mut Bytes) -> Result<DataMessage, DecodeError> {
    let ring_id = get_ring_id(buf)?;
    if buf.remaining() < 8 + 2 + 8 + 1 + 1 + 4 {
        return Err(DecodeError::Truncated);
    }
    let seq = Seq::new(buf.get_u64_le());
    let pid = ParticipantId::new(buf.get_u16_le());
    let round = Round::new(buf.get_u64_le());
    let service_raw = buf.get_u8();
    let service = Service::from_u8(service_raw).ok_or(DecodeError::BadService(service_raw))?;
    let flags = buf.get_u8();
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::BadLength {
            declared: len,
            available: buf.remaining(),
        });
    }
    let payload = buf.split_to(len);
    Ok(DataMessage {
        ring_id,
        seq,
        pid,
        round,
        service,
        post_token: flags & 1 != 0,
        retransmission: flags & 2 != 0,
        payload,
    })
}

/// Encodes a token into a fresh buffer.
pub fn encode_token(token: &Token) -> Bytes {
    let mut buf = BytesMut::with_capacity(token_wire_len(token.rtr.len()));
    encode_token_into(token, &mut buf);
    buf.freeze()
}

/// Encodes a token into any [`BufMut`] sink — the zero-allocation path
/// used by the transport to encode straight into pooled buffers.
pub fn encode_token_into(token: &Token, buf: &mut impl BufMut) {
    put_envelope(buf, Kind::Token);
    put_ring_id(buf, token.ring_id);
    buf.put_u64_le(token.token_id);
    buf.put_u64_le(token.round.as_u64());
    buf.put_u64_le(token.seq.as_u64());
    buf.put_u64_le(token.aru.as_u64());
    buf.put_u16_le(token.aru_id.map_or(ARU_ID_NONE, ParticipantId::as_u16));
    buf.put_u32_le(token.fcc);
    buf.put_u32_le(token.rtr.len() as u32);
    for seq in &token.rtr {
        buf.put_u64_le(seq.as_u64());
    }
}

/// Decodes a token, consuming the envelope too.
///
/// # Errors
///
/// Returns [`DecodeError`] if the buffer is not a valid token.
pub fn decode_token(buf: &mut Bytes) -> Result<Token, DecodeError> {
    match decode_kind(buf)? {
        Kind::Token => decode_token_body(buf),
        other => Err(DecodeError::BadKind(other as u8)),
    }
}

/// Decodes a token body after the envelope has been consumed.
///
/// # Errors
///
/// Returns [`DecodeError`] if the remaining bytes are not a valid body.
pub fn decode_token_body(buf: &mut Bytes) -> Result<Token, DecodeError> {
    let ring_id = get_ring_id(buf)?;
    if buf.remaining() < 8 + 8 + 8 + 8 + 2 + 4 + 4 {
        return Err(DecodeError::Truncated);
    }
    let token_id = buf.get_u64_le();
    let round = Round::new(buf.get_u64_le());
    let seq = Seq::new(buf.get_u64_le());
    let aru = Seq::new(buf.get_u64_le());
    let aru_raw = buf.get_u16_le();
    let aru_id = if aru_raw == ARU_ID_NONE {
        None
    } else {
        Some(ParticipantId::new(aru_raw))
    };
    let fcc = buf.get_u32_le();
    let rtr_len = buf.get_u32_le() as usize;
    if buf.remaining() < rtr_len * 8 {
        return Err(DecodeError::BadLength {
            declared: rtr_len * 8,
            available: buf.remaining(),
        });
    }
    let mut rtr = Vec::with_capacity(rtr_len);
    for _ in 0..rtr_len {
        rtr.push(Seq::new(buf.get_u64_le()));
    }
    Ok(Token {
        ring_id,
        token_id,
        round,
        seq,
        aru,
        aru_id,
        fcc,
        rtr,
    })
}

/// Frames an opaque higher-layer payload (membership / client protocol)
/// with the standard envelope so it can share the data socket.
pub fn encode_opaque(payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(ENVELOPE_LEN + payload.len());
    encode_opaque_into(payload, &mut buf);
    buf.freeze()
}

/// Frames an opaque payload into any [`BufMut`] sink.
pub fn encode_opaque_into(payload: &[u8], buf: &mut impl BufMut) {
    put_envelope(buf, Kind::Opaque);
    buf.put_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> DataMessage {
        DataMessage {
            ring_id: RingId::new(ParticipantId::new(2), 99),
            seq: Seq::new(123_456),
            pid: ParticipantId::new(7),
            round: Round::new(42),
            service: Service::Safe,
            post_token: true,
            retransmission: true,
            payload: Bytes::from_static(b"payload bytes"),
        }
    }

    fn sample_token() -> Token {
        Token {
            ring_id: RingId::new(ParticipantId::new(1), 11),
            token_id: 777,
            round: Round::new(97),
            seq: Seq::new(5000),
            aru: Seq::new(4990),
            aru_id: Some(ParticipantId::new(5)),
            fcc: 160,
            rtr: vec![Seq::new(4991), Seq::new(4993), Seq::new(4999)],
        }
    }

    #[test]
    fn data_roundtrip() {
        let msg = sample_data();
        let mut bytes = encode_data(&msg);
        assert_eq!(bytes.len(), msg.wire_len());
        let back = decode_data(&mut bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn token_roundtrip() {
        let token = sample_token();
        let mut bytes = encode_token(&token);
        assert_eq!(bytes.len(), token.wire_len());
        let back = decode_token(&mut bytes).unwrap();
        assert_eq!(back, token);
    }

    #[test]
    fn token_roundtrip_no_aru_id() {
        let mut token = sample_token();
        token.aru_id = None;
        token.rtr.clear();
        let back = decode_token(&mut encode_token(&token)).unwrap();
        assert_eq!(back, token);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let mut msg = sample_data();
        msg.payload = Bytes::new();
        let back = decode_data(&mut encode_data(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_data(&sample_data());
        let mut raw = bytes.to_vec();
        raw[0] ^= 0xFF;
        bytes = Bytes::from(raw);
        assert!(matches!(
            decode_data(&mut bytes),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut raw = encode_token(&sample_token()).to_vec();
        raw[4] = 9;
        let mut bytes = Bytes::from(raw);
        assert!(matches!(
            decode_token(&mut bytes),
            Err(DecodeError::BadVersion(9))
        ));
    }

    #[test]
    fn rejects_wrong_kind() {
        let mut bytes = encode_token(&sample_token());
        assert!(matches!(
            decode_data(&mut bytes),
            Err(DecodeError::BadKind(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = encode_data(&sample_data());
        for cut in 0..full.len() {
            let mut bytes = full.slice(..cut);
            assert!(
                decode_data(&mut bytes).is_err(),
                "decode succeeded at cut {cut}"
            );
        }
    }

    #[test]
    fn rejects_token_truncation_everywhere() {
        let full = encode_token(&sample_token());
        for cut in 0..full.len() {
            let mut bytes = full.slice(..cut);
            assert!(
                decode_token(&mut bytes).is_err(),
                "decode succeeded at cut {cut}"
            );
        }
    }

    #[test]
    fn rejects_bad_service() {
        let msg = sample_data();
        let mut raw = encode_data(&msg).to_vec();
        // service byte sits right after envelope + ring id + seq + pid + round
        let off = ENVELOPE_LEN + RING_ID_LEN + 8 + 2 + 8;
        raw[off] = 250;
        let mut bytes = Bytes::from(raw);
        assert!(matches!(
            decode_data(&mut bytes),
            Err(DecodeError::BadService(250))
        ));
    }

    #[test]
    fn rejects_overlong_declared_payload() {
        let msg = sample_data();
        let mut raw = encode_data(&msg).to_vec();
        let off = DATA_HEADER_LEN - 4;
        raw[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Bytes::from(raw);
        assert!(matches!(
            decode_data(&mut bytes),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn opaque_framing() {
        let mut framed = encode_opaque(b"membership join");
        assert_eq!(decode_kind(&mut framed).unwrap(), Kind::Opaque);
        assert_eq!(&framed[..], b"membership join");
    }

    #[test]
    fn decode_errors_display() {
        // Error messages are lowercase, concise, no trailing punctuation.
        for err in [
            DecodeError::Truncated,
            DecodeError::BadMagic(1),
            DecodeError::BadVersion(2),
            DecodeError::BadKind(3),
            DecodeError::BadService(4),
            DecodeError::BadLength {
                declared: 5,
                available: 1,
            },
        ] {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(!text.ends_with('.'));
        }
    }
}
