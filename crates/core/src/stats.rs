//! Protocol counters, useful for tests, benchmarks, and operational
//! monitoring.

/// Monotonic counters maintained by a [`crate::Participant`].
///
/// All counters start at zero and only increase. They are cheap to read and
/// are used heavily by the integration tests (e.g. to verify that the
/// accelerated protocol does not produce unnecessary retransmissions) and by
/// the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Tokens processed (excluding duplicates).
    pub tokens_processed: u64,
    /// Duplicate/stale tokens dropped.
    pub stale_tokens_dropped: u64,
    /// New data messages multicast.
    pub messages_sent: u64,
    /// Retransmissions multicast in answer to `rtr` requests.
    pub retransmissions_sent: u64,
    /// Retransmission requests this participant placed on the token.
    pub retransmissions_requested: u64,
    /// Data messages received and accepted (new to the buffer).
    pub messages_received: u64,
    /// Duplicate data messages dropped.
    pub duplicate_messages: u64,
    /// Tokens or data messages dropped because they belong to a different
    /// ring configuration.
    pub foreign_dropped: u64,
    /// Messages delivered with a service below Safe.
    pub delivered_agreed: u64,
    /// Messages delivered with Safe service.
    pub delivered_safe: u64,
    /// Messages garbage-collected.
    pub discarded: u64,
    /// Messages submitted by the application.
    pub submitted: u64,
    /// Submissions rejected because the send queue was full.
    pub submit_rejected: u64,
}

impl Stats {
    /// Total messages delivered at any service level.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_agreed + self.delivered_safe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = Stats::default();
        assert_eq!(s.tokens_processed, 0);
        assert_eq!(s.delivered_total(), 0);
    }

    #[test]
    fn delivered_total_sums_services() {
        let s = Stats {
            delivered_agreed: 3,
            delivered_safe: 4,
            ..Stats::default()
        };
        assert_eq!(s.delivered_total(), 7);
    }
}
