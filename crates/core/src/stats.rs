//! Protocol counters, useful for tests, benchmarks, and operational
//! monitoring.

/// Monotonic counters maintained by a [`crate::Participant`].
///
/// All counters start at zero and only increase. They are cheap to read and
/// are used heavily by the integration tests (e.g. to verify that the
/// accelerated protocol does not produce unnecessary retransmissions) and by
/// the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Tokens processed (excluding duplicates).
    pub tokens_processed: u64,
    /// Duplicate/stale tokens dropped.
    pub stale_tokens_dropped: u64,
    /// New data messages multicast.
    pub messages_sent: u64,
    /// Retransmissions multicast in answer to `rtr` requests.
    pub retransmissions_sent: u64,
    /// Retransmission requests this participant placed on the token.
    pub retransmissions_requested: u64,
    /// Data messages received and accepted (new to the buffer).
    pub messages_received: u64,
    /// Duplicate data messages dropped.
    pub duplicate_messages: u64,
    /// Tokens or data messages dropped because they belong to a different
    /// ring configuration.
    pub foreign_dropped: u64,
    /// Messages delivered with a service below Safe.
    pub delivered_agreed: u64,
    /// Messages delivered with Safe service.
    pub delivered_safe: u64,
    /// Messages garbage-collected.
    pub discarded: u64,
    /// Messages submitted by the application.
    pub submitted: u64,
    /// Submissions rejected because the send queue was full.
    pub submit_rejected: u64,
}

impl Stats {
    /// Total messages delivered at any service level.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_agreed + self.delivered_safe
    }

    /// Adds every counter of `other` into `self`.
    ///
    /// Used to aggregate counters across participants of one ring, or
    /// across the rings of a multi-ring deployment.
    pub fn absorb(&mut self, other: &Stats) {
        self.tokens_processed += other.tokens_processed;
        self.stale_tokens_dropped += other.stale_tokens_dropped;
        self.messages_sent += other.messages_sent;
        self.retransmissions_sent += other.retransmissions_sent;
        self.retransmissions_requested += other.retransmissions_requested;
        self.messages_received += other.messages_received;
        self.duplicate_messages += other.duplicate_messages;
        self.foreign_dropped += other.foreign_dropped;
        self.delivered_agreed += other.delivered_agreed;
        self.delivered_safe += other.delivered_safe;
        self.discarded += other.discarded;
        self.submitted += other.submitted;
        self.submit_rejected += other.submit_rejected;
    }
}

/// Datapath counters for a live transport node: syscall batching
/// efficiency, buffer-pool behaviour, and copy volume on the packet hot
/// path.
///
/// The `packet_path` microbench derives its headline numbers
/// (datagrams/sec, syscalls/datagram, average batch size) from these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotPathStats {
    /// Datagrams received.
    pub datagrams_rx: u64,
    /// Datagrams sent (counted per destination, after fanout).
    pub datagrams_tx: u64,
    /// `recv`-side syscalls issued (one `recvmmsg` counts once).
    pub syscalls_rx: u64,
    /// `send`-side syscalls issued (one `sendmmsg` counts once).
    pub syscalls_tx: u64,
    /// Buffer-pool acquisitions served from the free list.
    pub pool_hits: u64,
    /// Buffer-pool acquisitions that had to allocate.
    pub pool_misses: u64,
    /// Payload bytes memcpy'd on the hot path (zero in the batched,
    /// pooled datapath; the legacy per-datagram path copies every
    /// received packet once).
    pub bytes_copied: u64,
}

impl HotPathStats {
    /// Syscalls per datagram across both directions (the batching win:
    /// 1.0 for the per-datagram path, below 0.25 at saturation with
    /// batches of 4+).
    pub fn syscalls_per_datagram(&self) -> f64 {
        let datagrams = self.datagrams_rx + self.datagrams_tx;
        if datagrams == 0 {
            return 0.0;
        }
        (self.syscalls_rx + self.syscalls_tx) as f64 / datagrams as f64
    }

    /// Average datagrams moved per syscall (the batch size actually
    /// achieved).
    pub fn datagrams_per_syscall(&self) -> f64 {
        let syscalls = self.syscalls_rx + self.syscalls_tx;
        if syscalls == 0 {
            return 0.0;
        }
        (self.datagrams_rx + self.datagrams_tx) as f64 / syscalls as f64
    }

    /// Adds every counter of `other` into `self` (aggregation across the
    /// nodes of a ring or the rings of a deployment).
    pub fn absorb(&mut self, other: &HotPathStats) {
        self.datagrams_rx += other.datagrams_rx;
        self.datagrams_tx += other.datagrams_tx;
        self.syscalls_rx += other.syscalls_rx;
        self.syscalls_tx += other.syscalls_tx;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.bytes_copied += other.bytes_copied;
    }
}

/// Counters for the shared-memory intra-host datapath (the `ShmSocket`
/// lock-free SPSC ring backend; see DESIGN.md §15).
///
/// All zero when a node runs over UDP. Slots are the fixed-size ring
/// cells datagrams are published into; a datagram spanning `k` slots
/// counts `k` slots and one datagram. Doorbell counters track the
/// eventfd wakeup protocol: `doorbell_rings` is producer-side eventfd
/// writes (only issued when the consumer armed its wait), and
/// `doorbell_wakeups` is consumer-side drains that found a pending ring
/// — their ratio against `datagrams_consumed` is the shm analogue of
/// datagrams-per-syscall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShmPathStats {
    /// Ring slots published by the send side (data + pad slots).
    pub slots_published: u64,
    /// Ring slots released by the receive side (data + pad slots).
    pub slots_consumed: u64,
    /// Datagrams published into rings.
    pub datagrams_published: u64,
    /// Datagrams drained out of rings.
    pub datagrams_consumed: u64,
    /// Producer-side eventfd writes (doorbell rung because the consumer
    /// had armed its idle wait).
    pub doorbell_rings: u64,
    /// Consumer-side wait preparations that drained a rung doorbell.
    pub doorbell_wakeups: u64,
    /// Datagrams dropped because the destination ring was full
    /// (backpressure surfaces as UDP-like loss, never as blocking).
    pub ring_full_drops: u64,
}

impl ShmPathStats {
    /// Datagrams drained per doorbell wakeup (batching achieved by the
    /// doorbell protocol; 0.0 when no wakeup occurred, e.g. a saturated
    /// consumer that never slept).
    pub fn datagrams_per_wakeup(&self) -> f64 {
        if self.doorbell_wakeups == 0 {
            return 0.0;
        }
        self.datagrams_consumed as f64 / self.doorbell_wakeups as f64
    }

    /// True when any shm traffic moved (distinguishes a UDP node's
    /// all-zero struct from an idle shm node's).
    pub fn active(&self) -> bool {
        self.datagrams_published != 0 || self.datagrams_consumed != 0 || self.ring_full_drops != 0
    }

    /// Adds every counter of `other` into `self` (aggregation across the
    /// nodes of a ring or the rings of a deployment).
    pub fn absorb(&mut self, other: &ShmPathStats) {
        self.slots_published += other.slots_published;
        self.slots_consumed += other.slots_consumed;
        self.datagrams_published += other.datagrams_published;
        self.datagrams_consumed += other.datagrams_consumed;
        self.doorbell_rings += other.doorbell_rings;
        self.doorbell_wakeups += other.doorbell_wakeups;
        self.ring_full_drops += other.ring_full_drops;
    }
}

/// Why the session frontend shed an event instead of queueing it.
///
/// The reactor never blocks on a client: an event that cannot be queued
/// is dropped and attributed to exactly one of these causes, so overload
/// is visible (and attributable) in counters rather than in memory
/// growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The session's own bounded event queue was full (one slow client).
    SlowSession,
    /// The frontend-wide queued-event budget was exhausted (global
    /// overload: shedding protects every other session's memory).
    GlobalBudget,
    /// The event raced a disconnect: its session closed between the
    /// engine emitting the event and the reactor routing it.
    DisconnectRace,
}

/// Counters for an epoll-driven session frontend (one reactor serving
/// many client sessions; see DESIGN.md §12).
///
/// The `session_scaling` bench derives its headline numbers — events/sec,
/// shed rate, reactor syscalls per wakeup — from these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Sessions currently open (remote and in-process adapters).
    pub sessions_open: u64,
    /// Highest concurrent session count observed.
    pub sessions_peak: u64,
    /// HELLO frames accepted (fresh sessions).
    pub hellos: u64,
    /// HELLO frames that resumed an earlier session watermark.
    pub resumes: u64,
    /// Sessions closed (BYE, disconnect, or daemon shutdown).
    pub closes: u64,
    /// SUBMIT frames accepted and forwarded to the engine.
    pub submits: u64,
    /// SUBMIT frames dropped as duplicate retransmissions (session-level
    /// sequence dedup; ring-wide dedup is counted by the engines).
    pub submits_duplicate: u64,
    /// Session frames that failed to parse.
    pub bad_frames: u64,
    /// Events enqueued toward sessions (before credit gating).
    pub events_enqueued: u64,
    /// Event frames actually handed to sessions (sent or queued to an
    /// adapter channel).
    pub events_sent: u64,
    /// Events shed because one session's bounded queue was full.
    pub shed_slow_session: u64,
    /// Events shed because the frontend-wide queue budget was exhausted.
    pub shed_global_budget: u64,
    /// Events shed because their session closed while the event was in
    /// flight.
    pub shed_disconnect_race: u64,
    /// CREDIT frames processed (receiver-driven flow control grants).
    pub credits_granted: u64,
    /// Reactor wakeups (poll returns, idle ticks included).
    pub wakeups: u64,
    /// Syscalls issued on the session socket, both directions.
    pub syscalls: u64,
    /// Local-service query frames (SVC_QUERY) answered outside the
    /// ordered path — the KV read path rides these.
    pub svc_queries: u64,
}

impl FrontendStats {
    /// Total events shed across every cause.
    pub fn events_shed(&self) -> u64 {
        self.shed_slow_session + self.shed_global_budget + self.shed_disconnect_race
    }

    /// Session-socket syscalls per reactor wakeup (the batching win on
    /// the client-facing side: many frames move per syscall, many
    /// sessions are served per wakeup).
    pub fn syscalls_per_wakeup(&self) -> f64 {
        if self.wakeups == 0 {
            return 0.0;
        }
        self.syscalls as f64 / self.wakeups as f64
    }

    /// Adds every counter of `other` into `self` (gauges
    /// `sessions_open`/`sessions_peak` take the max instead).
    pub fn absorb(&mut self, other: &FrontendStats) {
        self.sessions_open = self.sessions_open.max(other.sessions_open);
        self.sessions_peak = self.sessions_peak.max(other.sessions_peak);
        self.hellos += other.hellos;
        self.resumes += other.resumes;
        self.closes += other.closes;
        self.submits += other.submits;
        self.submits_duplicate += other.submits_duplicate;
        self.bad_frames += other.bad_frames;
        self.events_enqueued += other.events_enqueued;
        self.events_sent += other.events_sent;
        self.shed_slow_session += other.shed_slow_session;
        self.shed_global_budget += other.shed_global_budget;
        self.shed_disconnect_race += other.shed_disconnect_race;
        self.credits_granted += other.credits_granted;
        self.wakeups += other.wakeups;
        self.syscalls += other.syscalls;
    }
}

/// Protocol counters broken out by ring index in a multi-ring
/// deployment.
///
/// Soak bins and the daemon report use this to attribute throughput and
/// delivery counts to the ring that ordered them, while [`total`]
/// collapses the breakdown for headline numbers.
///
/// [`total`]: PerRingStats::total
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerRingStats {
    rings: Vec<Stats>,
}

impl PerRingStats {
    /// Counters pre-sized for `rings` rings (all zero).
    pub fn new(rings: usize) -> Self {
        Self {
            rings: vec![Stats::default(); rings],
        }
    }

    /// Number of rings tracked so far.
    pub fn rings(&self) -> usize {
        self.rings.len()
    }

    /// The counters for one ring, zero if the ring was never touched.
    pub fn ring(&self, ring: crate::mclock::RingIdx) -> Stats {
        self.rings.get(ring.as_usize()).copied().unwrap_or_default()
    }

    /// Mutable counters for one ring, growing the table on demand.
    pub fn ring_mut(&mut self, ring: crate::mclock::RingIdx) -> &mut Stats {
        let idx = ring.as_usize();
        if idx >= self.rings.len() {
            self.rings.resize(idx + 1, Stats::default());
        }
        &mut self.rings[idx]
    }

    /// Adds `other`'s counters into the matching rings of `self`.
    pub fn absorb(&mut self, other: &PerRingStats) {
        for (idx, stats) in other.rings.iter().enumerate() {
            self.ring_mut(crate::mclock::RingIdx::new(idx as u16))
                .absorb(stats);
        }
    }

    /// All rings' counters summed into one [`Stats`].
    pub fn total(&self) -> Stats {
        let mut sum = Stats::default();
        for s in &self.rings {
            sum.absorb(s);
        }
        sum
    }

    /// Iterates `(ring index, counters)` pairs in ring order.
    pub fn iter(&self) -> impl Iterator<Item = (crate::mclock::RingIdx, &Stats)> {
        self.rings
            .iter()
            .enumerate()
            .map(|(i, s)| (crate::mclock::RingIdx::new(i as u16), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = Stats::default();
        assert_eq!(s.tokens_processed, 0);
        assert_eq!(s.delivered_total(), 0);
    }

    #[test]
    fn delivered_total_sums_services() {
        let s = Stats {
            delivered_agreed: 3,
            delivered_safe: 4,
            ..Stats::default()
        };
        assert_eq!(s.delivered_total(), 7);
    }

    #[test]
    fn absorb_sums_every_counter() {
        let mut a = Stats {
            tokens_processed: 1,
            messages_sent: 2,
            delivered_agreed: 3,
            submit_rejected: 4,
            ..Stats::default()
        };
        let b = Stats {
            tokens_processed: 10,
            messages_sent: 20,
            delivered_safe: 30,
            submitted: 40,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.tokens_processed, 11);
        assert_eq!(a.messages_sent, 22);
        assert_eq!(a.delivered_total(), 33);
        assert_eq!(a.submitted, 40);
        assert_eq!(a.submit_rejected, 4);
    }

    #[test]
    fn per_ring_stats_grow_and_total() {
        use crate::mclock::RingIdx;
        let mut per = PerRingStats::new(1);
        per.ring_mut(RingIdx::new(0)).delivered_agreed = 5;
        per.ring_mut(RingIdx::new(2)).delivered_agreed = 7;
        assert_eq!(per.rings(), 3);
        assert_eq!(per.ring(RingIdx::new(1)), Stats::default());
        assert_eq!(per.ring(RingIdx::new(9)), Stats::default());
        assert_eq!(per.total().delivered_agreed, 12);
        let labels: Vec<String> = per.iter().map(|(r, _)| r.to_string()).collect();
        assert_eq!(labels, ["ring0", "ring1", "ring2"]);
    }

    #[test]
    fn hot_path_ratios() {
        let hp = HotPathStats {
            datagrams_rx: 60,
            datagrams_tx: 40,
            syscalls_rx: 15,
            syscalls_tx: 10,
            ..HotPathStats::default()
        };
        assert!((hp.syscalls_per_datagram() - 0.25).abs() < 1e-9);
        assert!((hp.datagrams_per_syscall() - 4.0).abs() < 1e-9);
        assert_eq!(HotPathStats::default().syscalls_per_datagram(), 0.0);
        assert_eq!(HotPathStats::default().datagrams_per_syscall(), 0.0);
        // The shm steady state: datagrams flow with zero syscalls. Both
        // ratios must report 0, never NaN.
        let shm_shaped = HotPathStats {
            datagrams_rx: 500,
            datagrams_tx: 500,
            ..HotPathStats::default()
        };
        assert_eq!(shm_shaped.syscalls_per_datagram(), 0.0);
        assert_eq!(shm_shaped.datagrams_per_syscall(), 0.0);
        let mut sum = hp;
        sum.absorb(&hp);
        assert_eq!(sum.datagrams_rx, 120);
        assert_eq!(sum.syscalls_tx, 20);
    }

    #[test]
    fn shm_path_ratios() {
        let shm = ShmPathStats {
            slots_published: 130,
            slots_consumed: 130,
            datagrams_published: 100,
            datagrams_consumed: 100,
            doorbell_rings: 25,
            doorbell_wakeups: 25,
            ring_full_drops: 2,
        };
        assert!((shm.datagrams_per_wakeup() - 4.0).abs() < 1e-9);
        assert!(shm.active());
        assert_eq!(ShmPathStats::default().datagrams_per_wakeup(), 0.0);
        assert!(!ShmPathStats::default().active());
        let mut sum = shm;
        sum.absorb(&shm);
        assert_eq!(sum.datagrams_consumed, 200);
        assert_eq!(sum.ring_full_drops, 4);
        assert_eq!(sum.doorbell_rings, 50);
    }

    #[test]
    fn frontend_stats_totals_and_ratios() {
        let fs = FrontendStats {
            shed_slow_session: 2,
            shed_global_budget: 3,
            shed_disconnect_race: 5,
            wakeups: 4,
            syscalls: 10,
            ..FrontendStats::default()
        };
        assert_eq!(fs.events_shed(), 10);
        assert!((fs.syscalls_per_wakeup() - 2.5).abs() < 1e-9);
        assert_eq!(FrontendStats::default().syscalls_per_wakeup(), 0.0);
        let mut sum = fs;
        sum.absorb(&FrontendStats {
            sessions_open: 7,
            sessions_peak: 9,
            submits: 1,
            ..FrontendStats::default()
        });
        assert_eq!(sum.sessions_open, 7);
        assert_eq!(sum.sessions_peak, 9);
        assert_eq!(sum.submits, 1);
        assert_eq!(sum.events_shed(), 10);
    }

    #[test]
    fn per_ring_absorb_aligns_by_ring() {
        use crate::mclock::RingIdx;
        let mut a = PerRingStats::new(2);
        a.ring_mut(RingIdx::new(0)).submitted = 1;
        let mut b = PerRingStats::new(3);
        b.ring_mut(RingIdx::new(0)).submitted = 2;
        b.ring_mut(RingIdx::new(2)).submitted = 3;
        a.absorb(&b);
        assert_eq!(a.ring(RingIdx::new(0)).submitted, 3);
        assert_eq!(a.ring(RingIdx::new(2)).submitted, 3);
        assert_eq!(a.total().submitted, 6);
    }
}
