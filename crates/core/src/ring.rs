//! Ring membership view used by the ordering protocol.
//!
//! The membership algorithm (crate `accelring-membership`) produces these
//! views; in static deployments or tests they are built directly.

use crate::types::{ParticipantId, RingId};

/// Errors produced while constructing a [`Ring`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// A ring needs at least one member.
    Empty,
    /// A participant id appears twice in the member list.
    DuplicateMember(ParticipantId),
    /// The local participant is not in the member list.
    NotAMember(ParticipantId),
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Empty => write!(f, "ring must have at least one member"),
            RingError::DuplicateMember(p) => write!(f, "duplicate member {p}"),
            RingError::NotAMember(p) => write!(f, "participant {p} is not a ring member"),
        }
    }
}

impl std::error::Error for RingError {}

/// An established ring configuration: an id and an ordered member list.
///
/// The member at index 0 is the ring leader for round counting (it
/// increments the token's round field), and the token travels in index
/// order, wrapping from the last member back to index 0.
///
/// # Examples
///
/// ```
/// use accelring_core::{ParticipantId, Ring, RingId};
///
/// let ids: Vec<_> = (0..3).map(ParticipantId::new).collect();
/// let ring = Ring::new(RingId::new(ids[0], 1), ids.clone())?;
/// assert_eq!(ring.successor_of(ids[2]), ids[0]);
/// assert_eq!(ring.predecessor_of(ids[0]), ids[2]);
/// # Ok::<(), accelring_core::RingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    id: RingId,
    members: Vec<ParticipantId>,
}

impl Ring {
    /// Creates a ring from an id and an ordered member list.
    ///
    /// # Errors
    ///
    /// Returns [`RingError`] if the list is empty or contains duplicates.
    pub fn new(id: RingId, members: Vec<ParticipantId>) -> Result<Ring, RingError> {
        if members.is_empty() {
            return Err(RingError::Empty);
        }
        for (i, m) in members.iter().enumerate() {
            if members[..i].contains(m) {
                return Err(RingError::DuplicateMember(*m));
            }
        }
        Ok(Ring { id, members })
    }

    /// Convenience constructor: members `0..n` in ascending order, ring
    /// counter 1, representative 0. Used pervasively by tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn of_size(n: u16) -> Ring {
        assert!(n > 0, "ring must have at least one member");
        let members: Vec<_> = (0..n).map(ParticipantId::new).collect();
        Ring::new(RingId::new(members[0], 1), members).expect("distinct ids")
    }

    /// The configuration id.
    pub fn id(&self) -> RingId {
        self.id
    }

    /// The members in ring order.
    pub fn members(&self) -> &[ParticipantId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members. Always false: [`Ring::new`]
    /// rejects empty member lists, but the method exists for the standard
    /// `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the ring has exactly one member.
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }

    /// Ring position of `member`, if present.
    pub fn index_of(&self, member: ParticipantId) -> Option<usize> {
        self.members.iter().position(|m| *m == member)
    }

    /// Whether `member` belongs to this ring.
    pub fn contains(&self, member: ParticipantId) -> bool {
        self.members.contains(&member)
    }

    /// The member the token is passed to after `member`.
    ///
    /// # Panics
    ///
    /// Panics if `member` is not in the ring.
    pub fn successor_of(&self, member: ParticipantId) -> ParticipantId {
        let idx = self.index_of(member).expect("member must be in the ring");
        self.members[(idx + 1) % self.members.len()]
    }

    /// The member the token arrives from before `member`.
    ///
    /// # Panics
    ///
    /// Panics if `member` is not in the ring.
    pub fn predecessor_of(&self, member: ParticipantId) -> ParticipantId {
        let idx = self.index_of(member).expect("member must be in the ring");
        self.members[(idx + self.members.len() - 1) % self.members.len()]
    }

    /// The member `k` positions before `member` on the ring (used by the
    /// positional-loss experiment of Figure 13).
    ///
    /// # Panics
    ///
    /// Panics if `member` is not in the ring.
    pub fn member_positions_before(&self, member: ParticipantId, k: usize) -> ParticipantId {
        let idx = self.index_of(member).expect("member must be in the ring");
        let n = self.members.len();
        self.members[(idx + n - (k % n)) % n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_size_builds_ascending_ring() {
        let r = Ring::of_size(4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.members()[0], ParticipantId::new(0));
        assert!(!r.is_singleton());
        assert!(Ring::of_size(1).is_singleton());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Ring::new(RingId::default(), vec![]).unwrap_err(),
            RingError::Empty
        );
    }

    #[test]
    fn rejects_duplicates() {
        let dup = ParticipantId::new(1);
        let err = Ring::new(RingId::default(), vec![ParticipantId::new(0), dup, dup]).unwrap_err();
        assert_eq!(err, RingError::DuplicateMember(dup));
    }

    #[test]
    fn successor_and_predecessor_wrap() {
        let r = Ring::of_size(3);
        let p = |i: u16| ParticipantId::new(i);
        assert_eq!(r.successor_of(p(0)), p(1));
        assert_eq!(r.successor_of(p(2)), p(0));
        assert_eq!(r.predecessor_of(p(0)), p(2));
        assert_eq!(r.predecessor_of(p(1)), p(0));
    }

    #[test]
    fn singleton_ring_is_its_own_neighbor() {
        let r = Ring::of_size(1);
        let p = ParticipantId::new(0);
        assert_eq!(r.successor_of(p), p);
        assert_eq!(r.predecessor_of(p), p);
    }

    #[test]
    fn positions_before() {
        let r = Ring::of_size(8);
        let p = |i: u16| ParticipantId::new(i);
        assert_eq!(r.member_positions_before(p(5), 1), p(4));
        assert_eq!(r.member_positions_before(p(0), 1), p(7));
        assert_eq!(r.member_positions_before(p(3), 7), p(4));
        assert_eq!(r.member_positions_before(p(3), 8), p(3));
    }

    #[test]
    fn index_and_contains() {
        let r = Ring::of_size(3);
        assert_eq!(r.index_of(ParticipantId::new(2)), Some(2));
        assert_eq!(r.index_of(ParticipantId::new(9)), None);
        assert!(r.contains(ParticipantId::new(1)));
        assert!(!r.contains(ParticipantId::new(9)));
    }

    #[test]
    fn error_display() {
        assert!(!RingError::Empty.to_string().is_empty());
    }
}
