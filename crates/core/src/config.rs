//! Protocol configuration: which variant runs and the flow-control windows.

use std::fmt;

/// Which ordering protocol a participant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// The original Totem Ring protocol: all multicasts for a round complete
    /// before the token is passed, and missing messages are requested as
    /// soon as the token shows their sequence numbers were assigned.
    Original,
    /// The Accelerated Ring protocol: up to `accelerated_window` messages
    /// are sent *after* the token, and missing messages are requested one
    /// round after first being noticed.
    #[default]
    Accelerated,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Variant::Original => "original",
            Variant::Accelerated => "accelerated",
        })
    }
}

/// How a node runtime decides whether to process a waiting token before
/// waiting data messages (Section III-D of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PriorityMethod {
    /// Original protocol behaviour: process every available data message
    /// before the token.
    Original,
    /// Method 1 (aggressive): raise the token's priority as soon as any
    /// data message from the ring predecessor stamped with the next round
    /// is processed. Used by the prototypes.
    #[default]
    Aggressive,
    /// Method 2 (conservative): raise the token's priority only after
    /// processing a next-round message that the predecessor sent *after*
    /// passing the token. Used by Spread because it degrades gracefully to
    /// the original behaviour when the accelerated window is zero.
    Conservative,
}

impl fmt::Display for PriorityMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PriorityMethod::Original => "original",
            PriorityMethod::Aggressive => "method-1-aggressive",
            PriorityMethod::Conservative => "method-2-conservative",
        })
    }
}

/// When a participant may place retransmission requests for missing
/// messages on the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RtrPolicy {
    /// The variant's natural rule: the original protocol requests
    /// immediately, the accelerated protocol waits one round (Section
    /// III-B2 of the paper).
    #[default]
    VariantDefault,
    /// Request as soon as the token shows a gap (the original protocol's
    /// rule), even under the accelerated variant. Used by the
    /// `ablate_rtr_delay` benchmark to quantify how many unnecessary
    /// retransmissions the one-round delay avoids.
    Immediate,
    /// Always wait one round before requesting.
    Delayed,
}

/// Errors produced while validating a [`ProtocolConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `personal_window` must be at least 1.
    ZeroPersonalWindow,
    /// `accelerated_window` may not exceed `personal_window`.
    AcceleratedExceedsPersonal {
        /// The offending accelerated window.
        accelerated: u32,
        /// The personal window it exceeds.
        personal: u32,
    },
    /// `global_window` must be at least `personal_window`.
    GlobalBelowPersonal {
        /// The offending global window.
        global: u32,
        /// The personal window it must reach.
        personal: u32,
    },
    /// The original variant requires a zero accelerated window.
    OriginalWithAcceleratedWindow(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPersonalWindow => {
                write!(f, "personal window must be at least 1")
            }
            ConfigError::AcceleratedExceedsPersonal {
                accelerated,
                personal,
            } => write!(
                f,
                "accelerated window {accelerated} exceeds personal window {personal}"
            ),
            ConfigError::GlobalBelowPersonal { global, personal } => write!(
                f,
                "global window {global} is below personal window {personal}"
            ),
            ConfigError::OriginalWithAcceleratedWindow(w) => write!(
                f,
                "original protocol requires accelerated window 0, got {w}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated configuration of the ordering protocol.
///
/// Use [`ProtocolConfig::builder`] to construct one; the builder checks the
/// window invariants discussed in Section III-A of the paper (the
/// accelerated window is a portion of the personal window, and the global
/// window caps the whole ring).
///
/// # Examples
///
/// ```
/// use accelring_core::{ProtocolConfig, Variant};
///
/// let cfg = ProtocolConfig::builder()
///     .variant(Variant::Accelerated)
///     .personal_window(20)
///     .accelerated_window(15)
///     .global_window(160)
///     .build()?;
/// assert_eq!(cfg.personal_window(), 20);
/// # Ok::<(), accelring_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolConfig {
    variant: Variant,
    personal_window: u32,
    accelerated_window: u32,
    global_window: u32,
    priority: PriorityMethod,
    rtr_policy: RtrPolicy,
    max_send_queue: usize,
}

impl ProtocolConfig {
    /// Starts building a configuration. Defaults: accelerated variant,
    /// personal window 20, accelerated window 15, global window 160,
    /// aggressive priority, send queue 4096 — the "broad range of parameter
    /// settings" the paper reports working well (personal windows of a few
    /// tens with accelerated windows of half to all of the personal window).
    pub fn builder() -> ProtocolConfigBuilder {
        ProtocolConfigBuilder::new()
    }

    /// A ready-made configuration for the original Totem Ring protocol with
    /// the given personal window.
    ///
    /// # Panics
    ///
    /// Panics if `personal_window` is zero.
    pub fn original(personal_window: u32) -> ProtocolConfig {
        ProtocolConfig::builder()
            .variant(Variant::Original)
            .personal_window(personal_window)
            .accelerated_window(0)
            .global_window(personal_window.saturating_mul(8).max(personal_window))
            .priority(PriorityMethod::Original)
            .build()
            .expect("original config with nonzero personal window is valid")
    }

    /// A ready-made configuration for the Accelerated Ring protocol with the
    /// given personal and accelerated windows.
    ///
    /// # Panics
    ///
    /// Panics if the windows violate the invariants (see [`ConfigError`]).
    pub fn accelerated(personal_window: u32, accelerated_window: u32) -> ProtocolConfig {
        ProtocolConfig::builder()
            .variant(Variant::Accelerated)
            .personal_window(personal_window)
            .accelerated_window(accelerated_window)
            .global_window(personal_window.saturating_mul(8).max(personal_window))
            .build()
            .expect("accelerated config within windows is valid")
    }

    /// The protocol variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Maximum new data messages one participant may send per token round.
    pub fn personal_window(&self) -> u32 {
        self.personal_window
    }

    /// Maximum messages a participant may send after passing the token.
    pub fn accelerated_window(&self) -> u32 {
        self.accelerated_window
    }

    /// Maximum data messages the whole ring may send in one token round.
    pub fn global_window(&self) -> u32 {
        self.global_window
    }

    /// The token/data priority policy for the node runtime.
    pub fn priority(&self) -> PriorityMethod {
        self.priority
    }

    /// When missing messages may be requested for retransmission.
    pub fn rtr_policy(&self) -> RtrPolicy {
        self.rtr_policy
    }

    /// Whether retransmission requests wait one round, resolving
    /// [`RtrPolicy::VariantDefault`] against the variant.
    pub fn rtr_delayed(&self) -> bool {
        match self.rtr_policy {
            RtrPolicy::VariantDefault => self.variant == Variant::Accelerated,
            RtrPolicy::Immediate => false,
            RtrPolicy::Delayed => true,
        }
    }

    /// Maximum messages that may wait in the send queue before
    /// [`crate::Participant::submit`] reports backpressure.
    pub fn max_send_queue(&self) -> usize {
        self.max_send_queue
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::builder()
            .build()
            .expect("default config is valid")
    }
}

/// Builder for [`ProtocolConfig`] (see [C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone)]
pub struct ProtocolConfigBuilder {
    variant: Variant,
    personal_window: u32,
    accelerated_window: u32,
    global_window: u32,
    priority: Option<PriorityMethod>,
    rtr_policy: RtrPolicy,
    max_send_queue: usize,
}

impl ProtocolConfigBuilder {
    fn new() -> Self {
        ProtocolConfigBuilder {
            variant: Variant::Accelerated,
            personal_window: 20,
            accelerated_window: 15,
            global_window: 160,
            priority: None,
            rtr_policy: RtrPolicy::VariantDefault,
            max_send_queue: 4096,
        }
    }

    /// Sets the protocol variant.
    pub fn variant(&mut self, variant: Variant) -> &mut Self {
        self.variant = variant;
        self
    }

    /// Sets the personal window.
    pub fn personal_window(&mut self, window: u32) -> &mut Self {
        self.personal_window = window;
        self
    }

    /// Sets the accelerated window.
    pub fn accelerated_window(&mut self, window: u32) -> &mut Self {
        self.accelerated_window = window;
        self
    }

    /// Sets the global window.
    pub fn global_window(&mut self, window: u32) -> &mut Self {
        self.global_window = window;
        self
    }

    /// Sets the token/data priority policy. Defaults to
    /// [`PriorityMethod::Original`] for the original variant and
    /// [`PriorityMethod::Aggressive`] for the accelerated variant.
    pub fn priority(&mut self, priority: PriorityMethod) -> &mut Self {
        self.priority = Some(priority);
        self
    }

    /// Sets the send-queue capacity.
    pub fn max_send_queue(&mut self, capacity: usize) -> &mut Self {
        self.max_send_queue = capacity;
        self
    }

    /// Sets the retransmission-request policy (ablation support).
    pub fn rtr_policy(&mut self, policy: RtrPolicy) -> &mut Self {
        self.rtr_policy = policy;
        self
    }

    /// Validates the invariants and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the windows are inconsistent.
    pub fn build(&self) -> Result<ProtocolConfig, ConfigError> {
        if self.personal_window == 0 {
            return Err(ConfigError::ZeroPersonalWindow);
        }
        if self.accelerated_window > self.personal_window {
            return Err(ConfigError::AcceleratedExceedsPersonal {
                accelerated: self.accelerated_window,
                personal: self.personal_window,
            });
        }
        if self.global_window < self.personal_window {
            return Err(ConfigError::GlobalBelowPersonal {
                global: self.global_window,
                personal: self.personal_window,
            });
        }
        if self.variant == Variant::Original && self.accelerated_window != 0 {
            return Err(ConfigError::OriginalWithAcceleratedWindow(
                self.accelerated_window,
            ));
        }
        let priority = self.priority.unwrap_or(match self.variant {
            Variant::Original => PriorityMethod::Original,
            Variant::Accelerated => PriorityMethod::Aggressive,
        });
        Ok(ProtocolConfig {
            variant: self.variant,
            personal_window: self.personal_window,
            accelerated_window: self.accelerated_window,
            global_window: self.global_window,
            priority,
            rtr_policy: self.rtr_policy,
            max_send_queue: self.max_send_queue,
        })
    }
}

impl Default for ProtocolConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_accelerated() {
        let cfg = ProtocolConfig::default();
        assert_eq!(cfg.variant(), Variant::Accelerated);
        assert!(cfg.accelerated_window() <= cfg.personal_window());
        assert!(cfg.global_window() >= cfg.personal_window());
        assert_eq!(cfg.priority(), PriorityMethod::Aggressive);
    }

    #[test]
    fn original_shortcut() {
        let cfg = ProtocolConfig::original(30);
        assert_eq!(cfg.variant(), Variant::Original);
        assert_eq!(cfg.accelerated_window(), 0);
        assert_eq!(cfg.personal_window(), 30);
        assert_eq!(cfg.priority(), PriorityMethod::Original);
    }

    #[test]
    fn accelerated_shortcut() {
        let cfg = ProtocolConfig::accelerated(20, 10);
        assert_eq!(cfg.variant(), Variant::Accelerated);
        assert_eq!(cfg.accelerated_window(), 10);
    }

    #[test]
    fn rejects_zero_personal_window() {
        let err = ProtocolConfig::builder()
            .personal_window(0)
            .accelerated_window(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroPersonalWindow);
    }

    #[test]
    fn rejects_accelerated_above_personal() {
        let err = ProtocolConfig::builder()
            .personal_window(5)
            .accelerated_window(6)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::AcceleratedExceedsPersonal { .. }
        ));
    }

    #[test]
    fn rejects_global_below_personal() {
        let err = ProtocolConfig::builder()
            .personal_window(20)
            .accelerated_window(10)
            .global_window(10)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::GlobalBelowPersonal { .. }));
    }

    #[test]
    fn rejects_original_with_accelerated_window() {
        let err = ProtocolConfig::builder()
            .variant(Variant::Original)
            .personal_window(20)
            .accelerated_window(5)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::OriginalWithAcceleratedWindow(5));
    }

    #[test]
    fn original_defaults_to_original_priority() {
        let cfg = ProtocolConfig::builder()
            .variant(Variant::Original)
            .accelerated_window(0)
            .build()
            .unwrap();
        assert_eq!(cfg.priority(), PriorityMethod::Original);
    }

    #[test]
    fn priority_override_respected() {
        let cfg = ProtocolConfig::builder()
            .priority(PriorityMethod::Conservative)
            .build()
            .unwrap();
        assert_eq!(cfg.priority(), PriorityMethod::Conservative);
    }

    #[test]
    fn error_display_nonempty() {
        for err in [
            ConfigError::ZeroPersonalWindow,
            ConfigError::AcceleratedExceedsPersonal {
                accelerated: 2,
                personal: 1,
            },
            ConfigError::GlobalBelowPersonal {
                global: 1,
                personal: 2,
            },
            ConfigError::OriginalWithAcceleratedWindow(3),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn rtr_policy_resolution() {
        assert!(ProtocolConfig::accelerated(20, 10).rtr_delayed());
        assert!(!ProtocolConfig::original(20).rtr_delayed());
        let immediate = ProtocolConfig::builder()
            .rtr_policy(RtrPolicy::Immediate)
            .build()
            .unwrap();
        assert!(!immediate.rtr_delayed());
        let delayed = ProtocolConfig::builder()
            .variant(Variant::Original)
            .accelerated_window(0)
            .rtr_policy(RtrPolicy::Delayed)
            .build()
            .unwrap();
        assert!(delayed.rtr_delayed());
    }

    #[test]
    fn variant_display() {
        assert_eq!(Variant::Original.to_string(), "original");
        assert_eq!(Variant::Accelerated.to_string(), "accelerated");
        assert_eq!(
            PriorityMethod::Aggressive.to_string(),
            "method-1-aggressive"
        );
    }
}
