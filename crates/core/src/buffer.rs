//! The receive buffer: ordered message storage, local aru tracking, and the
//! delivery engine for Agreed and Safe services (Sections III-B4 and III-C
//! of the paper).

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::message::DataMessage;
use crate::types::{ParticipantId, Round, Seq, Service};

/// A message handed to the application, in total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Position in the total order.
    pub seq: Seq,
    /// Original sender.
    pub sender: ParticipantId,
    /// Round the message was initiated in.
    pub round: Round,
    /// Service level the sender requested.
    pub service: Service,
    /// Application payload.
    pub payload: Bytes,
}

impl Delivery {
    fn from_message(msg: &DataMessage) -> Delivery {
        Delivery {
            seq: msg.seq,
            sender: msg.pid,
            round: msg.round,
            service: msg.service,
            payload: msg.payload.clone(),
        }
    }
}

/// Buffer of received-but-not-yet-discarded messages, ordered by sequence
/// number.
///
/// The buffer tracks three monotone lines through the sequence space:
///
/// * `local_aru` — every message at or below it has been *received*;
/// * the delivery prefix — every message at or below it has been *delivered*
///   to the application (Agreed messages as soon as they are in order, Safe
///   messages once the safe line passes them);
/// * `discarded_up_to` — messages at or below it have been garbage-collected
///   because the token proved that every participant has them.
///
/// # Examples
///
/// ```
/// use accelring_core::buffer::RecvBuffer;
/// use accelring_core::{Seq};
///
/// let buf = RecvBuffer::new(Seq::ZERO);
/// assert_eq!(buf.local_aru(), Seq::ZERO);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecvBuffer {
    messages: BTreeMap<Seq, DataMessage>,
    local_aru: Seq,
    next_delivery: Seq,
    safe_line: Seq,
    discarded_up_to: Seq,
}

impl RecvBuffer {
    /// Creates a buffer whose total order starts just above `start` (the
    /// membership algorithm passes a nonzero `start` when a new ring
    /// continues an existing order).
    pub fn new(start: Seq) -> RecvBuffer {
        RecvBuffer {
            messages: BTreeMap::new(),
            local_aru: start,
            next_delivery: start.next(),
            safe_line: start,
            discarded_up_to: start,
        }
    }

    /// Highest sequence number such that every message at or below it has
    /// been received.
    pub fn local_aru(&self) -> Seq {
        self.local_aru
    }

    /// The highest sequence number currently cleared for Safe delivery.
    pub fn safe_line(&self) -> Seq {
        self.safe_line
    }

    /// Everything at or below this has been garbage-collected.
    pub fn discarded_up_to(&self) -> Seq {
        self.discarded_up_to
    }

    /// Sequence number of the next message to deliver.
    pub fn next_delivery(&self) -> Seq {
        self.next_delivery
    }

    /// Whether the message with sequence number `seq` is held (received and
    /// not yet discarded).
    pub fn contains(&self, seq: Seq) -> bool {
        self.messages.contains_key(&seq)
    }

    /// Returns the held message with sequence number `seq`, if any.
    /// Used to answer retransmission requests.
    pub fn get(&self, seq: Seq) -> Option<&DataMessage> {
        self.messages.get(&seq)
    }

    /// Number of messages currently held.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the buffer holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Inserts a received (or self-sent) message. Returns `true` if the
    /// message was new, `false` if it was a duplicate or already discarded.
    ///
    /// Advances `local_aru` across any contiguous run the insertion
    /// completes.
    pub fn insert(&mut self, msg: DataMessage) -> bool {
        if msg.seq <= self.discarded_up_to || self.messages.contains_key(&msg.seq) {
            return false;
        }
        let seq = msg.seq;
        self.messages.insert(seq, msg);
        if seq == self.local_aru.next() {
            let mut aru = seq;
            while self.messages.contains_key(&aru.next()) {
                aru = aru.next();
            }
            self.local_aru = aru;
        }
        true
    }

    /// Raises the safe line to `line` (it never moves backwards). Messages
    /// requiring Safe delivery at or below the line become deliverable.
    pub fn raise_safe_line(&mut self, line: Seq) {
        if line > self.safe_line {
            self.safe_line = line;
        }
    }

    /// Drains every message that is now deliverable, in total order:
    /// messages are delivered while they are contiguous (at or below
    /// `local_aru`), stopping early at an undelivered Safe message above the
    /// safe line, because a Safe message blocks everything behind it to
    /// preserve the single total order (Section III-C).
    pub fn pop_deliverable(&mut self, out: &mut Vec<Delivery>) {
        while self.next_delivery <= self.local_aru {
            let msg = self
                .messages
                .get(&self.next_delivery)
                .expect("messages at or below local_aru are held");
            if msg.service.requires_stability() && self.next_delivery > self.safe_line {
                break;
            }
            out.push(Delivery::from_message(msg));
            self.next_delivery = self.next_delivery.next();
        }
    }

    /// Garbage-collects every message at or below `line`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if asked to discard messages that have not been
    /// delivered yet — the protocol only discards below the safe line, and
    /// delivery always precedes discarding in token handling.
    pub fn discard_up_to(&mut self, line: Seq) {
        if line <= self.discarded_up_to {
            return;
        }
        debug_assert!(
            line < self.next_delivery,
            "discarding undelivered messages: line {line}, next delivery {}",
            self.next_delivery
        );
        self.messages = self.messages.split_off(&line.next());
        self.discarded_up_to = line;
    }

    /// Iterates over the held (received, not yet discarded) messages in
    /// sequence order. Used by the membership algorithm to snapshot the
    /// buffer when a configuration change begins.
    pub fn iter_held(&self) -> impl Iterator<Item = &DataMessage> {
        self.messages.values()
    }

    /// The highest sequence number currently held, or the discard line if
    /// the buffer is empty.
    pub fn highest_held(&self) -> Seq {
        self.messages
            .keys()
            .next_back()
            .copied()
            .unwrap_or(self.discarded_up_to)
            .max(self.local_aru)
    }

    /// Collects the sequence numbers in `(local_aru, limit]` that have not
    /// been received — the retransmission requests this participant should
    /// place on the token, capped at `max` entries to bound the token size.
    pub fn missing_up_to(&self, limit: Seq, max: usize) -> Vec<Seq> {
        let mut missing = Vec::new();
        let mut s = self.local_aru.next();
        while s <= limit && missing.len() < max {
            if !self.messages.contains_key(&s) {
                missing.push(s);
            }
            s = s.next();
        }
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RingId;

    fn msg(seq: u64, service: Service) -> DataMessage {
        DataMessage {
            ring_id: RingId::new(ParticipantId::new(0), 1),
            seq: Seq::new(seq),
            pid: ParticipantId::new((seq % 3) as u16),
            round: Round::new(1),
            service,
            post_token: false,
            retransmission: false,
            payload: Bytes::from(seq.to_le_bytes().to_vec()),
        }
    }

    #[test]
    fn aru_advances_over_contiguous_prefix() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        assert!(b.insert(msg(1, Service::Agreed)));
        assert_eq!(b.local_aru(), Seq::new(1));
        assert!(b.insert(msg(3, Service::Agreed)));
        assert_eq!(b.local_aru(), Seq::new(1));
        assert!(b.insert(msg(2, Service::Agreed)));
        assert_eq!(b.local_aru(), Seq::new(3));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        assert!(b.insert(msg(1, Service::Agreed)));
        assert!(!b.insert(msg(1, Service::Agreed)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn agreed_messages_deliver_in_order() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(2, Service::Agreed));
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        assert!(out.is_empty(), "gap at 1 blocks delivery");
        b.insert(msg(1, Service::Agreed));
        b.pop_deliverable(&mut out);
        assert_eq!(
            out.iter().map(|d| d.seq.as_u64()).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn safe_message_blocks_until_safe_line() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, Service::Safe));
        b.insert(msg(2, Service::Agreed));
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        assert!(out.is_empty(), "safe msg at 1 blocks everything");
        b.raise_safe_line(Seq::new(1));
        b.pop_deliverable(&mut out);
        assert_eq!(
            out.iter().map(|d| d.seq.as_u64()).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn safe_line_never_regresses() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.raise_safe_line(Seq::new(10));
        b.raise_safe_line(Seq::new(5));
        assert_eq!(b.safe_line(), Seq::new(10));
    }

    #[test]
    fn discard_drops_prefix_and_blocks_reinsertion() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        for s in 1..=5 {
            b.insert(msg(s, Service::Agreed));
        }
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        b.discard_up_to(Seq::new(3));
        assert_eq!(b.len(), 2);
        assert!(!b.contains(Seq::new(3)));
        assert!(b.contains(Seq::new(4)));
        assert!(
            !b.insert(msg(2, Service::Agreed)),
            "discarded seqs rejected"
        );
        assert_eq!(b.discarded_up_to(), Seq::new(3));
    }

    #[test]
    fn discard_is_idempotent_and_monotone() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, Service::Agreed));
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        b.discard_up_to(Seq::new(1));
        b.discard_up_to(Seq::new(1));
        b.discard_up_to(Seq::ZERO);
        assert_eq!(b.discarded_up_to(), Seq::new(1));
    }

    #[test]
    fn missing_up_to_reports_gaps() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, Service::Agreed));
        b.insert(msg(3, Service::Agreed));
        b.insert(msg(6, Service::Agreed));
        let missing = b.missing_up_to(Seq::new(7), 100);
        assert_eq!(
            missing.iter().map(|s| s.as_u64()).collect::<Vec<_>>(),
            vec![2, 4, 5, 7]
        );
    }

    #[test]
    fn missing_up_to_respects_cap() {
        let b = RecvBuffer::new(Seq::ZERO);
        let missing = b.missing_up_to(Seq::new(1000), 3);
        assert_eq!(missing.len(), 3);
        assert_eq!(missing[0], Seq::new(1));
    }

    #[test]
    fn missing_up_to_empty_when_limit_below_aru() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, Service::Agreed));
        assert!(b.missing_up_to(Seq::new(1), 100).is_empty());
        assert!(b.missing_up_to(Seq::ZERO, 100).is_empty());
    }

    #[test]
    fn nonzero_start_offsets_everything() {
        let mut b = RecvBuffer::new(Seq::new(100));
        assert_eq!(b.local_aru(), Seq::new(100));
        assert!(
            !b.insert(msg(100, Service::Agreed)),
            "at start is discarded"
        );
        assert!(b.insert(msg(101, Service::Agreed)));
        assert_eq!(b.local_aru(), Seq::new(101));
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, Seq::new(101));
    }

    #[test]
    fn get_serves_held_messages() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(4, Service::Agreed));
        assert!(b.get(Seq::new(4)).is_some());
        assert!(b.get(Seq::new(5)).is_none());
    }

    #[test]
    fn delivery_preserves_message_fields() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        let m = msg(1, Service::Agreed);
        b.insert(m.clone());
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        let d = &out[0];
        assert_eq!(d.sender, m.pid);
        assert_eq!(d.round, m.round);
        assert_eq!(d.service, m.service);
        assert_eq!(d.payload, m.payload);
    }
}
