//! The receive buffer: ordered message storage, local aru tracking, and the
//! delivery engine for Agreed and Safe services (Sections III-B4 and III-C
//! of the paper) — plus the recycling [`BufferPool`] arena that backs the
//! zero-copy datapath of the live transport.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::{BufMut, Bytes, Recycle};

use crate::message::DataMessage;
use crate::types::{ParticipantId, Round, Seq, Service};

/// Snapshot of a [`BufferPool`]'s counters.
///
/// `outstanding` is the leak detector: after a node has shut down and every
/// delivery has been drained (dropping the payload slices that pin pooled
/// buffers), it must read zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from the free list.
    pub hits: u64,
    /// Acquisitions that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the pool (lease drop or last-reference recycle).
    pub returned: u64,
    /// Returned buffers dropped because the free list was full.
    pub trimmed: u64,
    /// Leases (or frozen [`Bytes`] still alive) not yet returned.
    pub outstanding: u64,
    /// Buffers currently parked on the free list.
    pub free: u64,
}

#[derive(Debug)]
struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    buf_capacity: usize,
    max_free: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returned: AtomicU64,
    trimmed: AtomicU64,
    outstanding: AtomicU64,
}

impl PoolInner {
    fn give_back(&self, buf: Vec<u8>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.returned.fetch_add(1, Ordering::Relaxed);
        let mut free = self.free.lock().expect("pool free list poisoned");
        if free.len() < self.max_free && buf.capacity() >= self.buf_capacity {
            free.push(buf);
        } else {
            self.trimmed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Recycle for PoolInner {
    fn recycle(&self, buf: Vec<u8>) {
        self.give_back(buf);
    }
}

/// A recycling arena of fixed-capacity byte buffers for the transport hot
/// path.
///
/// Received datagrams are read straight into pooled buffers and parsed in
/// place; encoded outputs are written into pooled buffers and sent without
/// an intermediate `Vec`. Freezing a lease produces a [`Bytes`] whose
/// backing storage returns to the pool when the *last* reference drops —
/// payload slices retained by the protocol's [`RecvBuffer`] keep the buffer
/// leased until the message is discarded.
///
/// The pool is cheap to clone (it is an [`Arc`] handle) and safe to share
/// across threads; recycling may fire on whatever thread drops the last
/// reference.
///
/// # Examples
///
/// ```
/// use accelring_core::buffer::BufferPool;
/// use bytes::BufMut;
///
/// let pool = BufferPool::new(1024, 8);
/// let mut lease = pool.acquire();
/// lease.put_slice(b"datagram");
/// let frozen = lease.freeze();
/// assert_eq!(pool.stats().outstanding, 1);
/// drop(frozen);
/// assert_eq!(pool.stats().outstanding, 0);
/// assert_eq!(pool.stats().free, 1);
/// ```
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// Creates a pool handing out buffers of at least `buf_capacity` bytes,
    /// parking at most `max_free` idle buffers.
    pub fn new(buf_capacity: usize, max_free: usize) -> BufferPool {
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                buf_capacity,
                max_free,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                returned: AtomicU64::new(0),
                trimmed: AtomicU64::new(0),
                outstanding: AtomicU64::new(0),
            }),
        }
    }

    /// Capacity of the buffers this pool hands out.
    pub fn buf_capacity(&self) -> usize {
        self.inner.buf_capacity
    }

    /// Takes a buffer from the free list, or allocates one on a miss.
    ///
    /// The buffer's *contents and length* are whatever its previous user
    /// left behind — call [`BufLease::clear`] before encoding into it, or
    /// [`BufLease::recv_space`] to get a full-capacity receive window.
    pub fn acquire(&self) -> BufLease {
        let recycled = self
            .inner
            .free
            .lock()
            .expect("pool free list poisoned")
            .pop();
        let buf = match recycled {
            Some(buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.inner.buf_capacity)
            }
        };
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        BufLease {
            buf: Some(buf),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Leases (or frozen buffers) not yet returned to the pool.
    pub fn outstanding(&self) -> u64 {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            returned: self.inner.returned.load(Ordering::Relaxed),
            trimmed: self.inner.trimmed.load(Ordering::Relaxed),
            outstanding: self.inner.outstanding.load(Ordering::Relaxed),
            free: self
                .inner
                .free
                .lock()
                .expect("pool free list poisoned")
                .len() as u64,
        }
    }
}

/// A pooled buffer checked out of a [`BufferPool`].
///
/// Write into it through [`BufMut`] (encode path) or via
/// [`recv_space`](BufLease::recv_space) (receive path), then
/// [`freeze`](BufLease::freeze) /
/// [`freeze_prefix`](BufLease::freeze_prefix) it into a [`Bytes`] that
/// recycles on last drop. Dropping an unfrozen lease returns the buffer
/// immediately.
#[derive(Debug)]
pub struct BufLease {
    buf: Option<Vec<u8>>,
    pool: Arc<PoolInner>,
}

impl BufLease {
    fn buf_mut(&mut self) -> &mut Vec<u8> {
        self.buf
            .as_mut()
            .expect("lease buffer present until freeze")
    }

    /// Number of bytes currently written.
    pub fn len(&self) -> usize {
        self.buf.as_ref().map_or(0, Vec::len)
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets the write position to the start (capacity is kept).
    pub fn clear(&mut self) {
        self.buf_mut().clear();
    }

    /// A full-capacity mutable window for `recv` to scribble into.
    ///
    /// Extends the buffer to its pool capacity (zero-filling only bytes
    /// that have never been written — a buffer cycling through the receive
    /// path stays at full length, so steady-state acquisitions do no
    /// memset).
    pub fn recv_space(&mut self) -> &mut [u8] {
        let cap = self.pool.buf_capacity;
        let buf = self.buf_mut();
        if buf.len() < cap {
            buf.resize(cap, 0);
        }
        &mut buf[..]
    }

    /// The bytes written so far.
    pub fn written(&self) -> &[u8] {
        self.buf.as_deref().unwrap_or(&[])
    }

    /// Freezes the whole written length into a recycling [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        let buf = self.buf.take().expect("lease buffer present until freeze");
        Bytes::with_recycler(buf, Arc::clone(&self.pool) as Arc<dyn Recycle>)
    }

    /// Freezes only the first `len` bytes (the received datagram) into a
    /// recycling [`Bytes`]; the full buffer still returns to the pool when
    /// the last slice drops.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the written length.
    pub fn freeze_prefix(self, len: usize) -> Bytes {
        assert!(len <= self.len(), "freeze_prefix past written length");
        self.freeze().slice(..len)
    }
}

impl BufMut for BufLease {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf_mut().extend_from_slice(src);
    }
}

impl Drop for BufLease {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.give_back(buf);
        }
    }
}

/// A message handed to the application, in total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Position in the total order.
    pub seq: Seq,
    /// Original sender.
    pub sender: ParticipantId,
    /// Round the message was initiated in.
    pub round: Round,
    /// Service level the sender requested.
    pub service: Service,
    /// Application payload.
    pub payload: Bytes,
}

impl Delivery {
    fn from_message(msg: &DataMessage) -> Delivery {
        Delivery {
            seq: msg.seq,
            sender: msg.pid,
            round: msg.round,
            service: msg.service,
            payload: msg.payload.clone(),
        }
    }
}

/// Buffer of received-but-not-yet-discarded messages, ordered by sequence
/// number.
///
/// The buffer tracks three monotone lines through the sequence space:
///
/// * `local_aru` — every message at or below it has been *received*;
/// * the delivery prefix — every message at or below it has been *delivered*
///   to the application (Agreed messages as soon as they are in order, Safe
///   messages once the safe line passes them);
/// * `discarded_up_to` — messages at or below it have been garbage-collected
///   because the token proved that every participant has them.
///
/// # Examples
///
/// ```
/// use accelring_core::buffer::RecvBuffer;
/// use accelring_core::{Seq};
///
/// let buf = RecvBuffer::new(Seq::ZERO);
/// assert_eq!(buf.local_aru(), Seq::ZERO);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecvBuffer {
    messages: BTreeMap<Seq, DataMessage>,
    local_aru: Seq,
    next_delivery: Seq,
    safe_line: Seq,
    discarded_up_to: Seq,
}

impl RecvBuffer {
    /// Creates a buffer whose total order starts just above `start` (the
    /// membership algorithm passes a nonzero `start` when a new ring
    /// continues an existing order).
    pub fn new(start: Seq) -> RecvBuffer {
        RecvBuffer {
            messages: BTreeMap::new(),
            local_aru: start,
            next_delivery: start.next(),
            safe_line: start,
            discarded_up_to: start,
        }
    }

    /// Highest sequence number such that every message at or below it has
    /// been received.
    pub fn local_aru(&self) -> Seq {
        self.local_aru
    }

    /// The highest sequence number currently cleared for Safe delivery.
    pub fn safe_line(&self) -> Seq {
        self.safe_line
    }

    /// Everything at or below this has been garbage-collected.
    pub fn discarded_up_to(&self) -> Seq {
        self.discarded_up_to
    }

    /// Sequence number of the next message to deliver.
    pub fn next_delivery(&self) -> Seq {
        self.next_delivery
    }

    /// Whether the message with sequence number `seq` is held (received and
    /// not yet discarded).
    pub fn contains(&self, seq: Seq) -> bool {
        self.messages.contains_key(&seq)
    }

    /// Returns the held message with sequence number `seq`, if any.
    /// Used to answer retransmission requests.
    pub fn get(&self, seq: Seq) -> Option<&DataMessage> {
        self.messages.get(&seq)
    }

    /// Number of messages currently held.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the buffer holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Inserts a received (or self-sent) message. Returns `true` if the
    /// message was new, `false` if it was a duplicate or already discarded.
    ///
    /// Advances `local_aru` across any contiguous run the insertion
    /// completes.
    pub fn insert(&mut self, msg: DataMessage) -> bool {
        if msg.seq <= self.discarded_up_to || self.messages.contains_key(&msg.seq) {
            return false;
        }
        let seq = msg.seq;
        self.messages.insert(seq, msg);
        if seq == self.local_aru.next() {
            let mut aru = seq;
            while self.messages.contains_key(&aru.next()) {
                aru = aru.next();
            }
            self.local_aru = aru;
        }
        true
    }

    /// Raises the safe line to `line` (it never moves backwards). Messages
    /// requiring Safe delivery at or below the line become deliverable.
    pub fn raise_safe_line(&mut self, line: Seq) {
        if line > self.safe_line {
            self.safe_line = line;
        }
    }

    /// Drains every message that is now deliverable, in total order:
    /// messages are delivered while they are contiguous (at or below
    /// `local_aru`), stopping early at an undelivered Safe message above the
    /// safe line, because a Safe message blocks everything behind it to
    /// preserve the single total order (Section III-C).
    pub fn pop_deliverable(&mut self, out: &mut Vec<Delivery>) {
        while self.next_delivery <= self.local_aru {
            let msg = self
                .messages
                .get(&self.next_delivery)
                .expect("messages at or below local_aru are held");
            if msg.service.requires_stability() && self.next_delivery > self.safe_line {
                break;
            }
            out.push(Delivery::from_message(msg));
            self.next_delivery = self.next_delivery.next();
        }
    }

    /// Garbage-collects every message at or below `line`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if asked to discard messages that have not been
    /// delivered yet — the protocol only discards below the safe line, and
    /// delivery always precedes discarding in token handling.
    pub fn discard_up_to(&mut self, line: Seq) {
        if line <= self.discarded_up_to {
            return;
        }
        debug_assert!(
            line < self.next_delivery,
            "discarding undelivered messages: line {line}, next delivery {}",
            self.next_delivery
        );
        self.messages = self.messages.split_off(&line.next());
        self.discarded_up_to = line;
    }

    /// Iterates over the held (received, not yet discarded) messages in
    /// sequence order. Used by the membership algorithm to snapshot the
    /// buffer when a configuration change begins.
    pub fn iter_held(&self) -> impl Iterator<Item = &DataMessage> {
        self.messages.values()
    }

    /// The highest sequence number currently held, or the discard line if
    /// the buffer is empty.
    pub fn highest_held(&self) -> Seq {
        self.messages
            .keys()
            .next_back()
            .copied()
            .unwrap_or(self.discarded_up_to)
            .max(self.local_aru)
    }

    /// Collects the sequence numbers in `(local_aru, limit]` that have not
    /// been received — the retransmission requests this participant should
    /// place on the token, capped at `max` entries to bound the token size.
    pub fn missing_up_to(&self, limit: Seq, max: usize) -> Vec<Seq> {
        let mut missing = Vec::new();
        let mut s = self.local_aru.next();
        while s <= limit && missing.len() < max {
            if !self.messages.contains_key(&s) {
                missing.push(s);
            }
            s = s.next();
        }
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RingId;

    fn msg(seq: u64, service: Service) -> DataMessage {
        DataMessage {
            ring_id: RingId::new(ParticipantId::new(0), 1),
            seq: Seq::new(seq),
            pid: ParticipantId::new((seq % 3) as u16),
            round: Round::new(1),
            service,
            post_token: false,
            retransmission: false,
            payload: Bytes::from(seq.to_le_bytes().to_vec()),
        }
    }

    #[test]
    fn aru_advances_over_contiguous_prefix() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        assert!(b.insert(msg(1, Service::Agreed)));
        assert_eq!(b.local_aru(), Seq::new(1));
        assert!(b.insert(msg(3, Service::Agreed)));
        assert_eq!(b.local_aru(), Seq::new(1));
        assert!(b.insert(msg(2, Service::Agreed)));
        assert_eq!(b.local_aru(), Seq::new(3));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        assert!(b.insert(msg(1, Service::Agreed)));
        assert!(!b.insert(msg(1, Service::Agreed)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn agreed_messages_deliver_in_order() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(2, Service::Agreed));
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        assert!(out.is_empty(), "gap at 1 blocks delivery");
        b.insert(msg(1, Service::Agreed));
        b.pop_deliverable(&mut out);
        assert_eq!(
            out.iter().map(|d| d.seq.as_u64()).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn safe_message_blocks_until_safe_line() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, Service::Safe));
        b.insert(msg(2, Service::Agreed));
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        assert!(out.is_empty(), "safe msg at 1 blocks everything");
        b.raise_safe_line(Seq::new(1));
        b.pop_deliverable(&mut out);
        assert_eq!(
            out.iter().map(|d| d.seq.as_u64()).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn safe_line_never_regresses() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.raise_safe_line(Seq::new(10));
        b.raise_safe_line(Seq::new(5));
        assert_eq!(b.safe_line(), Seq::new(10));
    }

    #[test]
    fn discard_drops_prefix_and_blocks_reinsertion() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        for s in 1..=5 {
            b.insert(msg(s, Service::Agreed));
        }
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        b.discard_up_to(Seq::new(3));
        assert_eq!(b.len(), 2);
        assert!(!b.contains(Seq::new(3)));
        assert!(b.contains(Seq::new(4)));
        assert!(
            !b.insert(msg(2, Service::Agreed)),
            "discarded seqs rejected"
        );
        assert_eq!(b.discarded_up_to(), Seq::new(3));
    }

    #[test]
    fn discard_is_idempotent_and_monotone() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, Service::Agreed));
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        b.discard_up_to(Seq::new(1));
        b.discard_up_to(Seq::new(1));
        b.discard_up_to(Seq::ZERO);
        assert_eq!(b.discarded_up_to(), Seq::new(1));
    }

    #[test]
    fn missing_up_to_reports_gaps() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, Service::Agreed));
        b.insert(msg(3, Service::Agreed));
        b.insert(msg(6, Service::Agreed));
        let missing = b.missing_up_to(Seq::new(7), 100);
        assert_eq!(
            missing.iter().map(|s| s.as_u64()).collect::<Vec<_>>(),
            vec![2, 4, 5, 7]
        );
    }

    #[test]
    fn missing_up_to_respects_cap() {
        let b = RecvBuffer::new(Seq::ZERO);
        let missing = b.missing_up_to(Seq::new(1000), 3);
        assert_eq!(missing.len(), 3);
        assert_eq!(missing[0], Seq::new(1));
    }

    #[test]
    fn missing_up_to_empty_when_limit_below_aru() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(1, Service::Agreed));
        assert!(b.missing_up_to(Seq::new(1), 100).is_empty());
        assert!(b.missing_up_to(Seq::ZERO, 100).is_empty());
    }

    #[test]
    fn nonzero_start_offsets_everything() {
        let mut b = RecvBuffer::new(Seq::new(100));
        assert_eq!(b.local_aru(), Seq::new(100));
        assert!(
            !b.insert(msg(100, Service::Agreed)),
            "at start is discarded"
        );
        assert!(b.insert(msg(101, Service::Agreed)));
        assert_eq!(b.local_aru(), Seq::new(101));
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, Seq::new(101));
    }

    #[test]
    fn get_serves_held_messages() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        b.insert(msg(4, Service::Agreed));
        assert!(b.get(Seq::new(4)).is_some());
        assert!(b.get(Seq::new(5)).is_none());
    }

    #[test]
    fn pool_hits_after_recycle() {
        let pool = BufferPool::new(256, 4);
        let lease = pool.acquire();
        assert_eq!(pool.stats().misses, 1);
        drop(lease);
        let stats = pool.stats();
        assert_eq!(stats.returned, 1);
        assert_eq!(stats.free, 1);
        let _again = pool.acquire();
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn frozen_bytes_recycle_on_last_reference() {
        let pool = BufferPool::new(256, 4);
        let mut lease = pool.acquire();
        use bytes::BufMut;
        lease.put_slice(b"header|payload");
        let frozen = lease.freeze_prefix(6);
        assert_eq!(&frozen[..], b"header");
        let slice = frozen.slice(1..3);
        drop(frozen);
        assert_eq!(pool.stats().outstanding, 1, "slice pins the buffer");
        drop(slice);
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0);
        assert_eq!(stats.free, 1);
    }

    #[test]
    fn pool_trims_beyond_max_free() {
        let pool = BufferPool::new(64, 1);
        let a = pool.acquire();
        let b = pool.acquire();
        drop(a);
        drop(b);
        let stats = pool.stats();
        assert_eq!(stats.free, 1);
        assert_eq!(stats.trimmed, 1);
        assert_eq!(stats.outstanding, 0);
    }

    #[test]
    fn recv_space_is_full_capacity_and_sticky() {
        let pool = BufferPool::new(128, 4);
        let mut lease = pool.acquire();
        assert_eq!(lease.recv_space().len(), 128);
        lease.recv_space()[..5].copy_from_slice(b"hello");
        let datagram = lease.freeze_prefix(5);
        assert_eq!(&datagram[..], b"hello");
        drop(datagram);
        // The recycled buffer keeps its full length: no re-zeroing.
        let mut again = pool.acquire();
        assert_eq!(again.len(), 128);
        assert_eq!(again.recv_space().len(), 128);
    }

    #[test]
    fn clear_supports_encode_reuse() {
        use bytes::BufMut;
        let pool = BufferPool::new(64, 4);
        let mut lease = pool.acquire();
        lease.put_slice(b"first");
        drop(lease);
        let mut lease = pool.acquire();
        lease.clear();
        lease.put_slice(b"second");
        assert_eq!(lease.written(), b"second");
        assert_eq!(lease.freeze(), "second");
    }

    #[test]
    fn delivery_preserves_message_fields() {
        let mut b = RecvBuffer::new(Seq::ZERO);
        let m = msg(1, Service::Agreed);
        b.insert(m.clone());
        let mut out = Vec::new();
        b.pop_deliverable(&mut out);
        let d = &out[0];
        assert_eq!(d.sender, m.pid);
        assert_eq!(d.round, m.round);
        assert_eq!(d.service, m.service);
        assert_eq!(d.payload, m.payload);
    }
}
