//! Token/data processing-priority policies (Section III-D of the paper).
//!
//! When a token and data messages are waiting at the same time, the node
//! runtime must decide which to process first. The decision affects
//! performance but never correctness. In real deployments the two message
//! types arrive on different sockets; the runtime reads from the
//! high-priority socket until it is empty. The simulator models the same
//! two-queue structure, and both consult this tracker.

use crate::config::PriorityMethod;
use crate::message::DataMessage;
use crate::types::{ParticipantId, Round};

/// Tracks whether the waiting token currently outranks waiting data
/// messages.
///
/// Lifecycle: after a token is processed, data has high priority
/// ([`PriorityTracker::on_token_processed`]). Each processed data message is
/// then shown to the tracker ([`PriorityTracker::on_data_processed`]); when
/// the policy's trigger fires the token regains high priority until it is
/// next processed.
///
/// # Examples
///
/// ```
/// use accelring_core::priority::PriorityTracker;
/// use accelring_core::{ParticipantId, PriorityMethod, Round};
///
/// let mut tracker = PriorityTracker::new(PriorityMethod::Aggressive, ParticipantId::new(2));
/// tracker.on_token_processed(Round::new(5));
/// assert!(!tracker.token_has_priority());
/// ```
#[derive(Debug, Clone)]
pub struct PriorityTracker {
    method: PriorityMethod,
    predecessor: ParticipantId,
    current_round: Round,
    token_high: bool,
}

impl PriorityTracker {
    /// Creates a tracker for the given policy. `predecessor` is this
    /// participant's immediate predecessor on the ring, whose next-round
    /// messages signal that the token is on its way.
    pub fn new(method: PriorityMethod, predecessor: ParticipantId) -> PriorityTracker {
        PriorityTracker {
            method,
            predecessor,
            current_round: Round::ZERO,
            // Before the first token arrives there is nothing else to do,
            // so the token may be processed immediately.
            token_high: true,
        }
    }

    /// The policy in force.
    pub fn method(&self) -> PriorityMethod {
        self.method
    }

    /// Updates the ring predecessor after a membership change.
    pub fn set_predecessor(&mut self, predecessor: ParticipantId) {
        self.predecessor = predecessor;
    }

    /// Records that the token for `round` was processed: data messages now
    /// have high priority.
    pub fn on_token_processed(&mut self, round: Round) {
        self.current_round = round;
        self.token_high = false;
    }

    /// Shows a processed data message to the tracker; raises the token's
    /// priority if the policy's trigger fires.
    pub fn on_data_processed(&mut self, msg: &DataMessage) {
        if self.token_high {
            return;
        }
        let next_round = msg.pid == self.predecessor && msg.round > self.current_round;
        let fires = match self.method {
            // The original protocol never prioritizes the token over data.
            PriorityMethod::Original => false,
            // Method 1: any next-round message from the predecessor proves
            // the predecessor already received and passed this round's
            // token, so our token is in flight (or queued) — grab it.
            PriorityMethod::Aggressive => next_round,
            // Method 2: wait until the predecessor is known to have already
            // *sent* the token for the new round, i.e. the message was sent
            // post-token. Degrades to the original behaviour when the
            // accelerated window is zero (no post-token messages exist).
            PriorityMethod::Conservative => next_round && msg.post_token,
        };
        if fires {
            self.token_high = true;
        }
    }

    /// Whether a waiting token should be processed before waiting data.
    /// (A token is always processed when no data is waiting, regardless of
    /// this flag.)
    pub fn token_has_priority(&self) -> bool {
        self.token_high
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{RingId, Seq, Service};
    use bytes::Bytes;

    fn data(pid: u16, round: u64, post_token: bool) -> DataMessage {
        DataMessage {
            ring_id: RingId::new(ParticipantId::new(0), 1),
            seq: Seq::new(1),
            pid: ParticipantId::new(pid),
            round: Round::new(round),
            service: Service::Agreed,
            post_token,
            retransmission: false,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn token_high_before_first_round() {
        let t = PriorityTracker::new(PriorityMethod::Aggressive, ParticipantId::new(2));
        assert!(t.token_has_priority());
    }

    #[test]
    fn data_high_after_token() {
        let mut t = PriorityTracker::new(PriorityMethod::Aggressive, ParticipantId::new(2));
        t.on_token_processed(Round::new(1));
        assert!(!t.token_has_priority());
    }

    #[test]
    fn original_never_raises_token() {
        let mut t = PriorityTracker::new(PriorityMethod::Original, ParticipantId::new(2));
        t.on_token_processed(Round::new(1));
        t.on_data_processed(&data(2, 2, true));
        assert!(!t.token_has_priority());
    }

    #[test]
    fn aggressive_fires_on_next_round_from_predecessor() {
        let mut t = PriorityTracker::new(PriorityMethod::Aggressive, ParticipantId::new(2));
        t.on_token_processed(Round::new(1));
        t.on_data_processed(&data(2, 1, false));
        assert!(!t.token_has_priority(), "same round does not fire");
        t.on_data_processed(&data(3, 2, false));
        assert!(!t.token_has_priority(), "non-predecessor does not fire");
        t.on_data_processed(&data(2, 2, false));
        assert!(t.token_has_priority(), "next round from predecessor fires");
    }

    #[test]
    fn conservative_requires_post_token_flag() {
        let mut t = PriorityTracker::new(PriorityMethod::Conservative, ParticipantId::new(2));
        t.on_token_processed(Round::new(1));
        t.on_data_processed(&data(2, 2, false));
        assert!(!t.token_has_priority(), "pre-token message does not fire");
        t.on_data_processed(&data(2, 2, true));
        assert!(t.token_has_priority());
    }

    #[test]
    fn trigger_resets_each_round() {
        let mut t = PriorityTracker::new(PriorityMethod::Aggressive, ParticipantId::new(2));
        t.on_token_processed(Round::new(1));
        t.on_data_processed(&data(2, 2, false));
        assert!(t.token_has_priority());
        t.on_token_processed(Round::new(2));
        assert!(!t.token_has_priority());
        // A stale message from the (now) current round does not fire.
        t.on_data_processed(&data(2, 2, true));
        assert!(!t.token_has_priority());
        t.on_data_processed(&data(2, 3, false));
        assert!(t.token_has_priority());
    }

    #[test]
    fn rounds_further_ahead_also_fire() {
        // Loss can skip a whole round; any strictly newer round fires.
        let mut t = PriorityTracker::new(PriorityMethod::Aggressive, ParticipantId::new(2));
        t.on_token_processed(Round::new(1));
        t.on_data_processed(&data(2, 5, false));
        assert!(t.token_has_priority());
    }

    #[test]
    fn predecessor_update() {
        let mut t = PriorityTracker::new(PriorityMethod::Aggressive, ParticipantId::new(2));
        t.on_token_processed(Round::new(1));
        t.set_predecessor(ParticipantId::new(7));
        t.on_data_processed(&data(2, 2, false));
        assert!(!t.token_has_priority());
        t.on_data_processed(&data(7, 2, false));
        assert!(t.token_has_priority());
    }
}
