//! Merge-clock types for multi-ring ordering.
//!
//! A single ring totally orders its own stream; running R independent
//! rings multiplies ordering throughput but yields R unrelated streams.
//! Multi-Ring Paxos merges them with a deterministic round-robin rule
//! paced by a per-ring λ ("lambda") rate: each ring's deliveries are
//! stamped with a *merge slot* derived from the token round they were
//! ordered in, and the merged stream releases messages in global
//! `(slot, ring)` order. Because the slot is a pure function of the
//! ring's own ordered history — never of wall-clock arrival — every
//! observer computes the identical merged order.
//!
//! Two wrinkles are handled here:
//!
//! * **λ pacing.** A ring ordering λ rounds per slot maps rounds
//!   `0..λ` to slot 0, `λ..2λ` to slot 1, and so on. Setting λ > 1
//!   lets a fast ring contribute λ rounds of messages per merge step,
//!   mirroring Multi-Ring Paxos' λ parameter (M values per deterministic
//!   merge round).
//! * **View changes.** Extended Virtual Synchrony reforms a ring with a
//!   fresh token, restarting rounds from zero. Each regular
//!   configuration's monotonically increasing ring-id counter is mapped
//!   to an *epoch base* ([`epoch_base`]) occupying the high bits of the
//!   slot, and [`LambdaClock::align`] raises the clock's offset to that
//!   base when the configuration is installed. The base is intrinsic to
//!   the message — every node that delivers a message delivers it under
//!   the same regular configuration (or its closing transitional one),
//!   by virtue of EVS — so two observers stamp a commonly delivered
//!   message with the identical slot even when their own configuration
//!   histories diverged in between (e.g. they transited different
//!   partition components). A history-derived fence (pinning the offset
//!   at the observer's current slot) would not survive that: observers
//!   with different histories would disagree on every later slot.

use crate::types::Round;

/// Bits of a merge slot devoted to the λ-quantized round; the
/// configuration epoch occupies the bits above. 2⁴⁰ rounds per
/// configuration (~two weeks at a microsecond a round) and 2²⁴
/// configuration counters before saturation.
pub const EPOCH_SHIFT: u32 = 40;

const MAX_EPOCH: u64 = (1 << (u64::BITS - EPOCH_SHIFT)) - 1;

/// Maps a regular configuration's ring-id counter to the merge-slot
/// base its messages are stamped from (saturating far beyond any
/// realistic reformation count).
pub const fn epoch_base(epoch: u64) -> u64 {
    if epoch > MAX_EPOCH {
        u64::MAX << EPOCH_SHIFT
    } else {
        epoch << EPOCH_SHIFT
    }
}

/// Index of a ring within a multi-ring deployment (`0..R`).
///
/// Distinct from [`crate::RingId`], which names one membership *instance*
/// of one ring; a `RingIdx` names the logical shard and is stable across
/// that shard's view changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RingIdx(u16);

impl RingIdx {
    /// Wraps a raw ring index.
    pub const fn new(idx: u16) -> Self {
        Self(idx)
    }

    /// The raw index.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// The index widened to `usize` for vector addressing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RingIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ring{}", self.0)
    }
}

/// Global position of a message in the merged multi-ring stream.
///
/// Ordered first by merge slot, then by ring index — the deterministic
/// round-robin tiebreak. Messages stamped with the same key preserve
/// their per-ring delivery order (the merge is stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MergeKey {
    /// λ-quantized, epoch-adjusted merge slot.
    pub slot: u64,
    /// Ring the message was ordered on (round-robin tiebreak).
    pub ring: RingIdx,
}

/// Per-ring logical clock mapping token rounds to merge slots.
///
/// `stamp` is monotone: a round that would map below an already-issued
/// slot is clamped up to the last slot (a safety net — with
/// [`align`](Self::align) called at every regular configuration the raw
/// stamps are already monotone, because epoch bases dominate any
/// realistic round count).
#[derive(Debug, Clone)]
pub struct LambdaClock {
    /// Rounds per merge slot (λ ≥ 1).
    lambda: u64,
    /// Slot offset accumulated across view-change epochs.
    offset: u64,
    /// Highest slot issued so far.
    last: u64,
}

impl LambdaClock {
    /// Creates a clock issuing one merge slot per `lambda` token rounds.
    ///
    /// A `lambda` of zero is treated as one.
    pub fn new(lambda: u64) -> Self {
        Self {
            lambda: lambda.max(1),
            offset: 0,
            last: 0,
        }
    }

    /// The configured rounds-per-slot pace.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// Stamps a delivery ordered in `round` with its merge slot.
    ///
    /// Monotone: never returns less than a previously returned slot.
    pub fn stamp(&mut self, round: Round) -> u64 {
        let slot = self.offset.saturating_add(round.as_u64() / self.lambda);
        self.last = self.last.max(slot);
        self.last
    }

    /// Raises the epoch offset to `base` (normally
    /// [`epoch_base`]`(counter)` of a newly installed regular
    /// configuration, whose fresh token restarts rounds from zero).
    /// Never lowers it; aligning to a stale base is a no-op.
    pub fn align(&mut self, base: u64) {
        self.offset = self.offset.max(base);
        self.last = self.last.max(self.offset);
    }

    /// The highest slot issued so far (zero before any stamp).
    pub fn current(&self) -> u64 {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_quantizes_rounds_into_slots() {
        let mut c = LambdaClock::new(3);
        assert_eq!(c.stamp(Round::new(0)), 0);
        assert_eq!(c.stamp(Round::new(2)), 0);
        assert_eq!(c.stamp(Round::new(3)), 1);
        assert_eq!(c.stamp(Round::new(7)), 2);
        assert_eq!(c.current(), 2);
    }

    #[test]
    fn zero_lambda_is_clamped_to_one() {
        let mut c = LambdaClock::new(0);
        assert_eq!(c.lambda(), 1);
        assert_eq!(c.stamp(Round::new(5)), 5);
    }

    #[test]
    fn stamps_are_monotone_even_if_rounds_regress() {
        let mut c = LambdaClock::new(1);
        assert_eq!(c.stamp(Round::new(10)), 10);
        // A regressing round (should not happen within one epoch, but the
        // clock must stay safe) is clamped to the issued high-water mark.
        assert_eq!(c.stamp(Round::new(4)), 10);
    }

    #[test]
    fn align_carries_slots_across_round_restart() {
        let mut c = LambdaClock::new(2);
        assert_eq!(c.stamp(Round::new(9)), 4);
        // View change: configuration counter 8, new token, rounds
        // restart at zero. Slots jump to the intrinsic epoch base.
        c.align(epoch_base(8));
        assert_eq!(c.stamp(Round::new(0)), epoch_base(8));
        assert_eq!(c.stamp(Round::new(2)), epoch_base(8) + 1);
        assert_eq!(c.stamp(Round::new(4)), epoch_base(8) + 2);
    }

    #[test]
    fn align_is_idempotent_and_never_rewinds() {
        let mut c = LambdaClock::new(1);
        c.align(epoch_base(12));
        c.align(epoch_base(12));
        assert_eq!(c.stamp(Round::new(0)), epoch_base(12));
        // A stale (smaller) base is ignored.
        c.align(epoch_base(4));
        assert_eq!(c.stamp(Round::new(1)), epoch_base(12) + 1);
    }

    #[test]
    fn epoch_bases_dominate_rounds_and_saturate() {
        assert_eq!(epoch_base(0), 0);
        assert!(epoch_base(4) > 1 << 40);
        assert!(epoch_base(4) < epoch_base(8));
        // Saturation: absurd counters stay ordered at the top band.
        assert_eq!(epoch_base(u64::MAX), epoch_base(1 << 30));
    }

    #[test]
    fn merge_key_orders_by_slot_then_ring() {
        let a = MergeKey {
            slot: 1,
            ring: RingIdx::new(3),
        };
        let b = MergeKey {
            slot: 2,
            ring: RingIdx::new(0),
        };
        let c = MergeKey {
            slot: 1,
            ring: RingIdx::new(4),
        };
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn ring_idx_displays_compactly() {
        assert_eq!(RingIdx::new(7).to_string(), "ring7");
    }
}
