//! # accelring-core
//!
//! A from-scratch, sans-IO implementation of the **Accelerated Ring**
//! total-ordering protocol ("Fast Total Ordering for Modern Data Centers",
//! Babay & Amir), together with the **original Totem Ring** protocol it
//! improves upon.
//!
//! Both protocols arrange participants in a logical ring and circulate a
//! token that provides ordering, stability notification, flow control, and
//! fast failure detection. The Accelerated Ring innovation is that a
//! participant may *release the token before it finishes multicasting*: it
//! updates the token to reflect every message it will send this round, passes
//! the token, and then completes its sends, overlapping its transmissions
//! with its successor's. This shortens every token round, simultaneously
//! raising throughput and lowering latency on modern switched networks.
//!
//! ## Architecture
//!
//! The crate is deliberately free of sockets, clocks, and threads
//! ("sans-IO"): [`Participant`] is a deterministic state machine that
//! consumes [`Token`]s and [`DataMessage`]s and emits [`Action`]s in exact
//! wire order. Runtimes — the deterministic simulator in `accelring-sim`,
//! the UDP transport in `accelring-transport` — own the I/O. This is what
//! makes the protocol testable with property-based tests and reproducible
//! benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use accelring_core::testing::TestNet;
//! use accelring_core::{ProtocolConfig, Service};
//! use bytes::Bytes;
//!
//! // Three participants running the Accelerated Ring protocol with a
//! // personal window of 5 and an accelerated window of 3 (Figure 1 of the
//! // paper).
//! let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
//! net.submit(0, Bytes::from_static(b"deposit $10"), Service::Agreed);
//! net.submit(1, Bytes::from_static(b"withdraw $5"), Service::Agreed);
//! net.run_tokens(9);
//!
//! // Every participant delivered the same totally ordered sequence.
//! let orders = net.delivery_orders();
//! assert_eq!(orders[0].len(), 2);
//! assert_eq!(orders[1], orders[0]);
//! assert_eq!(orders[2], orders[0]);
//! ```
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`types`] | — | ids, sequence numbers, rounds, services |
//! | [`message`] | III-B, III-C | [`Token`] and [`DataMessage`] |
//! | [`wire`] | III-E | binary codec |
//! | [`config`] | III-A | windows, variants, builder |
//! | [`flow`] | III-B1/2 | flow-control arithmetic |
//! | [`buffer`] | III-B4, III-C | receive buffer and delivery engine |
//! | [`mclock`] | — | multi-ring merge clocks (λ slots, ring indices) |
//! | [`priority`] | III-D | token/data priority policies |
//! | [`ring`] | II | ring membership view |
//! | [`participant`] | III | the protocol state machine |
//! | [`testing`] | — | deterministic in-memory ring for tests |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod buffer;
pub mod config;
pub mod flow;
pub mod mclock;
pub mod message;
pub mod participant;
pub mod priority;
pub mod ring;
pub mod stats;
pub mod testing;
pub mod types;
pub mod wire;

pub use backoff::Backoff;
pub use buffer::{BufLease, BufferPool, Delivery, PoolStats};
pub use config::{
    ConfigError, PriorityMethod, ProtocolConfig, ProtocolConfigBuilder, RtrPolicy, Variant,
};
pub use mclock::{epoch_base, LambdaClock, MergeKey, RingIdx};
pub use message::{DataMessage, Token};
pub use participant::{Action, Participant, QueueFullError, RecoverySnapshot, MAX_RTR_ENTRIES};
pub use ring::{Ring, RingError};
pub use stats::{FrontendStats, HotPathStats, PerRingStats, ShedCause, ShmPathStats, Stats};
pub use types::{ParticipantId, RingId, Round, Seq, Service};
pub use wire::DecodeError;

#[cfg(test)]
mod lib_tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Participant>();
        assert_send_sync::<crate::Token>();
        assert_send_sync::<crate::DataMessage>();
        assert_send_sync::<crate::ProtocolConfig>();
        assert_send_sync::<crate::Ring>();
    }
}
