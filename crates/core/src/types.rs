//! Fundamental identifier and counter types shared by every layer of the
//! stack.
//!
//! All of these are thin newtypes ([C-NEWTYPE]) so that a sequence number can
//! never be confused with a round number or a participant index, which is an
//! easy mistake to make in a protocol whose token carries half a dozen
//! counters.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Identifier of a protocol participant (a daemon in Spread terms).
///
/// Participant ids are assigned by the membership algorithm and are unique
/// within a configuration. The ring order is the ascending order of the
/// member ids unless the membership algorithm says otherwise.
///
/// # Examples
///
/// ```
/// use accelring_core::ParticipantId;
/// let a = ParticipantId::new(3);
/// assert_eq!(a.as_u16(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ParticipantId(u16);

impl ParticipantId {
    /// Creates a participant id from a raw index.
    pub const fn new(raw: u16) -> Self {
        ParticipantId(raw)
    }

    /// Returns the raw numeric id.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the raw id widened to `usize`, convenient for indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u16> for ParticipantId {
    fn from(raw: u16) -> Self {
        ParticipantId(raw)
    }
}

/// A global sequence number in the total order.
///
/// Sequence numbers start at 1; `Seq::ZERO` means "nothing yet". The token's
/// `seq` field holds the *last assigned* sequence number, so a participant
/// receiving the token may stamp its new messages starting at
/// `token.seq.next()`.
///
/// # Examples
///
/// ```
/// use accelring_core::Seq;
/// let s = Seq::new(5);
/// assert_eq!(s.next(), Seq::new(6));
/// assert!(Seq::ZERO < s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Seq(u64);

impl Seq {
    /// The zero sequence number ("no message").
    pub const ZERO: Seq = Seq(0);

    /// Creates a sequence number from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        Seq(raw)
    }

    /// Returns the raw counter value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the following sequence number.
    pub const fn next(self) -> Seq {
        Seq(self.0 + 1)
    }

    /// Returns this sequence number advanced by `n`.
    pub const fn advance(self, n: u64) -> Seq {
        Seq(self.0 + n)
    }

    /// Returns the number of sequence numbers in `(self, hi]`, or zero if
    /// `hi <= self`.
    pub const fn gap_to(self, hi: Seq) -> u64 {
        hi.0.saturating_sub(self.0)
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for Seq {
    fn from(raw: u64) -> Self {
        Seq(raw)
    }
}

/// A token round: the number of complete rotations the token has made around
/// the current ring.
///
/// The participant at ring position 0 increments the round each time it
/// receives the token, so every message initiated during one rotation carries
/// the same round number. The round number is what the token-priority
/// policies of the Accelerated Ring protocol key on (Section III-D of the
/// paper).
///
/// # Examples
///
/// ```
/// use accelring_core::Round;
/// let r = Round::new(7);
/// assert_eq!(r.next(), Round::new(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(u64);

impl Round {
    /// Round zero (before the first rotation).
    pub const ZERO: Round = Round(0);

    /// Creates a round from a raw rotation count.
    pub const fn new(raw: u64) -> Self {
        Round(raw)
    }

    /// Returns the raw rotation count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the following round.
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for Round {
    fn from(raw: u64) -> Self {
        Round(raw)
    }
}

/// Identifier of a ring configuration, produced by the membership algorithm.
///
/// A ring id is the pair of the representative's participant id (the lowest
/// id in the membership, by convention) and a monotonically increasing
/// configuration counter, exactly as in Totem. Messages and tokens from old
/// configurations are recognized and discarded by comparing ring ids.
///
/// # Examples
///
/// ```
/// use accelring_core::{ParticipantId, RingId};
/// let r1 = RingId::new(ParticipantId::new(0), 4);
/// let r2 = RingId::new(ParticipantId::new(0), 6);
/// assert!(r1 != r2);
/// assert_eq!(r1.counter(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RingId {
    rep: ParticipantId,
    counter: u64,
}

impl RingId {
    /// Creates a ring id from the representative's id and the configuration
    /// counter.
    pub const fn new(rep: ParticipantId, counter: u64) -> Self {
        RingId { rep, counter }
    }

    /// The representative (lowest-id member) of the configuration.
    pub const fn representative(self) -> ParticipantId {
        self.rep
    }

    /// The monotonically increasing configuration counter.
    pub const fn counter(self) -> u64 {
        self.counter
    }

    /// Returns the ring id a merged/changed configuration should use so that
    /// it is strictly newer than both inputs.
    pub fn successor(self, other: RingId, rep: ParticipantId) -> RingId {
        RingId {
            rep,
            counter: self.counter.max(other.counter) + 4,
        }
    }
}

impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring({}, {})", self.rep, self.counter)
    }
}

/// The delivery service requested for a message, in increasing order of
/// strength.
///
/// The paper (Section II) evaluates Agreed and Safe delivery; FIFO and
/// Causal messages are carried in the same total order and therefore have
/// the same latency profile as Agreed delivery, which is why the protocol
/// treats everything below [`Service::Safe`] identically at delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Service {
    /// Reliable delivery with no ordering guarantee beyond the total order
    /// the ring provides anyway.
    Reliable,
    /// FIFO-by-sender delivery.
    Fifo,
    /// Causally ordered delivery.
    Causal,
    /// Totally ordered delivery: all members of a configuration deliver
    /// messages in the same order, respecting causality.
    #[default]
    Agreed,
    /// Agreed delivery plus stability: a message is delivered only once
    /// every member of the configuration is known to have received it.
    Safe,
}

impl Service {
    /// Whether this service requires stability (all members received the
    /// message) before delivery.
    pub const fn requires_stability(self) -> bool {
        matches!(self, Service::Safe)
    }

    /// Encodes the service level as a wire byte.
    pub const fn as_u8(self) -> u8 {
        match self {
            Service::Reliable => 0,
            Service::Fifo => 1,
            Service::Causal => 2,
            Service::Agreed => 3,
            Service::Safe => 4,
        }
    }

    /// Decodes a wire byte into a service level.
    pub const fn from_u8(raw: u8) -> Option<Service> {
        match raw {
            0 => Some(Service::Reliable),
            1 => Some(Service::Fifo),
            2 => Some(Service::Causal),
            3 => Some(Service::Agreed),
            4 => Some(Service::Safe),
            _ => None,
        }
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Service::Reliable => "reliable",
            Service::Fifo => "fifo",
            Service::Causal => "causal",
            Service::Agreed => "agreed",
            Service::Safe => "safe",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participant_id_roundtrip_and_display() {
        let p = ParticipantId::new(42);
        assert_eq!(p.as_u16(), 42);
        assert_eq!(p.as_usize(), 42);
        assert_eq!(p.to_string(), "P42");
        assert_eq!(ParticipantId::from(42u16), p);
    }

    #[test]
    fn seq_next_and_advance() {
        let s = Seq::new(10);
        assert_eq!(s.next(), Seq::new(11));
        assert_eq!(s.advance(5), Seq::new(15));
        assert_eq!(Seq::ZERO.as_u64(), 0);
        assert_eq!(s.to_string(), "#10");
    }

    #[test]
    fn seq_gap_to() {
        assert_eq!(Seq::new(3).gap_to(Seq::new(8)), 5);
        assert_eq!(Seq::new(8).gap_to(Seq::new(3)), 0);
        assert_eq!(Seq::new(8).gap_to(Seq::new(8)), 0);
    }

    #[test]
    fn seq_ordering() {
        assert!(Seq::new(1) < Seq::new(2));
        assert!(Seq::ZERO < Seq::new(1));
    }

    #[test]
    fn round_next() {
        assert_eq!(Round::ZERO.next(), Round::new(1));
        assert_eq!(Round::new(9).to_string(), "r9");
    }

    #[test]
    fn ring_id_successor_is_newer_than_both() {
        let a = RingId::new(ParticipantId::new(0), 10);
        let b = RingId::new(ParticipantId::new(2), 13);
        let s = a.successor(b, ParticipantId::new(0));
        assert!(s.counter() > a.counter());
        assert!(s.counter() > b.counter());
        assert_eq!(s.representative(), ParticipantId::new(0));
    }

    #[test]
    fn service_wire_roundtrip() {
        for s in [
            Service::Reliable,
            Service::Fifo,
            Service::Causal,
            Service::Agreed,
            Service::Safe,
        ] {
            assert_eq!(Service::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(Service::from_u8(200), None);
    }

    #[test]
    fn service_stability() {
        assert!(Service::Safe.requires_stability());
        assert!(!Service::Agreed.requires_stability());
        assert!(!Service::Fifo.requires_stability());
    }

    #[test]
    fn service_ordering_by_strength() {
        assert!(Service::Reliable < Service::Fifo);
        assert!(Service::Fifo < Service::Causal);
        assert!(Service::Causal < Service::Agreed);
        assert!(Service::Agreed < Service::Safe);
    }

    #[test]
    fn display_is_never_empty() {
        assert!(!ParticipantId::default().to_string().is_empty());
        assert!(!Seq::default().to_string().is_empty());
        assert!(!Round::default().to_string().is_empty());
        assert!(!RingId::default().to_string().is_empty());
        assert!(!Service::default().to_string().is_empty());
    }
}
