//! The ordering-protocol state machine (Section III of the paper).
//!
//! [`Participant`] is sans-IO: it consumes tokens and data messages and
//! emits [`Action`]s in the exact order they must hit the wire. The caller
//! (the simulator's node runtime, or the UDP transport) owns sockets,
//! queues, and clocks. This separation lets the same protocol code run in
//! deterministic simulation, property-based tests, and production
//! transports.

use std::collections::{BTreeSet, VecDeque};

use bytes::Bytes;

use crate::buffer::{Delivery, RecvBuffer};
use crate::config::ProtocolConfig;
use crate::flow::{self, RoundSendRecord};
use crate::message::{DataMessage, Token};
use crate::priority::PriorityTracker;
use crate::ring::{Ring, RingError};
use crate::stats::Stats;
use crate::types::{ParticipantId, Round, Seq, Service};

/// Upper bound on retransmission requests carried by one token, keeping the
/// token within a single UDP datagram even under catastrophic loss.
pub const MAX_RTR_ENTRIES: usize = 4096;

/// An effect the caller must perform, in order of emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Multicast a data message to the ring (new message or retransmission).
    Multicast(DataMessage),
    /// Send the token to the ring successor.
    SendToken {
        /// The next participant on the ring.
        to: ParticipantId,
        /// The updated token.
        token: Token,
    },
    /// Hand a message to the application, in total order.
    Deliver(Delivery),
    /// Messages up to this sequence number were garbage-collected; every
    /// member of the configuration has received them (stability).
    Discard {
        /// Highest discarded sequence number.
        up_to: Seq,
    },
}

/// Error returned by [`Participant::submit`] when the send queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError {
    /// The configured queue capacity.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "send queue full (capacity {})", self.capacity)
    }
}

impl std::error::Error for QueueFullError {}

/// The state a configuration change carries out of a dissolving ring: the
/// messages a participant still holds and its delivery/aru lines. Consumed
/// by the membership algorithm's recovery phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverySnapshot {
    /// The ring being dissolved.
    pub ring_id: crate::types::RingId,
    /// Highest sequence number below which everything was received.
    pub local_aru: Seq,
    /// Next sequence number that would have been delivered.
    pub next_delivery: Seq,
    /// Highest sequence number held (or the discard line if nothing is
    /// held).
    pub highest_held: Seq,
    /// Every message received but not yet discarded, in sequence order.
    pub held: Vec<DataMessage>,
}

/// A protocol participant: one daemon's ordering engine.
///
/// # Examples
///
/// Drive a single-member ring by hand:
///
/// ```
/// use accelring_core::{Action, Participant, ParticipantId, ProtocolConfig, Ring, Service, Token};
/// use bytes::Bytes;
///
/// let ring = Ring::of_size(1);
/// let cfg = ProtocolConfig::accelerated(5, 3);
/// let mut p = Participant::new(ParticipantId::new(0), ring.clone(), cfg)?;
/// p.submit(Bytes::from_static(b"hello"), Service::Agreed)?;
///
/// let mut actions = Vec::new();
/// p.handle_token(Token::initial(ring.id()), &mut actions);
/// assert!(actions.iter().any(|a| matches!(a, Action::Deliver(_))));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Participant {
    id: ParticipantId,
    ring: Ring,
    my_index: usize,
    cfg: ProtocolConfig,
    buffer: RecvBuffer,
    send_queue: VecDeque<(Bytes, Service)>,
    priority: PriorityTracker,
    /// Rotation count of the last token processed.
    round: Round,
    /// Hop counter of the last token processed (duplicate detection).
    last_token_id: Option<u64>,
    /// `seq` field of the token as received in the previous round; the
    /// accelerated protocol requests retransmissions only up to this value.
    prev_token_seq: Seq,
    /// What this participant multicast last round (fcc accounting).
    last_round_sent: RoundSendRecord,
    /// aru field on the tokens this participant sent in the previous and
    /// current rounds; their minimum is the Safe-delivery / discard line.
    aru_sent_prev: Seq,
    aru_sent_last: Seq,
    stats: Stats,
}

impl Participant {
    /// Creates a participant on a fresh ring whose total order starts at
    /// sequence number 1.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::NotAMember`] if `id` is not in `ring`.
    pub fn new(
        id: ParticipantId,
        ring: Ring,
        cfg: ProtocolConfig,
    ) -> Result<Participant, RingError> {
        Participant::with_start(id, ring, cfg, Seq::ZERO)
    }

    /// Creates a participant on a ring whose total order continues above
    /// `start` (used by the membership algorithm after recovery).
    ///
    /// # Errors
    ///
    /// Returns [`RingError::NotAMember`] if `id` is not in `ring`.
    pub fn with_start(
        id: ParticipantId,
        ring: Ring,
        cfg: ProtocolConfig,
        start: Seq,
    ) -> Result<Participant, RingError> {
        let my_index = ring.index_of(id).ok_or(RingError::NotAMember(id))?;
        let predecessor = ring.predecessor_of(id);
        Ok(Participant {
            id,
            my_index,
            cfg,
            buffer: RecvBuffer::new(start),
            send_queue: VecDeque::new(),
            priority: PriorityTracker::new(cfg.priority(), predecessor),
            round: Round::ZERO,
            last_token_id: None,
            prev_token_seq: start,
            last_round_sent: RoundSendRecord::default(),
            aru_sent_prev: start,
            aru_sent_last: start,
            stats: Stats::default(),
            ring,
        })
    }

    /// This participant's id.
    pub fn id(&self) -> ParticipantId {
        self.id
    }

    /// The current ring configuration.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// Protocol counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Highest sequence number below which everything has been received.
    pub fn local_aru(&self) -> Seq {
        self.buffer.local_aru()
    }

    /// Rotation count of the last token processed.
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// Messages waiting to be multicast.
    pub fn send_queue_len(&self) -> usize {
        self.send_queue.len()
    }

    /// Messages held in the receive buffer (received, not yet discarded).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Whether a waiting token should be processed before waiting data
    /// messages (Section III-D). A runtime holding only a token processes it
    /// regardless.
    pub fn token_has_priority(&self) -> bool {
        self.priority.token_has_priority()
    }

    /// Queues an application message for ordered multicast.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] if the send queue is at capacity; the
    /// caller should apply backpressure to the client.
    pub fn submit(&mut self, payload: Bytes, service: Service) -> Result<(), QueueFullError> {
        if self.send_queue.len() >= self.cfg.max_send_queue() {
            self.stats.submit_rejected += 1;
            return Err(QueueFullError {
                capacity: self.cfg.max_send_queue(),
            });
        }
        self.stats.submitted += 1;
        self.send_queue.push_back((payload, service));
        Ok(())
    }

    /// Installs a new ring configuration produced by the membership
    /// algorithm. The total order restarts above `start`; undelivered
    /// application submissions remain queued and will be sent on the new
    /// ring.
    pub fn install_ring(&mut self, ring: Ring, start: Seq) {
        let my_index = ring
            .index_of(self.id)
            .expect("membership installs rings containing the local participant");
        let predecessor = ring.predecessor_of(self.id);
        self.my_index = my_index;
        self.priority = PriorityTracker::new(self.cfg.priority(), predecessor);
        self.buffer = RecvBuffer::new(start);
        self.round = Round::ZERO;
        self.last_token_id = None;
        self.prev_token_seq = start;
        self.last_round_sent = RoundSendRecord::default();
        self.aru_sent_prev = start;
        self.aru_sent_last = start;
        self.ring = ring;
    }

    /// Snapshots the state the membership algorithm needs to recover this
    /// participant's messages onto a new ring: everything received but not
    /// yet discarded, plus the delivery and aru lines.
    pub fn recovery_snapshot(&self) -> RecoverySnapshot {
        RecoverySnapshot {
            ring_id: self.ring.id(),
            local_aru: self.buffer.local_aru(),
            next_delivery: self.buffer.next_delivery(),
            highest_held: self.buffer.highest_held(),
            held: self.buffer.iter_held().cloned().collect(),
        }
    }

    /// Handles a received data message (Section III-C), emitting any
    /// deliveries it unblocks.
    pub fn handle_data(&mut self, msg: DataMessage, out: &mut Vec<Action>) {
        if msg.ring_id != self.ring.id() {
            self.stats.foreign_dropped += 1;
            return;
        }
        self.priority.on_data_processed(&msg);
        if self.buffer.insert(msg) {
            self.stats.messages_received += 1;
            self.deliver_ready(out);
        } else {
            self.stats.duplicate_messages += 1;
        }
    }

    /// Handles the token (Section III-B): answers retransmissions, decides
    /// and stamps this round's new messages, updates and forwards the token,
    /// completes post-token multicasting, and delivers/discards messages.
    ///
    /// Emitted actions are in wire order: retransmissions and pre-token
    /// multicasts, then the token, then post-token multicasts, then
    /// deliveries and the discard notice.
    pub fn handle_token(&mut self, mut token: Token, out: &mut Vec<Action>) {
        if token.ring_id != self.ring.id() {
            self.stats.foreign_dropped += 1;
            return;
        }
        if let Some(last) = self.last_token_id {
            if token.token_id <= last {
                self.stats.stale_tokens_dropped += 1;
                return;
            }
        }
        self.last_token_id = Some(token.token_id);
        self.stats.tokens_processed += 1;

        // The ring leader (position 0) starts a new rotation.
        if self.my_index == 0 {
            token.round = token.round.next();
        }
        self.round = token.round;

        let received_seq = token.seq;
        let received_aru = token.aru;

        // --- Step 1a: answer retransmission requests (all must go out
        // before the token; otherwise they would be requested again).
        let mut answered = BTreeSet::new();
        for &seq in &token.rtr {
            if let Some(found) = self.buffer.get(seq) {
                out.push(Action::Multicast(found.as_retransmission()));
                answered.insert(seq);
            }
        }
        let num_retrans = answered.len() as u32;
        self.stats.retransmissions_sent += u64::from(num_retrans);

        // --- Step 1b: decide this round's new messages.
        let num_to_send =
            flow::num_to_send(&self.cfg, self.send_queue.len(), token.fcc, num_retrans);
        let (pre, _post) = flow::split_pre_post(num_to_send, self.cfg.accelerated_window());

        // Stamp every message now: the token must reflect all of them even
        // though some are transmitted only after the token (Section III-A:
        // "it has already decided exactly which messages it will send").
        let mut new_messages = Vec::with_capacity(num_to_send as usize);
        for i in 0..num_to_send {
            let (payload, service) = self
                .send_queue
                .pop_front()
                .expect("num_to_send is bounded by the queue length");
            let msg = DataMessage {
                ring_id: self.ring.id(),
                seq: received_seq.advance(u64::from(i) + 1),
                pid: self.id,
                round: self.round,
                service,
                post_token: i >= pre,
                retransmission: false,
                payload,
            };
            // A sender holds its own messages: they enter the receive
            // buffer at decision time.
            self.buffer.insert(msg.clone());
            new_messages.push(msg);
        }
        self.stats.messages_sent += u64::from(num_to_send);

        // --- Step 1c: pre-token multicasting.
        for msg in &new_messages[..pre as usize] {
            out.push(Action::Multicast(msg.clone()));
        }

        // --- Step 2: update the token.
        token.seq = received_seq.advance(u64::from(num_to_send));

        // aru rules (Section III-B2).
        let local = self.buffer.local_aru();
        if local < token.aru {
            token.aru = local;
            token.aru_id = Some(self.id);
        } else if token.aru_id == Some(self.id) {
            token.aru = local;
            if local == token.seq {
                token.aru_id = None;
            }
        } else if token.aru_id.is_none() && received_aru == received_seq {
            token.aru = received_aru.advance(u64::from(num_to_send));
        }
        debug_assert!(token.aru <= token.seq, "aru may never exceed seq");

        // fcc.
        let this_round_sent = RoundSendRecord {
            new_messages: num_to_send,
            retransmissions: num_retrans,
        };
        token.fcc = flow::update_fcc(token.fcc, self.last_round_sent, this_round_sent);
        self.last_round_sent = this_round_sent;

        // rtr: drop answered requests and requests below the stability
        // line, then add our own misses. The accelerated protocol requests
        // only up to the seq of the token received in the *previous* round,
        // so that messages still in flight post-token are not requested.
        let request_limit = if self.cfg.rtr_delayed() {
            self.prev_token_seq
        } else {
            received_seq
        };
        let discard_floor = self.buffer.discarded_up_to();
        let mut rtr: BTreeSet<Seq> = token
            .rtr
            .iter()
            .copied()
            .filter(|s| !answered.contains(s) && *s > discard_floor)
            .collect();
        let budget = MAX_RTR_ENTRIES.saturating_sub(rtr.len());
        let mine = self.buffer.missing_up_to(request_limit, budget);
        for seq in mine {
            if rtr.insert(seq) {
                self.stats.retransmissions_requested += 1;
            }
        }
        token.rtr = rtr.into_iter().collect();
        self.prev_token_seq = received_seq;

        token.token_id += 1;

        // --- Step 2 end: pass the token.
        let successor = self.ring.successor_of(self.id);
        let sent_aru = token.aru;
        out.push(Action::SendToken {
            to: successor,
            token,
        });

        // --- Step 3: post-token multicasting.
        for msg in &new_messages[pre as usize..] {
            out.push(Action::Multicast(msg.clone()));
        }

        // --- Step 4: deliver and discard. Everything at or below the
        // minimum of the arus on the tokens we sent this round and last
        // round is stable (Section III-B4).
        self.aru_sent_prev = self.aru_sent_last;
        self.aru_sent_last = sent_aru;
        let line = self.aru_sent_prev.min(self.aru_sent_last);
        self.buffer.raise_safe_line(line);
        self.deliver_ready(out);
        if line > self.buffer.discarded_up_to() {
            let before = self.buffer.len();
            self.buffer.discard_up_to(line);
            self.stats.discarded += (before - self.buffer.len()) as u64;
            out.push(Action::Discard { up_to: line });
        }

        self.priority.on_token_processed(self.round);
    }

    fn deliver_ready(&mut self, out: &mut Vec<Action>) {
        let mut ready = Vec::new();
        self.buffer.pop_deliverable(&mut ready);
        for d in ready {
            if d.service.requires_stability() {
                self.stats.delivered_safe += 1;
            } else {
                self.stats.delivered_agreed += 1;
            }
            out.push(Action::Deliver(d));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{LossRule, TestNet};
    use crate::types::RingId;

    fn payload(tag: u64) -> Bytes {
        Bytes::from(tag.to_le_bytes().to_vec())
    }

    #[test]
    fn rejects_non_member() {
        let ring = Ring::of_size(3);
        let err =
            Participant::new(ParticipantId::new(9), ring, ProtocolConfig::default()).unwrap_err();
        assert_eq!(err, RingError::NotAMember(ParticipantId::new(9)));
    }

    #[test]
    fn figure_1_original_schedule() {
        // 3 participants, personal window 5, original protocol: all five
        // messages precede the token.
        let mut net = TestNet::new(3, ProtocolConfig::original(5));
        for p in 0..3 {
            for i in 0..5 {
                net.submit(p, payload(p as u64 * 10 + i), Service::Agreed);
            }
        }
        net.run_tokens(3);
        // Participant 0 sent 1-5, participant 1 sent 6-10, participant 2 11-15.
        let sent = net.multicast_log();
        let firsts: Vec<_> = sent
            .iter()
            .filter(|m| !m.retransmission)
            .map(|m| (m.pid.as_u16(), m.seq.as_u64(), m.post_token))
            .collect();
        assert_eq!(firsts.len(), 15);
        for (pid, seq, post) in &firsts {
            assert!(!post, "original protocol never sends post-token");
            let expected_pid = ((seq - 1) / 5) as u16;
            assert_eq!(*pid, expected_pid);
        }
    }

    #[test]
    fn figure_1_accelerated_schedule() {
        // Personal window 5, accelerated window 3: two messages pre-token,
        // three post-token, same sequence numbers as the original protocol.
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
        for p in 0..3 {
            for i in 0..5 {
                net.submit(p, payload(p as u64 * 10 + i), Service::Agreed);
            }
        }
        net.run_tokens(3);
        let sent = net.multicast_log();
        let firsts: Vec<_> = sent.iter().filter(|m| !m.retransmission).collect();
        assert_eq!(firsts.len(), 15);
        for m in &firsts {
            let offset = (m.seq.as_u64() - 1) % 5; // position within the sender's window
            assert_eq!(
                m.post_token,
                offset >= 2,
                "first two pre-token, last three post-token (seq {})",
                m.seq
            );
        }
        // Sequence numbers identical to the original protocol.
        let mut seqs: Vec<_> = firsts.iter().map(|m| m.seq.as_u64()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=15).collect::<Vec<_>>());
    }

    #[test]
    fn few_messages_all_sent_post_token() {
        // "If a participant in Figure 1b only had two messages to send, it
        // would send both after the token."
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
        net.submit(0, payload(1), Service::Agreed);
        net.submit(0, payload(2), Service::Agreed);
        net.run_tokens(1);
        let sent = net.multicast_log();
        assert_eq!(sent.len(), 2);
        assert!(sent.iter().all(|m| m.post_token));
    }

    #[test]
    fn all_participants_deliver_same_total_order() {
        let mut net = TestNet::new(4, ProtocolConfig::accelerated(10, 5));
        for p in 0..4 {
            for i in 0..25 {
                net.submit(p, payload(p as u64 * 1000 + i), Service::Agreed);
            }
        }
        net.run_tokens(40);
        let orders = net.delivery_orders();
        assert_eq!(orders[0].len(), 100, "all 100 messages delivered");
        for o in &orders[1..] {
            assert_eq!(o, &orders[0], "identical delivery order everywhere");
        }
    }

    #[test]
    fn total_order_respects_fifo_per_sender() {
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(4, 2));
        for i in 0..12 {
            net.submit(1, payload(i), Service::Agreed);
        }
        net.run_tokens(20);
        let order = &net.delivery_orders()[0];
        let from_one: Vec<u64> = order
            .iter()
            .filter(|d| d.sender == ParticipantId::new(1))
            .map(|d| u64::from_le_bytes(d.payload[..8].try_into().unwrap()))
            .collect();
        assert_eq!(from_one, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn no_retransmissions_without_loss_accelerated() {
        // The key correctness-of-design property: even though the token
        // outruns the data, the delayed request rule means a lossless run
        // never requests retransmissions.
        let mut net = TestNet::new(8, ProtocolConfig::accelerated(20, 20));
        for p in 0..8 {
            for i in 0..100 {
                net.submit(p, payload(i), Service::Agreed);
            }
        }
        net.run_tokens(200);
        for stats in net.stats() {
            assert_eq!(stats.retransmissions_requested, 0);
            assert_eq!(stats.retransmissions_sent, 0);
        }
        assert_eq!(net.delivery_orders()[0].len(), 800);
    }

    #[test]
    fn safe_delivery_requires_two_extra_rounds() {
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
        net.submit(0, payload(7), Service::Safe);
        // After one full rotation nobody has delivered: the aru line needs
        // two tokens from the same participant.
        net.run_tokens(3);
        assert_eq!(net.delivery_orders()[0].len(), 0);
        net.run_tokens(9);
        let orders = net.delivery_orders();
        for o in orders {
            assert_eq!(o.len(), 1);
            assert_eq!(o[0].service, Service::Safe);
        }
    }

    #[test]
    fn safe_blocks_later_agreed_messages() {
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
        net.submit(0, payload(1), Service::Safe);
        net.submit(0, payload(2), Service::Agreed);
        net.run_tokens(12);
        for order in net.delivery_orders() {
            assert_eq!(order.len(), 2);
            assert_eq!(order[0].service, Service::Safe);
            assert_eq!(order[1].service, Service::Agreed);
            assert!(order[0].seq < order[1].seq);
        }
    }

    #[test]
    fn lost_message_recovered_original() {
        let mut net = TestNet::new(3, ProtocolConfig::original(5));
        // Participant 1 loses participant 0's first transmission of seq 2.
        net.add_loss(LossRule::drop_seq_once(1, 2));
        for i in 0..5 {
            net.submit(0, payload(i), Service::Agreed);
        }
        net.run_tokens(9);
        let orders = net.delivery_orders();
        for o in orders {
            assert_eq!(o.len(), 5, "all messages delivered despite loss");
        }
        assert_eq!(orders[1], orders[0]);
        let total_retrans: u64 = net.stats().iter().map(|s| s.retransmissions_sent).sum();
        assert!(total_retrans >= 1, "a retransmission answered the request");
    }

    #[test]
    fn lost_message_recovered_accelerated() {
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
        net.add_loss(LossRule::drop_seq_once(2, 4));
        for i in 0..5 {
            net.submit(0, payload(i), Service::Agreed);
        }
        net.run_tokens(12);
        for o in net.delivery_orders() {
            assert_eq!(o.len(), 5);
        }
    }

    #[test]
    fn accelerated_requests_one_round_later_than_original() {
        // Drop seq 3 for participant 1 and look at which token rotation
        // first carries the request.
        let round_of_first_request = |cfg: ProtocolConfig| -> u64 {
            let mut net = TestNet::new(3, cfg);
            net.add_loss(LossRule::drop_seq_once(1, 3));
            for i in 0..5 {
                net.submit(0, payload(i), Service::Agreed);
            }
            net.run_tokens(15);
            net.first_rtr_round().expect("request must happen")
        };
        let orig = round_of_first_request(ProtocolConfig::original(5));
        let accel = round_of_first_request(ProtocolConfig::accelerated(5, 3));
        assert!(
            accel > orig,
            "accelerated ({accel}) requests later than original ({orig})"
        );
    }

    #[test]
    fn global_window_caps_ring_throughput() {
        let cfg = ProtocolConfig::builder()
            .personal_window(10)
            .accelerated_window(5)
            .global_window(12)
            .build()
            .unwrap();
        let mut net = TestNet::new(4, cfg);
        for p in 0..4 {
            for i in 0..50 {
                net.submit(p, payload(i), Service::Agreed);
            }
        }
        // One rotation: total new messages across the ring <= global window
        // + slack for the fcc lag of one round.
        net.run_tokens(4);
        let sent: u64 = net.stats().iter().map(|s| s.messages_sent).sum();
        assert!(sent <= 12 + 10, "global window respected, got {sent}");
    }

    #[test]
    fn stale_token_dropped() {
        let ring = Ring::of_size(2);
        let cfg = ProtocolConfig::accelerated(5, 3);
        let mut p = Participant::new(ParticipantId::new(0), ring.clone(), cfg).unwrap();
        let mut out = Vec::new();
        let token = Token::initial(ring.id());
        p.handle_token(token.clone(), &mut out);
        assert_eq!(p.stats().tokens_processed, 1);
        let before = out.len();
        p.handle_token(token, &mut out); // same token_id again
        assert_eq!(out.len(), before, "no actions from a stale token");
        assert_eq!(p.stats().stale_tokens_dropped, 1);
    }

    #[test]
    fn foreign_ring_messages_dropped() {
        let ring = Ring::of_size(2);
        let cfg = ProtocolConfig::accelerated(5, 3);
        let mut p = Participant::new(ParticipantId::new(0), ring, cfg).unwrap();
        let mut out = Vec::new();
        let foreign_ring = RingId::new(ParticipantId::new(5), 99);
        p.handle_token(Token::initial(foreign_ring), &mut out);
        p.handle_data(
            DataMessage {
                ring_id: foreign_ring,
                seq: Seq::new(1),
                pid: ParticipantId::new(5),
                round: Round::new(1),
                service: Service::Agreed,
                post_token: false,
                retransmission: false,
                payload: Bytes::new(),
            },
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(p.stats().foreign_dropped, 2);
    }

    #[test]
    fn submit_backpressure() {
        let ring = Ring::of_size(1);
        let cfg = ProtocolConfig::builder().max_send_queue(2).build().unwrap();
        let mut p = Participant::new(ParticipantId::new(0), ring, cfg).unwrap();
        assert!(p.submit(payload(1), Service::Agreed).is_ok());
        assert!(p.submit(payload(2), Service::Agreed).is_ok());
        let err = p.submit(payload(3), Service::Agreed).unwrap_err();
        assert_eq!(err.capacity, 2);
        assert_eq!(p.stats().submit_rejected, 1);
        assert_eq!(p.send_queue_len(), 2);
    }

    #[test]
    fn aru_lowered_by_participant_with_gap() {
        // Participant 1 misses a message; the token aru must drop to its
        // local aru when it forwards the token.
        let mut net = TestNet::new(3, ProtocolConfig::original(5));
        net.add_loss(LossRule::drop_seq_once(1, 1));
        net.submit(0, payload(0), Service::Agreed);
        net.run_tokens(2); // token passed 0 (sends) and 1 (must lower)
        let token = net.last_token().expect("token in flight");
        assert_eq!(token.aru, Seq::ZERO, "participant 1 lowered the aru");
        assert_eq!(token.aru_id, Some(ParticipantId::new(1)));
    }

    #[test]
    fn aru_recovers_after_lowerer_catches_up() {
        let mut net = TestNet::new(3, ProtocolConfig::original(5));
        net.add_loss(LossRule::drop_seq_once(1, 1));
        net.submit(0, payload(0), Service::Agreed);
        net.run_tokens(9);
        let token = net.last_token().expect("token in flight");
        assert_eq!(token.aru, token.seq, "aru caught back up to seq");
        assert_eq!(token.aru_id, None);
    }

    #[test]
    fn discard_only_after_stability() {
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
        net.submit(0, payload(0), Service::Agreed);
        net.run_tokens(2);
        // No participant may have discarded before the aru line moved twice.
        assert!(net.stats().iter().all(|s| s.discarded == 0));
        net.run_tokens(10);
        assert!(net.stats().iter().any(|s| s.discarded > 0));
    }

    #[test]
    fn install_ring_resets_protocol_but_keeps_queue() {
        let ring = Ring::of_size(2);
        let cfg = ProtocolConfig::accelerated(5, 3);
        let mut p = Participant::new(ParticipantId::new(0), ring, cfg).unwrap();
        p.submit(payload(1), Service::Agreed).unwrap();
        let mut out = Vec::new();
        p.handle_token(Token::initial(p.ring().id()), &mut out);
        assert_eq!(p.current_round(), Round::new(1));

        let new_ring = Ring::new(
            RingId::new(ParticipantId::new(0), 5),
            vec![ParticipantId::new(0), ParticipantId::new(3)],
        )
        .unwrap();
        p.submit(payload(2), Service::Agreed).unwrap();
        p.install_ring(new_ring.clone(), Seq::new(50));
        assert_eq!(p.current_round(), Round::ZERO);
        assert_eq!(p.local_aru(), Seq::new(50));
        assert_eq!(p.send_queue_len(), 1, "unsent submission survives");
        assert_eq!(p.ring().id(), new_ring.id());

        // The new ring's token orders the queued message above `start`.
        out.clear();
        p.handle_token(Token::starting_at(new_ring.id(), Seq::new(50)), &mut out);
        let sent: Vec<_> = out
            .iter()
            .filter_map(|a| match a {
                Action::Multicast(m) => Some(m.seq),
                _ => None,
            })
            .collect();
        assert_eq!(sent, vec![Seq::new(51)]);
    }

    #[test]
    fn singleton_ring_delivers_immediately() {
        let ring = Ring::of_size(1);
        let cfg = ProtocolConfig::accelerated(5, 3);
        let mut p = Participant::new(ParticipantId::new(0), ring.clone(), cfg).unwrap();
        p.submit(payload(9), Service::Safe).unwrap();
        let mut out = Vec::new();
        p.handle_token(Token::initial(ring.id()), &mut out);
        let token = out
            .iter()
            .find_map(|a| match a {
                Action::SendToken { token, .. } => Some(token.clone()),
                _ => None,
            })
            .expect("token must be forwarded");
        // Second rotation: aru line covers the message, Safe delivery fires.
        out.clear();
        p.handle_token(token, &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Deliver(d) if d.service == Service::Safe)));
    }

    #[test]
    fn fcc_returns_to_zero_when_idle() {
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
        net.submit(0, payload(0), Service::Agreed);
        net.run_tokens(9);
        let token = net.last_token().expect("token in flight");
        assert_eq!(token.fcc, 0, "idle ring has zero flow-control count");
    }

    #[test]
    fn heavy_loss_many_retransmissions_still_converge() {
        // Drop a whole burst of messages to one receiver, including some
        // retransmissions: convergence must still happen.
        let mut net = TestNet::new(4, ProtocolConfig::accelerated(10, 5));
        for seq in 1..=10 {
            net.add_loss(LossRule::drop_seq_once(1, seq));
        }
        net.add_loss(LossRule::drop_seq_repeatedly(2, 3, 2));
        for p in 0..4 {
            for i in 0..10 {
                net.submit(p, payload(p as u64 * 100 + i), Service::Agreed);
            }
        }
        net.run_tokens(80);
        let orders = net.delivery_orders();
        assert_eq!(orders[0].len(), 40);
        for o in &orders[1..] {
            assert_eq!(o, &orders[0]);
        }
    }

    #[test]
    fn rtr_list_is_bounded() {
        // A participant missing a huge range must cap its requests at
        // MAX_RTR_ENTRIES so the token stays bounded.
        let ring = Ring::of_size(2);
        let cfg = ProtocolConfig::original(5);
        let mut p = Participant::new(ParticipantId::new(1), ring.clone(), cfg).unwrap();
        let mut out = Vec::new();
        let token = Token {
            ring_id: ring.id(),
            token_id: 5,
            round: Round::new(3),
            seq: Seq::new(2 * MAX_RTR_ENTRIES as u64),
            aru: Seq::ZERO,
            aru_id: None,
            fcc: 0,
            rtr: vec![],
        };
        p.handle_token(token, &mut out);
        let sent = out
            .iter()
            .find_map(|a| match a {
                Action::SendToken { token, .. } => Some(token.clone()),
                _ => None,
            })
            .expect("token forwarded");
        assert_eq!(sent.rtr.len(), MAX_RTR_ENTRIES);
        assert_eq!(sent.rtr[0], Seq::new(1));
    }

    #[test]
    fn idle_ring_makes_no_data_traffic() {
        let mut net = TestNet::new(5, ProtocolConfig::accelerated(20, 15));
        net.run_tokens(50);
        assert!(
            net.multicast_log().is_empty(),
            "idle ring sends only tokens"
        );
        let token = net.last_token().unwrap();
        assert_eq!(token.seq, Seq::ZERO);
        assert_eq!(token.fcc, 0);
    }

    #[test]
    fn post_token_flag_respected_per_round_boundary() {
        // With exactly accelerated_window messages queued, all go post
        // token; the *round* stamps must match the token round.
        let mut net = TestNet::new(2, ProtocolConfig::accelerated(6, 3));
        for i in 0..3 {
            net.submit(0, payload(i), Service::Agreed);
        }
        net.run_tokens(2);
        for m in net.multicast_log() {
            assert!(m.post_token);
            assert_eq!(m.round, Round::new(1));
        }
    }

    #[test]
    fn mixed_services_interleave_correctly() {
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(10, 5));
        let services = [
            Service::Agreed,
            Service::Safe,
            Service::Fifo,
            Service::Reliable,
            Service::Causal,
            Service::Safe,
        ];
        for (i, s) in services.iter().enumerate() {
            net.submit(
                i % 3,
                payload(i as u64),
                Service::from_u8(s.as_u8()).unwrap(),
            );
        }
        net.run_tokens(25);
        let orders = net.delivery_orders();
        assert_eq!(orders[0].len(), services.len());
        assert_eq!(orders[1], orders[0]);
        assert_eq!(orders[2], orders[0]);
        // Seq order strictly increasing in delivery.
        let seqs: Vec<u64> = orders[0].iter().map(|d| d.seq.as_u64()).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn retransmission_keeps_original_stamp() {
        let mut net = TestNet::new(3, ProtocolConfig::original(5));
        net.add_loss(LossRule::drop_seq_once(1, 2));
        for i in 0..3 {
            net.submit(0, payload(i), Service::Agreed);
        }
        net.run_tokens(9);
        let retrans: Vec<_> = net
            .multicast_log()
            .iter()
            .filter(|m| m.retransmission)
            .cloned()
            .collect();
        assert!(!retrans.is_empty());
        for r in retrans {
            assert_eq!(r.seq, Seq::new(2));
            assert_eq!(r.pid, ParticipantId::new(0));
        }
    }
}
