//! Jittered exponential backoff for retry loops.
//!
//! Every retry path in the stack — client reconnect after a daemon
//! death, resubmission of in-doubt messages, the migration-abort
//! escalation in the multi-ring layer, port rebinding after a crash —
//! shares this one policy so retries desynchronize instead of stampeding
//! in lockstep. The jitter is the "full jitter" scheme: each delay is
//! drawn uniformly from `[base/2, min(cap, base * 2^attempt)]`, which
//! AWS's backoff analysis showed spreads contending retriers nearly as
//! well as pure random while keeping a useful lower bound.
//!
//! The generator is a seeded xorshift so a retry schedule is
//! reproducible from its seed — the same property every other seeded
//! component of the chaos harness has.

use std::time::Duration;

/// A seeded, jittered exponential backoff schedule.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use accelring_core::Backoff;
///
/// let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 7);
/// let first = b.next_delay();
/// assert!(first >= Duration::from_millis(5));
/// assert!(first <= Duration::from_millis(10));
/// let second = b.next_delay();
/// assert!(second <= Duration::from_millis(20));
/// assert_eq!(b.attempts(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// A schedule starting at `base`, doubling each attempt, capped at
    /// `cap`, with jitter drawn from a generator seeded by `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base: base.max(Duration::from_micros(1)),
            cap: cap.max(base),
            // xorshift must not start at 0; splash the seed.
            state: seed ^ 0x9e37_79b9_7f4a_7c15 | 1,
            attempt: 0,
        }
    }

    /// Number of delays handed out since creation or the last
    /// [`reset`](Backoff::reset).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Restarts the schedule (a success ends the incident; the next
    /// failure starts from `base` again).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// xorshift64*: tiny, seedable, good enough for jitter.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The next delay: uniform in `[base/2, min(cap, base * 2^attempt)]`.
    pub fn next_delay(&mut self) -> Duration {
        let ceiling = self
            .base
            .saturating_mul(1u32 << self.attempt.min(20))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let floor = self.base / 2;
        let span = ceiling.saturating_sub(floor).as_nanos() as u64;
        let jitter = if span == 0 {
            0
        } else {
            self.next_u64() % (span + 1)
        };
        floor + Duration::from_nanos(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_to_the_cap_and_stay_bounded() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut b = Backoff::new(base, cap, 42);
        let mut max_seen = Duration::ZERO;
        for _ in 0..32 {
            let d = b.next_delay();
            assert!(d >= base / 2, "jitter floor violated: {d:?}");
            assert!(d <= cap, "cap violated: {d:?}");
            max_seen = max_seen.max(d);
        }
        assert!(
            max_seen > cap / 2,
            "schedule never approached the cap: {max_seen:?}"
        );
    }

    #[test]
    fn schedule_is_reproducible_from_the_seed() {
        let mk = || Backoff::new(Duration::from_millis(5), Duration::from_secs(1), 1234);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..16 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        // Different seeds diverge (with overwhelming probability).
        let mut c = Backoff::new(Duration::from_millis(5), Duration::from_secs(1), 99);
        let mut a = mk();
        let same = (0..16).filter(|_| a.next_delay() == c.next_delay()).count();
        assert!(same < 16, "distinct seeds produced identical schedules");
    }

    #[test]
    fn reset_restarts_the_exponent() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(10), 7);
        for _ in 0..8 {
            b.next_delay();
        }
        assert_eq!(b.attempts(), 8);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay() <= Duration::from_millis(10));
    }

    #[test]
    fn degenerate_durations_are_clamped() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO, 0);
        // Must not panic or divide by zero; delays stay tiny but valid.
        for _ in 0..4 {
            let _ = b.next_delay();
        }
    }
}
