//! A minimal, perfectly ordered in-memory ring for deterministic protocol
//! tests.
//!
//! [`TestNet`] delivers every emitted action through a single global FIFO,
//! which models an idealized loss-free network with zero latency (except for
//! the [`LossRule`]s you install). It is deliberately much simpler than the
//! timing-accurate simulator in `accelring-sim`: use this to test protocol
//! *correctness*, and the simulator to measure protocol *performance*.
//!
//! This module is part of the public API because downstream crates
//! (membership, daemon) reuse it in their own test suites.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::buffer::Delivery;
use crate::config::ProtocolConfig;
use crate::message::{DataMessage, Token};
use crate::participant::{Action, Participant};
use crate::ring::Ring;
use crate::stats::Stats;
use crate::types::{ParticipantId, Seq, Service};

/// A deterministic message-drop rule for [`TestNet`].
#[derive(Debug, Clone)]
pub struct LossRule {
    receiver: usize,
    sender: Option<ParticipantId>,
    seq: Option<Seq>,
    include_retransmissions: bool,
    remaining: u64,
}

impl LossRule {
    /// Drops the first original transmission of sequence number `seq` on its
    /// way to participant `receiver`. Retransmissions get through.
    pub fn drop_seq_once(receiver: usize, seq: u64) -> LossRule {
        LossRule {
            receiver,
            sender: None,
            seq: Some(Seq::new(seq)),
            include_retransmissions: false,
            remaining: 1,
        }
    }

    /// Drops the next `count` original transmissions from `sender` to
    /// `receiver`, whatever their sequence numbers.
    pub fn drop_from_sender(receiver: usize, sender: ParticipantId, count: u64) -> LossRule {
        LossRule {
            receiver,
            sender: Some(sender),
            seq: None,
            include_retransmissions: false,
            remaining: count,
        }
    }

    /// Drops *every* transmission (including retransmissions) of `seq` to
    /// `receiver`, up to `count` times. Useful to test repeated recovery.
    pub fn drop_seq_repeatedly(receiver: usize, seq: u64, count: u64) -> LossRule {
        LossRule {
            receiver,
            sender: None,
            seq: Some(Seq::new(seq)),
            include_retransmissions: true,
            remaining: count,
        }
    }

    fn matches(&mut self, receiver: usize, msg: &DataMessage) -> bool {
        if self.remaining == 0 || receiver != self.receiver {
            return false;
        }
        if !self.include_retransmissions && msg.retransmission {
            return false;
        }
        if let Some(seq) = self.seq {
            if msg.seq != seq {
                return false;
            }
        }
        if let Some(sender) = self.sender {
            if msg.pid != sender {
                return false;
            }
        }
        self.remaining -= 1;
        true
    }
}

#[derive(Debug)]
enum Event {
    Data { to: usize, msg: DataMessage },
    Token { to: usize, token: Token },
}

/// An in-memory ring of [`Participant`]s connected by a global FIFO.
///
/// # Examples
///
/// ```
/// use accelring_core::testing::TestNet;
/// use accelring_core::{ProtocolConfig, Service};
/// use bytes::Bytes;
///
/// let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
/// net.submit(0, Bytes::from_static(b"a"), Service::Agreed);
/// net.run_tokens(6);
/// assert_eq!(net.delivery_orders()[2].len(), 1);
/// ```
#[derive(Debug)]
pub struct TestNet {
    participants: Vec<Participant>,
    events: VecDeque<Event>,
    loss_rules: Vec<LossRule>,
    multicast_log: Vec<DataMessage>,
    deliveries: Vec<Vec<Delivery>>,
    last_token: Option<Token>,
    first_rtr_round: Option<u64>,
    bootstrapped: bool,
}

impl TestNet {
    /// Creates a ring of `n` participants all running `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u16, cfg: ProtocolConfig) -> TestNet {
        TestNet::with_ring(Ring::of_size(n), cfg)
    }

    /// Creates a test net over an explicit ring.
    pub fn with_ring(ring: Ring, cfg: ProtocolConfig) -> TestNet {
        let participants: Vec<_> = ring
            .members()
            .iter()
            .map(|&id| Participant::new(id, ring.clone(), cfg).expect("member of its own ring"))
            .collect();
        let n = participants.len();
        TestNet {
            participants,
            events: VecDeque::new(),
            loss_rules: Vec::new(),
            multicast_log: Vec::new(),
            deliveries: vec![Vec::new(); n],
            last_token: None,
            first_rtr_round: None,
            bootstrapped: false,
        }
    }

    /// Installs a loss rule.
    pub fn add_loss(&mut self, rule: LossRule) {
        self.loss_rules.push(rule);
    }

    /// Queues an application message at participant `index`.
    ///
    /// # Panics
    ///
    /// Panics if the participant's send queue is full.
    pub fn submit(&mut self, index: usize, payload: Bytes, service: Service) {
        self.participants[index]
            .submit(payload, service)
            .expect("test send queue should not fill");
    }

    /// Processes events until `budget` more tokens have been handled (or the
    /// network goes quiet, which only happens if the token is lost — the
    /// test net never loses tokens).
    pub fn run_tokens(&mut self, budget: u64) {
        if !self.bootstrapped {
            let ring_id = self.participants[0].ring().id();
            self.events.push_back(Event::Token {
                to: 0,
                token: Token::initial(ring_id),
            });
            self.bootstrapped = true;
        }
        let mut processed = 0;
        while processed < budget {
            let Some(event) = self.events.pop_front() else {
                break;
            };
            let mut actions = Vec::new();
            let node = match event {
                Event::Data { to, msg } => {
                    self.participants[to].handle_data(msg, &mut actions);
                    to
                }
                Event::Token { to, token } => {
                    let before = self.participants[to].stats().tokens_processed;
                    self.participants[to].handle_token(token, &mut actions);
                    if self.participants[to].stats().tokens_processed > before {
                        processed += 1;
                    }
                    to
                }
            };
            self.dispatch(node, actions);
        }
    }

    fn dispatch(&mut self, from: usize, actions: Vec<Action>) {
        let n = self.participants.len();
        for action in actions {
            match action {
                Action::Multicast(msg) => {
                    self.multicast_log.push(msg.clone());
                    for to in (0..n).filter(|&to| to != from) {
                        let dropped = self
                            .loss_rules
                            .iter_mut()
                            .any(|rule| rule.matches(to, &msg));
                        if !dropped {
                            self.events.push_back(Event::Data {
                                to,
                                msg: msg.clone(),
                            });
                        }
                    }
                }
                Action::SendToken { to, token } => {
                    if self.first_rtr_round.is_none() && !token.rtr.is_empty() {
                        self.first_rtr_round = Some(token.round.as_u64());
                    }
                    self.last_token = Some(token.clone());
                    let idx = self.participants[from]
                        .ring()
                        .index_of(to)
                        .expect("successor is a ring member");
                    self.events.push_back(Event::Token { to: idx, token });
                }
                Action::Deliver(d) => self.deliveries[from].push(d),
                Action::Discard { .. } => {}
            }
        }
    }

    /// Every multicast that hit the (virtual) wire, in order, including
    /// retransmissions.
    pub fn multicast_log(&self) -> &[DataMessage] {
        &self.multicast_log
    }

    /// Per-participant delivery sequences.
    pub fn delivery_orders(&self) -> &[Vec<Delivery>] {
        &self.deliveries
    }

    /// Per-participant protocol counters.
    pub fn stats(&self) -> Vec<Stats> {
        self.participants.iter().map(|p| *p.stats()).collect()
    }

    /// Direct access to a participant (e.g. to inspect its aru).
    pub fn participant(&self, index: usize) -> &Participant {
        &self.participants[index]
    }

    /// The most recently forwarded token.
    pub fn last_token(&self) -> Option<&Token> {
        self.last_token.as_ref()
    }

    /// The round of the first token that carried a retransmission request,
    /// if any request was ever made.
    pub fn first_rtr_round(&self) -> Option<u64> {
        self.first_rtr_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_ring_keeps_token_circulating() {
        let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
        net.run_tokens(30);
        let stats = net.stats();
        let total: u64 = stats.iter().map(|s| s.tokens_processed).sum();
        assert_eq!(total, 30);
        // Perfect rotation: each participant processed 10 tokens.
        assert!(stats.iter().all(|s| s.tokens_processed == 10));
    }

    #[test]
    fn loss_rule_sender_filter() {
        let mut rule = LossRule::drop_from_sender(1, ParticipantId::new(0), 2);
        let msg = |pid: u16| DataMessage {
            ring_id: crate::types::RingId::new(ParticipantId::new(0), 1),
            seq: Seq::new(1),
            pid: ParticipantId::new(pid),
            round: crate::types::Round::new(1),
            service: Service::Agreed,
            post_token: false,
            retransmission: false,
            payload: Bytes::new(),
        };
        assert!(!rule.matches(0, &msg(0)), "wrong receiver");
        assert!(!rule.matches(1, &msg(2)), "wrong sender");
        assert!(rule.matches(1, &msg(0)));
        assert!(rule.matches(1, &msg(0)));
        assert!(!rule.matches(1, &msg(0)), "budget exhausted");
    }

    #[test]
    fn repeated_drop_rule_hits_retransmissions() {
        let mut net = TestNet::new(3, ProtocolConfig::original(5));
        net.add_loss(LossRule::drop_seq_repeatedly(1, 1, 2));
        net.submit(0, Bytes::from_static(b"x"), Service::Agreed);
        net.run_tokens(15);
        // Even after dropping the original and the first retransmission,
        // the message eventually arrives.
        assert_eq!(net.delivery_orders()[1].len(), 1);
    }
}
