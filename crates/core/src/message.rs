//! The two message kinds of the ordering protocol: data messages and the
//! token.
//!
//! Field names deliberately follow Section III-B/III-C of the paper so the
//! implementation can be checked against the text line by line.

use bytes::Bytes;

use crate::types::{ParticipantId, RingId, Round, Seq, Service};

/// A data message carrying application payload plus the metadata used for
/// ordering (Section III-C of the paper).
///
/// # Examples
///
/// ```
/// use accelring_core::{DataMessage, ParticipantId, RingId, Round, Seq, Service};
/// use bytes::Bytes;
///
/// let msg = DataMessage {
///     ring_id: RingId::new(ParticipantId::new(0), 1),
///     seq: Seq::new(6),
///     pid: ParticipantId::new(1),
///     round: Round::new(2),
///     service: Service::Agreed,
///     post_token: true,
///     retransmission: false,
///     payload: Bytes::from_static(b"state update"),
/// };
/// assert_eq!(msg.wire_len(), accelring_core::wire::DATA_HEADER_LEN + 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataMessage {
    /// Configuration this message belongs to.
    pub ring_id: RingId,
    /// Position of the message in the total order. Assigned by the sender
    /// at send time from the token's `seq` field — this is what makes the
    /// protocol order messages "at the time they are sent".
    pub seq: Seq,
    /// Id of the participant that initiated the message.
    pub pid: ParticipantId,
    /// Token round in which the message was initiated.
    pub round: Round,
    /// Requested delivery service.
    pub service: Service,
    /// True if the sender transmitted this message *after* passing the
    /// token for `round` (only the Accelerated Ring protocol produces such
    /// messages). Used by the conservative token-priority policy.
    pub post_token: bool,
    /// True if this transmission is a retransmission answering an `rtr`
    /// request. Retransmissions keep the original `seq`/`round` stamps.
    pub retransmission: bool,
    /// Application payload; never inspected by the protocol.
    pub payload: Bytes,
}

impl DataMessage {
    /// Number of bytes this message occupies on the wire (header plus
    /// payload), used by the flow-control statistics and by the simulator's
    /// serialization model.
    pub fn wire_len(&self) -> usize {
        crate::wire::DATA_HEADER_LEN + self.payload.len()
    }

    /// Returns a copy marked as a retransmission.
    pub fn as_retransmission(&self) -> DataMessage {
        DataMessage {
            retransmission: true,
            ..self.clone()
        }
    }
}

/// The circulating token (Section III-B of the paper).
///
/// A single token exists per ring in normal operation. It provides ordering
/// (`seq`), stability notification (`aru`), flow control (`fcc`), and
/// retransmission requests (`rtr`).
///
/// # Examples
///
/// ```
/// use accelring_core::{ParticipantId, RingId, Token};
///
/// let token = Token::initial(RingId::new(ParticipantId::new(0), 1));
/// assert_eq!(token.seq.as_u64(), 0);
/// assert!(token.rtr.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Configuration this token belongs to.
    pub ring_id: RingId,
    /// Hop counter, incremented on every send. Used to recognize duplicate
    /// tokens retransmitted by the membership layer's token-loss recovery.
    pub token_id: u64,
    /// Rotation counter, incremented by the participant at ring position 0.
    pub round: Round,
    /// Last sequence number assigned to any message.
    pub seq: Seq,
    /// All-received-up-to: running minimum used to determine the highest
    /// sequence number that every participant has received.
    pub aru: Seq,
    /// The participant that last lowered `aru`, if any. Needed by the aru
    /// update rules to know when the lowerer may raise it again.
    pub aru_id: Option<ParticipantId>,
    /// Flow-control count: total multicasts (new + retransmissions) sent
    /// during the last rotation.
    pub fcc: u32,
    /// Sequence numbers that some participant is missing and requests for
    /// retransmission.
    pub rtr: Vec<Seq>,
}

impl Token {
    /// The token that the membership algorithm injects when a ring forms:
    /// nothing sent, nothing to recover.
    pub fn initial(ring_id: RingId) -> Token {
        Token {
            ring_id,
            token_id: 0,
            round: Round::ZERO,
            seq: Seq::ZERO,
            aru: Seq::ZERO,
            aru_id: None,
            fcc: 0,
            rtr: Vec::new(),
        }
    }

    /// A token for a freshly formed ring whose total order continues at
    /// `start`, used after recovery installs messages from old rings.
    pub fn starting_at(ring_id: RingId, start: Seq) -> Token {
        Token {
            ring_id,
            token_id: 0,
            round: Round::ZERO,
            seq: start,
            aru: start,
            aru_id: None,
            fcc: 0,
            rtr: Vec::new(),
        }
    }

    /// Number of bytes the token occupies on the wire.
    pub fn wire_len(&self) -> usize {
        crate::wire::token_wire_len(self.rtr.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> RingId {
        RingId::new(ParticipantId::new(0), 7)
    }

    #[test]
    fn initial_token_is_empty() {
        let t = Token::initial(ring());
        assert_eq!(t.seq, Seq::ZERO);
        assert_eq!(t.aru, Seq::ZERO);
        assert_eq!(t.aru_id, None);
        assert_eq!(t.fcc, 0);
        assert_eq!(t.round, Round::ZERO);
        assert!(t.rtr.is_empty());
    }

    #[test]
    fn starting_at_aligns_seq_and_aru() {
        let t = Token::starting_at(ring(), Seq::new(100));
        assert_eq!(t.seq, Seq::new(100));
        assert_eq!(t.aru, Seq::new(100));
    }

    #[test]
    fn retransmission_copy_keeps_stamps() {
        let m = DataMessage {
            ring_id: ring(),
            seq: Seq::new(9),
            pid: ParticipantId::new(3),
            round: Round::new(4),
            service: Service::Safe,
            post_token: true,
            retransmission: false,
            payload: Bytes::from_static(b"x"),
        };
        let r = m.as_retransmission();
        assert!(r.retransmission);
        assert_eq!(r.seq, m.seq);
        assert_eq!(r.round, m.round);
        assert_eq!(r.post_token, m.post_token);
        assert_eq!(r.payload, m.payload);
    }

    #[test]
    fn wire_len_counts_payload() {
        let m = DataMessage {
            ring_id: ring(),
            seq: Seq::new(1),
            pid: ParticipantId::new(0),
            round: Round::ZERO,
            service: Service::Agreed,
            post_token: false,
            retransmission: false,
            payload: Bytes::from(vec![0u8; 1350]),
        };
        assert_eq!(m.wire_len(), crate::wire::DATA_HEADER_LEN + 1350);
    }

    #[test]
    fn token_wire_len_grows_with_rtr() {
        let mut t = Token::initial(ring());
        let base = t.wire_len();
        t.rtr.push(Seq::new(5));
        t.rtr.push(Seq::new(6));
        assert_eq!(t.wire_len(), base + 16);
    }
}
