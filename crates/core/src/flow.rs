//! Flow-control arithmetic (Section III-B1 and III-B2 of the paper).
//!
//! A single mechanism — the token's `fcc` field plus the personal and global
//! windows — provides flow control for the whole ring. This module keeps the
//! arithmetic in pure functions so it can be unit- and property-tested in
//! isolation from the state machine.

use crate::config::ProtocolConfig;

/// How many multicasts a participant contributed to the ring during one
/// token round. Tracked per participant, fed into the token's `fcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundSendRecord {
    /// New data messages sent in the round.
    pub new_messages: u32,
    /// Retransmissions answered in the round.
    pub retransmissions: u32,
}

impl RoundSendRecord {
    /// Total multicasts in the round.
    pub fn total(self) -> u32 {
        self.new_messages + self.retransmissions
    }
}

/// Computes `Num_to_send`: the number of *new* data messages a participant
/// may multicast this round (Section III-B1).
///
/// It is the minimum of:
/// * the number of messages waiting in the send queue,
/// * the personal window,
/// * the global allowance `global_window - received_fcc - num_retrans`
///   (saturating at zero).
///
/// # Examples
///
/// ```
/// use accelring_core::flow::num_to_send;
/// use accelring_core::ProtocolConfig;
///
/// let cfg = ProtocolConfig::accelerated(20, 10);
/// // Plenty queued, idle ring: limited by the personal window.
/// assert_eq!(num_to_send(&cfg, 1000, 0, 0), 20);
/// // Busy ring: limited by the global allowance.
/// assert_eq!(num_to_send(&cfg, 1000, 155, 0), 5);
/// ```
pub fn num_to_send(
    cfg: &ProtocolConfig,
    queued: usize,
    received_fcc: u32,
    num_retrans: u32,
) -> u32 {
    let global_allowance = cfg
        .global_window()
        .saturating_sub(received_fcc)
        .saturating_sub(num_retrans);
    let queued = u32::try_from(queued).unwrap_or(u32::MAX);
    queued.min(cfg.personal_window()).min(global_allowance)
}

/// Splits `num_to_send` into the pre-token and post-token portions
/// (Sections III-B1 and III-B3).
///
/// The participant sends `num_to_send - accelerated_window` messages before
/// passing the token (zero if `num_to_send` is not larger than the
/// accelerated window) and the remainder after. A participant with fewer
/// messages than the accelerated window sends *all* of them after the token,
/// exactly as the paper's example describes.
///
/// # Examples
///
/// ```
/// use accelring_core::flow::split_pre_post;
///
/// // Personal window 5, accelerated window 3 (the Figure 1 example):
/// assert_eq!(split_pre_post(5, 3), (2, 3));
/// // Only two messages to send: both go after the token.
/// assert_eq!(split_pre_post(2, 3), (0, 2));
/// ```
pub fn split_pre_post(num_to_send: u32, accelerated_window: u32) -> (u32, u32) {
    let pre = num_to_send.saturating_sub(accelerated_window);
    (pre, num_to_send - pre)
}

/// Updates the token's `fcc` field (Section III-B2): subtract what this
/// participant sent last round, add what it sends this round.
pub fn update_fcc(
    received_fcc: u32,
    last_round: RoundSendRecord,
    this_round: RoundSendRecord,
) -> u32 {
    received_fcc
        .saturating_sub(last_round.total())
        .saturating_add(this_round.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;

    fn cfg(personal: u32, accel: u32, global: u32) -> ProtocolConfig {
        ProtocolConfig::builder()
            .variant(Variant::Accelerated)
            .personal_window(personal)
            .accelerated_window(accel)
            .global_window(global)
            .build()
            .unwrap()
    }

    #[test]
    fn limited_by_queue() {
        let c = cfg(20, 10, 160);
        assert_eq!(num_to_send(&c, 3, 0, 0), 3);
    }

    #[test]
    fn limited_by_personal_window() {
        let c = cfg(20, 10, 160);
        assert_eq!(num_to_send(&c, 100, 0, 0), 20);
    }

    #[test]
    fn limited_by_global_allowance() {
        let c = cfg(20, 10, 160);
        assert_eq!(num_to_send(&c, 100, 150, 0), 10);
    }

    #[test]
    fn retransmissions_consume_global_allowance() {
        let c = cfg(20, 10, 160);
        assert_eq!(num_to_send(&c, 100, 150, 4), 6);
    }

    #[test]
    fn global_allowance_saturates_at_zero() {
        let c = cfg(20, 10, 160);
        assert_eq!(num_to_send(&c, 100, 200, 0), 0);
        assert_eq!(num_to_send(&c, 100, 158, 10), 0);
    }

    #[test]
    fn empty_queue_sends_nothing() {
        let c = cfg(20, 10, 160);
        assert_eq!(num_to_send(&c, 0, 0, 0), 0);
    }

    #[test]
    fn split_matches_figure_1() {
        // Figure 1b: personal window 5, accelerated window 3 => 2 pre, 3 post.
        assert_eq!(split_pre_post(5, 3), (2, 3));
    }

    #[test]
    fn split_all_post_when_few_messages() {
        assert_eq!(split_pre_post(2, 3), (0, 2));
        assert_eq!(split_pre_post(3, 3), (0, 3));
        assert_eq!(split_pre_post(0, 3), (0, 0));
    }

    #[test]
    fn split_all_pre_when_accel_zero() {
        // Original protocol: everything before the token.
        assert_eq!(split_pre_post(5, 0), (5, 0));
    }

    #[test]
    fn split_parts_sum() {
        for n in 0..50 {
            for a in 0..50 {
                let (pre, post) = split_pre_post(n, a);
                assert_eq!(pre + post, n);
                assert!(post <= a || pre == 0);
            }
        }
    }

    #[test]
    fn fcc_update_steady_state() {
        let last = RoundSendRecord {
            new_messages: 5,
            retransmissions: 1,
        };
        let this = RoundSendRecord {
            new_messages: 5,
            retransmissions: 1,
        };
        assert_eq!(update_fcc(48, last, this), 48);
    }

    #[test]
    fn fcc_update_growth_and_shrink() {
        let none = RoundSendRecord::default();
        let five = RoundSendRecord {
            new_messages: 5,
            retransmissions: 0,
        };
        assert_eq!(update_fcc(0, none, five), 5);
        assert_eq!(update_fcc(5, five, none), 0);
    }

    #[test]
    fn fcc_update_never_underflows() {
        let huge = RoundSendRecord {
            new_messages: 100,
            retransmissions: 100,
        };
        assert_eq!(update_fcc(10, huge, RoundSendRecord::default()), 0);
    }

    #[test]
    fn round_record_total() {
        let r = RoundSendRecord {
            new_messages: 3,
            retransmissions: 4,
        };
        assert_eq!(r.total(), 7);
    }
}
